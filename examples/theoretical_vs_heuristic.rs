//! The theory and the heuristic, side by side (§2.2 vs §3.1).
//!
//! Runs the six-step theoretical algorithm and the practical heuristic on
//! a gallery of dags, showing where the theory succeeds (and is verified
//! IC-optimal), where it fails and why, and that the heuristic always
//! delivers a schedule.
//!
//! Run with: `cargo run --example theoretical_vs_heuristic`

use dagprio::core::optimal::{is_ic_optimal, DEFAULT_STATE_LIMIT};
use dagprio::core::prio::prioritize;
use dagprio::core::theoretical::theoretical_schedule;
use dagprio::graph::compose::series_zip;
use dagprio::graph::Dag;
use dagprio::workloads::classic::{diamond, entangled_ring, fig3_dag};
use dagprio::workloads::mesh::mesh2d;

fn main() {
    let w22 = dagprio::core::families::Family::W { s: 2, d: 2 }
        .instantiate()
        .0;
    let m22 = dagprio::core::families::Family::M { s: 2, d: 2 }
        .instantiate()
        .0;
    let gallery: Vec<(&str, Dag)> = vec![
        ("Fig. 3 example", fig3_dag()),
        ("diamond", diamond()),
        ("3x3 mesh", mesh2d(3, 3)),
        (
            "W(2,2) over M(2,2)",
            series_zip(&w22, &m22).expect("composition"),
        ),
        ("entangled ring (k=4)", entangled_ring(4)),
    ];

    println!("{:<22} {:<44} heuristic", "dag", "theoretical algorithm");
    for (name, dag) in gallery {
        let heur = prioritize(&dag).unwrap();
        assert!(heur.schedule.is_valid_for(&dag));
        let heur_note = match is_ic_optimal(&dag, heur.schedule.order(), DEFAULT_STATE_LIMIT) {
            Some(true) => "valid, IC-optimal",
            Some(false) => "valid (suboptimal)",
            None => "valid (too large to verify)",
        };
        let theo_note = match theoretical_schedule(&dag) {
            Ok(res) => {
                let verified =
                    is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT) == Some(true);
                format!(
                    "succeeds ({} blocks){}",
                    res.block_order.len(),
                    if verified {
                        ", verified IC-optimal"
                    } else {
                        ""
                    }
                )
            }
            Err(e) => format!("FAILS: {e}"),
        };
        println!("{name:<22} {theo_note:<44} {heur_note}");
    }
    println!(
        "\nthe heuristic 'agrees with the theory's algorithm when it works, but provides\n\
         a schedule for every computation' — §3.1's design goal."
    );
}
