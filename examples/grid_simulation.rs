//! A miniature of the paper's §4 evaluation: simulate PRIO vs FIFO on a
//! scaled AIRSN under several grid regimes and watch the sweet spot appear
//! at medium batch sizes.
//!
//! Run with: `cargo run --release --example grid_simulation`

use dagprio::core::prio::prioritize;
use dagprio::sim::replicate::ReplicationPlan;
use dagprio::sim::{compare_policies, GridModel, PolicySpec};
use dagprio::workloads::airsn::airsn;

fn main() {
    let dag = airsn(50); // 173 jobs: quick but structured
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    let plan = ReplicationPlan {
        p: 24,
        q: 12,
        seed: 7,
        threads: 0,
    };

    println!(
        "AIRSN width 50 ({} jobs); ratios are PRIO/FIFO, medians with 95% CIs\n",
        dag.num_nodes()
    );
    println!(
        "{:<22} {:<26} {:<26} {:<26}",
        "regime", "time ratio", "stall ratio", "util ratio"
    );
    let regimes: [(&str, f64, f64); 5] = [
        ("frequent tiny batches", 0.01, 1.0),
        ("rare tiny batches", 10.0, 1.0),
        ("sweet spot", 1.0, 16.0),
        ("large batches", 1.0, 1024.0),
        ("deluge of workers", 0.001, 65536.0),
    ];
    for (name, mu_bit, mu_bs) in regimes {
        let model = GridModel::paper(mu_bit, mu_bs);
        let r = compare_policies(&dag, &prio, &PolicySpec::Fifo, &model, &plan);
        let fmt = |ci: &Option<dagprio::stats::ConfidenceInterval>| match ci {
            Some(ci) => format!("{:.3} [{:.3},{:.3}]", ci.median, ci.lo, ci.hi),
            None => "-".to_string(),
        };
        println!(
            "{name:<22} {:<26} {:<26} {:<26}",
            fmt(&r.execution_time_ratio),
            fmt(&r.stalling_ratio),
            fmt(&r.utilization_ratio)
        );
    }
    println!(
        "\nexpected shape (paper §4.3): ratios near 1 when batches are tiny, huge, or\n\
         arrive extremely often; PRIO clearly faster (time ratio < 1) in the medium\n\
         batch-size band."
    );
}
