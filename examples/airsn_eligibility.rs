//! The AIRSN fMRI workflow (§3.3–3.4): why the fringed double umbrella is
//! the dag where PRIO shines, and where the bottleneck priority of Fig. 5
//! comes from.
//!
//! Run with: `cargo run --release --example airsn_eligibility`

use dagprio::core::fifo::fifo_schedule;
use dagprio::core::prio::prioritize;
use dagprio::core::schedule::profile_difference;
use dagprio::workloads::airsn::{airsn, HANDLE_LEN, PAPER_WIDTH};

fn main() {
    let dag = airsn(PAPER_WIDTH);
    println!(
        "AIRSN width {PAPER_WIDTH}: {} jobs, {} dependencies",
        dag.num_nodes(),
        dag.num_arcs()
    );

    let res = prioritize(&dag).unwrap();
    let s = &res.stats;
    println!(
        "decomposition: {} components ({} bipartite, {} catalog-scheduled, {} heuristic)",
        s.num_components,
        s.num_bipartite,
        s.recognized.values().sum::<usize>(),
        s.heuristic_scheduled
    );

    // The black-framed bottleneck of Fig. 5.
    let bottleneck = dag
        .find(&format!("handle{}", HANDLE_LEN - 1))
        .expect("last handle job");
    let priorities = res.schedule.priorities();
    println!(
        "bottleneck job {:?}: schedule position {}, priority {} (paper: 753)",
        dag.label(bottleneck),
        dag.num_nodes() as u32 - priorities[bottleneck.index()] + 1,
        priorities[bottleneck.index()],
    );

    // Eligibility difference vs FIFO — a textual rendering of Fig. 4a.
    let fifo = fifo_schedule(&dag);
    let diff = profile_difference(&dag, &res.schedule, &fifo);
    let max = *diff.iter().max().unwrap();
    println!("\nE_PRIO(t) - E_FIFO(t), bucketed over the run (each row = 5% of steps):");
    let buckets = 20;
    let per = diff.len().div_ceil(buckets);
    for (b, chunk) in diff.chunks(per).enumerate() {
        let avg = chunk.iter().sum::<i64>() as f64 / chunk.len() as f64;
        let bar = "#".repeat(((avg / max as f64) * 60.0).max(0.0) as usize);
        println!("{:>3}%  {avg:>7.1}  {bar}", b * 100 / buckets);
    }
    println!(
        "\nFIFO executes the {PAPER_WIDTH} fringe jobs first; their cover children stay\n\
         blocked on the handle. PRIO pushes the handle (and its bottleneck tip) through\n\
         first, so each later fringe completion immediately unlocks a cover job."
    );
    assert!(max as usize >= PAPER_WIDTH / 2, "the spike should be large");
}
