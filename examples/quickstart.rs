//! Quickstart: prioritize a DAGMan file and see why the PRIO order keeps
//! more jobs eligible than DAGMan's FIFO order.
//!
//! Run with: `cargo run --example quickstart`

use dagprio::core::eligibility::eligibility_profile;
use dagprio::core::fifo::fifo_schedule;
use dagprio::prioritize_dagman_text;

const INPUT: &str = "\
# The paper's Fig. 3 example: a -> b, c -> d, c -> e.
JOB a a.submit
JOB b b.submit
JOB c c.submit
JOB d d.submit
JOB e e.submit
PARENT a CHILD b
PARENT c CHILD d e
";

fn main() {
    let out = prioritize_dagman_text(INPUT).expect("valid DAGMan input");

    println!("PRIO schedule: {}", out.schedule_names.join(", "));
    println!("\ninstrumented DAGMan file:\n{}", out.instrumented);

    // Compare eligibility step by step against FIFO.
    let fifo = fifo_schedule(&out.dag);
    let e_prio = eligibility_profile(&out.dag, out.result.schedule.order());
    let e_fifo = eligibility_profile(&out.dag, fifo.order());
    println!("t  E_PRIO(t)  E_FIFO(t)");
    for t in 0..e_prio.len() {
        println!("{t}  {:^9}  {:^9}", e_prio[t], e_fifo[t]);
    }
    let gain: i64 = e_prio
        .iter()
        .zip(&e_fifo)
        .map(|(&p, &f)| p as i64 - f as i64)
        .sum();
    println!("\ncumulative eligibility gain of PRIO over FIFO: {gain}");
    assert!(gain > 0, "PRIO wins on this dag");
}
