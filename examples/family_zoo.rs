//! The bipartite family catalog of Fig. 2: instantiate every family,
//! show its IC-optimal schedule and eligibility profile, and verify
//! IC-optimality with the exhaustive checker.
//!
//! Run with: `cargo run --example family_zoo`

use dagprio::core::eligibility::partial_eligibility_profile;
use dagprio::core::families::Family;
use dagprio::core::optimal::{
    is_source_order_ic_optimal, max_eligibility_curve, DEFAULT_STATE_LIMIT,
};
use dagprio::core::recognize::recognize;

fn main() {
    println!(
        "{:<14} {:>6} {:>5}  {:<28} {:<20} IC-optimal?",
        "family", "nodes", "arcs", "source order", "E(x) over sources"
    );
    for fam in Family::fig2_catalog() {
        let (dag, order) = fam.instantiate();
        let labels: Vec<&str> = order.iter().map(|&u| dag.label(u)).collect();
        let profile = partial_eligibility_profile(&dag, &order);
        let verified = is_source_order_ic_optimal(&dag, &order) == Some(true);
        println!(
            "{:<14} {:>6} {:>5}  {:<28} {:<20} {}",
            fam.name(),
            dag.num_nodes(),
            dag.num_arcs(),
            labels.join(","),
            format!("{profile:?}"),
            if verified { "yes (verified)" } else { "NO" }
        );
        assert!(verified);

        // Recognition round-trip: the recognizer re-derives an IC-optimal
        // order from the bare structure.
        let (got, rec_order) = recognize(&dag).expect("catalog instance recognized");
        assert_eq!(is_source_order_ic_optimal(&dag, &rec_order), Some(true));
        let _ = got;

        // Cross-check against the full ideal-lattice oracle on these small
        // instances.
        let curve = max_eligibility_curve(&dag, DEFAULT_STATE_LIMIT).expect("small enough");
        let mut full_order = order.clone();
        full_order.extend(dag.sinks());
        let full_profile = dagprio::core::eligibility::eligibility_profile(&dag, &full_order);
        assert_eq!(
            full_profile,
            curve,
            "{}: profile must meet the lattice maximum",
            fam.name()
        );
    }
    println!(
        "\nall Fig. 2 schedules verified IC-optimal against the exhaustive ideal-lattice oracle"
    );
}
