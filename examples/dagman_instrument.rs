//! End-to-end DAGMan workflow: generate a synthetic Montage-like dag,
//! serialize it as a DAGMan input file, run the `prio` pipeline on the
//! text, and verify the priorities written back respect the dependencies.
//!
//! Run with: `cargo run --release --example dagman_instrument`

use dagprio::dagman::ast::{DagmanFile, JobName, Statement};
use dagprio::dagman::parse::parse_dagman;
use dagprio::dagman::write::write_dagman;
use dagprio::prioritize_dagman_text;
use dagprio::workloads::montage::{montage, MontageParams};

fn main() {
    // 1. Generate a small Montage-like dag and express it as DAGMan text.
    let dag = montage(MontageParams {
        images: 24,
        tiles: 3,
    });
    let mut statements = Vec::new();
    statements.push(Statement::Comment(
        "# synthetic Montage-like workflow".into(),
    ));
    for u in dag.node_ids() {
        statements.push(Statement::Job {
            name: JobName::from(dag.label(u)),
            submit_file: "montage.submit".into(),
            options: vec![],
        });
    }
    for u in dag.node_ids() {
        if dag.out_degree(u) > 0 {
            statements.push(Statement::ParentChild {
                parents: vec![JobName::from(dag.label(u))],
                children: dag
                    .children(u)
                    .iter()
                    .map(|&c| JobName::from(dag.label(c)))
                    .collect(),
            });
        }
    }
    let text = write_dagman(&DagmanFile { statements });
    println!(
        "generated DAGMan file: {} lines, {} jobs",
        text.lines().count(),
        dag.num_nodes()
    );

    // 2. Run the prio pipeline on the text.
    let out = prioritize_dagman_text(&text).expect("valid DAGMan text");
    println!(
        "pipeline: {} components, {} catalog-scheduled, {} shortcuts removed",
        out.result.stats.num_components,
        out.result.stats.recognized.values().sum::<usize>(),
        out.result.stats.shortcuts_removed,
    );

    // 3. Re-parse the instrumented output and check priority consistency:
    //    every parent must carry a higher jobpriority than each child...
    //    no — PRIO guarantees only schedule validity. What must hold is
    //    that sorting by descending jobpriority yields a valid execution
    //    order.
    let reparsed = parse_dagman(&out.instrumented).expect("instrumented text parses");
    let dag2 = reparsed.to_dag().expect("still a dag");
    let mut by_priority: Vec<(&str, u32)> = reparsed
        .job_names()
        .iter()
        .map(|&name| {
            let p: u32 = reparsed
                .vars_value(name, "jobpriority")
                .expect("every job instrumented")
                .parse()
                .expect("numeric priority");
            (name, p)
        })
        .collect();
    by_priority.sort_by_key(|&(_, p)| std::cmp::Reverse(p));
    let order: Vec<_> = by_priority
        .iter()
        .map(|(name, _)| dag2.find(name).expect("job exists"))
        .collect();
    assert!(
        dagprio::graph::topo::is_linear_extension(&dag2, &order),
        "descending jobpriority must be a valid execution order"
    );
    println!("check passed: descending jobpriority is a valid execution order");
    println!(
        "first five jobs by priority: {}",
        by_priority[..5]
            .iter()
            .map(|(n, p)| format!("{n}({p})"))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
