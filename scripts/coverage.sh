#!/usr/bin/env bash
# Per-crate line coverage via cargo-llvm-cov.
#
# The tool is optional: where installed (`cargo install cargo-llvm-cov`,
# or the taiki-e/install-action in CI) this prints one line-coverage row
# per workspace crate plus the workspace total; where not, it skips with
# a note and exits 0 so the gate never depends on it being present.
set -uo pipefail

cd "$(dirname "$0")/.."

if ! cargo llvm-cov --version >/dev/null 2>&1; then
  echo "coverage.sh: cargo-llvm-cov not installed; skipping coverage report" >&2
  exit 0
fi

# --summary-only prints the llvm-cov file table: one row per source file
# with Lines / Missed Lines / Cover columns. Aggregate rows by crate
# directory (crates/<name>, compat/<name>) to get per-crate line coverage.
summary=$(cargo llvm-cov --workspace --summary-only 2>&1) || {
  echo "coverage.sh: cargo llvm-cov failed:" >&2
  echo "$summary" >&2
  exit 1
}

# Portable awk only (mawk lacks asorti/length(array)); crates appear in
# the summary's own path-sorted order.
echo "$summary" | awk '
  match($0, /(crates|compat)\/[^\/ ]+/) {
    crate = substr($0, RSTART, RLENGTH)
    # llvm-cov summary columns: Filename Regions Missed Cover Functions
    # Missed Executed Lines Missed Cover [Branches Missed Cover]
    if (!(crate in lines)) order[++n] = crate
    lines[crate] += $8
    missed[crate] += $9
  }
  /^TOTAL/ {
    total_lines = $8
    total_missed = $9
  }
  END {
    if (n == 0) {
      print "coverage.sh: no per-crate rows found in llvm-cov summary" > "/dev/stderr"
      exit 1
    }
    for (i = 1; i <= n; i++) {
      c = order[i]
      printf "coverage  %-28s %7.2f%%  (%d/%d lines)\n",
        c, (lines[c] - missed[c]) * 100.0 / lines[c], lines[c] - missed[c], lines[c]
    }
    if (total_lines > 0)
      printf "coverage  %-28s %7.2f%%  (%d/%d lines)\n",
        "TOTAL", (total_lines - total_missed) * 100.0 / total_lines,
        total_lines - total_missed, total_lines
  }'
