#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
#
# The workspace has no registry dependencies (everything external is
# shimmed under compat/), so when the network or the registry is
# unavailable every cargo invocation still works with --offline — tried
# automatically if the plain invocation fails to resolve.
set -uo pipefail

cd "$(dirname "$0")/.."

run_cargo() {
  # Try online first (no-op resolve when Cargo.lock is fresh); fall back
  # to --offline so an unreachable registry never fails the gate.
  if ! cargo "$@"; then
    echo "check.sh: retrying with --offline: cargo $*" >&2
    cargo "--offline" "$@" || return 1
  fi
  return 0
}

set -e
run_cargo build --workspace --release
run_cargo test --workspace -q
# The CLI's exit-code contract (0/1/2/70) is enforced by its integration
# tests; run them by name so a workspace filter can't silently skip them.
run_cargo test -p prio-cli --test cli -q
# Golden-output gate for `prio report`: a fixed-seed trace must summarize
# to byte-stable simulator telemetry (tests/golden/report_telemetry.json).
run_cargo test -p prio-cli --test report_golden -q
# Golden-output gate for `prio trace`: the fixed-seed lifecycle analyses
# (timeline/diff JSON) are pinned and thread-count invariant.
run_cargo test -p prio-cli --test trace_golden -q
# End-to-end trace smoke: simulate a fixed-seed run, then drive every
# `prio trace` analysis over it. The artifacts land in target/trace-smoke
# (uploaded by CI) so a failing analysis can be reproduced offline.
run_cargo build --release -p prio-cli
mkdir -p target/trace-smoke
./target/release/prio simulate --workload airsn --mu-bit 0.7 --mu-bs 3 \
  --p 4 --q 4 --seed 7 --trace-out target/trace-smoke/airsn.jsonl \
  --profile-alloc > /dev/null
./target/release/prio trace timeline target/trace-smoke/airsn.jsonl --json \
  > target/trace-smoke/timeline.json
./target/release/prio trace critical-path target/trace-smoke/airsn.jsonl --json \
  > target/trace-smoke/critical_path.json
./target/release/prio trace curve target/trace-smoke/airsn.jsonl \
  --out target/trace-smoke/curve.tsv
./target/release/prio trace diff target/trace-smoke/airsn.jsonl \
  target/trace-smoke/airsn.jsonl --policy-a prio --policy-b fifo --json \
  > target/trace-smoke/diff.json
./target/release/prio report target/trace-smoke/airsn.jsonl > /dev/null
# Observability-runtime smoke (the bounded async trace pipeline's two
# contractual endpoints, plus the Prometheus snapshot):
#  1. a full-rate trace must account for every event — the trailing
#     trace_pipeline record reports dropped:0 and prio report stays
#     quiet;
#  2. a deliberately tiny ring (--trace-ring 2) must record a nonzero
#     drop count that survives the file round-trip into a loud
#     prio report warning;
#  3. --metrics-out writes the end-of-run Prometheus snapshot.
# Artifacts land in target/trace-smoke (uploaded by CI).
./target/release/prio simulate --workload airsn --scale 0.3 --mu-bit 0.3 \
  --mu-bs 8 --p 2 --q 1 --seed 7 \
  --trace-out target/trace-smoke/full_rate.jsonl \
  --metrics-out target/trace-smoke/metrics.prom > /dev/null
grep '"command":"trace_pipeline"' target/trace-smoke/full_rate.jsonl \
  | grep -q '"dropped":0' \
  || { echo "check.sh: full-rate trace dropped events" >&2; exit 1; }
./target/release/prio report target/trace-smoke/full_rate.jsonl \
  2> target/trace-smoke/full_rate_report.stderr > /dev/null
if grep -q "lossy" target/trace-smoke/full_rate_report.stderr; then
  echo "check.sh: report flagged a complete trace as lossy" >&2; exit 1
fi
grep -q '^prio_' target/trace-smoke/metrics.prom \
  || { echo "check.sh: Prometheus snapshot is empty" >&2; exit 1; }
# The 2-slot ring drops depend on writer-thread scheduling; retry a few
# seeds so a lucky scheduler cannot flake the gate (mirrors the
# obs_pipeline e2e test).
lossy_ok=0
for seed in 1 2 3 4 5; do
  ./target/release/prio simulate --workload airsn --scale 0.3 --mu-bit 0.3 \
    --mu-bs 8 --p 2 --q 1 --seed "$seed" --trace-ring 2 \
    --trace-out target/trace-smoke/lossy.jsonl \
    > /dev/null 2> target/trace-smoke/lossy_simulate.stderr
  if grep '"command":"trace_pipeline"' target/trace-smoke/lossy.jsonl \
    | grep -q '"dropped":0'; then
    continue
  fi
  ./target/release/prio report target/trace-smoke/lossy.jsonl --json \
    > target/trace-smoke/lossy_report.json \
    2> target/trace-smoke/lossy_report.stderr
  grep -q "lossy" target/trace-smoke/lossy_report.stderr \
    || { echo "check.sh: report did not warn about a lossy trace" >&2; exit 1; }
  grep -q '"lossy":true' target/trace-smoke/lossy_report.json \
    || { echo "check.sh: lossy flag missing from report --json" >&2; exit 1; }
  lossy_ok=1
  break
done
[ "$lossy_ok" = "1" ] \
  || { echo "check.sh: a 2-slot ring never dropped an event across 5 seeds" >&2; exit 1; }
echo "check.sh: observability runtime smoke ok (full-rate lossless, tiny ring lossy, metrics snapshot)"
# Format-matrix smoke: generate the Montage example, convert it through
# every frontend pair, re-prioritize each conversion, and assert every
# format yields the identical schedule (and therefore identical
# priorities). Artifacts land in target/format-matrix (uploaded by CI).
mkdir -p target/format-matrix
./target/release/prio generate montage --scale 0.13 \
  --output target/format-matrix/montage.dag
./target/release/prio schedule target/format-matrix/montage.dag \
  > target/format-matrix/schedule.reference.tsv
for src in dagman json edges; do
  for dst in dagman json edges; do
    out="target/format-matrix/montage.$src.to.$dst"
    ./target/release/prio convert target/format-matrix/montage.dag \
      "target/format-matrix/montage.$src" --to "$src"
    ./target/release/prio convert "target/format-matrix/montage.$src" \
      "$out" --from "$src" --to "$dst"
    ./target/release/prio schedule "$out" --format "$dst" \
      > "target/format-matrix/schedule.$src.$dst.tsv"
    cmp target/format-matrix/schedule.reference.tsv \
      "target/format-matrix/schedule.$src.$dst.tsv" \
      || { echo "check.sh: format matrix $src->$dst diverged" >&2; exit 1; }
  done
done
# `prio run --format` assigns the same priorities through every frontend:
# prioritize each single-format copy, convert the result to the edge-list
# format (whose @priority lines are emitted in node-index order), compare.
for fmt in dagman json edges; do
  ./target/release/prio run "target/format-matrix/montage.$fmt" \
    --format "$fmt" --output "target/format-matrix/montage.$fmt.prio"
  ./target/release/prio convert "target/format-matrix/montage.$fmt.prio" \
    "target/format-matrix/priorities.$fmt.edges" --from "$fmt" --to edges
  grep '^@priority' "target/format-matrix/priorities.$fmt.edges" \
    > "target/format-matrix/priorities.$fmt.tsv"
done
cmp target/format-matrix/priorities.dagman.tsv target/format-matrix/priorities.json.tsv \
  || { echo "check.sh: dagman/json priorities diverged" >&2; exit 1; }
cmp target/format-matrix/priorities.dagman.tsv target/format-matrix/priorities.edges.tsv \
  || { echo "check.sh: dagman/edges priorities diverged" >&2; exit 1; }
echo "check.sh: format matrix ok (9 conversions, 3 prioritized formats agree)"
# Serve daemon smoke: start `prio serve` on an ephemeral port, drive one
# prioritize request per frontend format plus the stats verb through
# bash's /dev/tcp, and shut down gracefully with the shutdown verb. The
# request/response transcript lands in target/serve-smoke (uploaded by
# CI) so a protocol regression can be replayed offline.
mkdir -p target/serve-smoke
: > target/serve-smoke/daemon.stderr
./target/release/prio serve --listen 127.0.0.1:0 --serve-threads 2 \
  2> target/serve-smoke/daemon.stderr &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr=$(sed -n 's/^prio: serving on //p' target/serve-smoke/daemon.stderr | head -1)
  [ -n "$serve_addr" ] && break
  sleep 0.1
done
[ -n "$serve_addr" ] \
  || { echo "check.sh: serve daemon did not start" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
serve_port=${serve_addr##*:}
cat > target/serve-smoke/requests.jsonl <<'EOF'
{"type":"request","id":"dagman","format":"dagman","workflow":"JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nPARENT a CHILD b c\n"}
{"type":"request","id":"json","format":"json","workflow":"{\"jobs\": [\"a\", \"b\", \"c\"], \"arcs\": [[\"a\", \"b\"], [\"a\", \"c\"]]}"}
{"type":"request","id":"edges","format":"edges","workflow":"a\tb\na\tc\n"}
{"type":"request","id":"stats","verb":"stats"}
{"type":"request","id":"bye","verb":"shutdown"}
EOF
exec 3<>"/dev/tcp/127.0.0.1/$serve_port"
cat target/serve-smoke/requests.jsonl >&3
: > target/serve-smoke/responses.jsonl
for _ in 1 2 3 4 5; do
  IFS= read -r -t 30 line <&3 \
    || { echo "check.sh: serve smoke: daemon stopped responding" >&2; exit 1; }
  printf '%s\n' "$line" >> target/serve-smoke/responses.jsonl
done
exec 3<&- 3>&-
for id in dagman json edges; do
  grep "\"id\":\"$id\"" target/serve-smoke/responses.jsonl | grep -q '"status":"ok"' \
    || { echo "check.sh: serve smoke: $id request did not succeed" >&2; exit 1; }
done
grep '"id":"stats"' target/serve-smoke/responses.jsonl | grep -q '"cache_hits":' \
  || { echo "check.sh: serve smoke: stats verb missing cache counters" >&2; exit 1; }
grep '"id":"bye"' target/serve-smoke/responses.jsonl | grep -q '"shutdown":true' \
  || { echo "check.sh: serve smoke: shutdown verb not acknowledged" >&2; exit 1; }
wait "$serve_pid" \
  || { echo "check.sh: serve daemon exited non-zero" >&2; exit 1; }
grep -q "serve exiting" target/serve-smoke/daemon.stderr \
  || { echo "check.sh: serve daemon exit summary missing" >&2; exit 1; }
echo "check.sh: serve smoke ok (3-format matrix, stats verb, graceful shutdown)"
run_cargo bench --no-run
# Compile gate for the bench-regression guard; the timing comparison
# itself is opt-in (PRIO_BENCH_CHECK=1) because shared CI machines are too
# noisy to gate merges on wall time by default.
run_cargo build --release -p prio-bench --bin bench_check
# Compile the scaling benchmark and smoke-run its two cheap tiers
# (10^3/10^4 jobs); the full sweep (through 10^6) is run manually when
# regenerating BENCH_scaling.json.
run_cargo build --release -p prio-bench --bin bench_scaling
./target/release/bench_scaling --max-jobs 10000 --out target/BENCH_scaling_smoke.json
# Compile the observability-overhead benchmark; the full traced-vs-
# untraced measurement (10^5 + 10^6 tiers, committed as BENCH_obs.json)
# is run manually when regenerating the baseline.
run_cargo build --release -p prio-bench --bin bench_obs
# Compile the serve load generator; the open-loop throughput/latency
# measurement (committed as BENCH_serve.json) runs under
# PRIO_BENCH_CHECK=1 and when regenerating the baseline.
run_cargo build --release -p prio-bench --bin bench_serve
if [ "${PRIO_BENCH_CHECK:-0}" = "1" ]; then
  # Observability-overhead smoke: measure the cheap 10^5 tier on this
  # machine and hold it to the committed baseline (absolute wall times,
  # ordinary threshold). The overhead budget is relaxed to 1.5x here —
  # a loaded CI box adds noise to a one-shot measurement — while the
  # committed BENCH_obs.json below carries the strict 1.10x contract.
  ./target/release/bench_obs --max-jobs 100000 --out target/BENCH_obs_smoke.json
  ./target/release/bench_check --threshold "${PRIO_BENCH_THRESHOLD:-2.0}" \
    --scaling-fresh target/BENCH_scaling_smoke.json \
    --obs-baseline BENCH_obs.json \
    --obs-fresh target/BENCH_obs_smoke.json \
    --obs-budget 1.5 \
    --trace target/trace-smoke/airsn.jsonl
  # The committed BENCH_obs.json is the overhead contract: traced and
  # sampled runs within the 1.10x budget, zero dropped events.
  ./target/release/bench_check --obs-fresh BENCH_obs.json
  # Front-half smoke at real scale: parse + CSR-build the 10^7-job
  # DAGMan tier (the 10^8 tier stays manual-only — its working set is
  # too large for shared CI). Time-boxed so a pathological slowdown
  # fails loudly instead of hanging the gate.
  timeout 600 ./target/release/bench_scaling --parse-only \
    --max-jobs 10000000 --threads 4 \
    --out target/BENCH_scaling_parse_smoke.json \
    || { echo "check.sh: 10^7 parse smoke failed or timed out" >&2; exit 1; }
  # The committed BENCH_serve.json must satisfy the absolute serve
  # floors (>=10k req/s sustained, p99 <= 5ms, warm hit ratio >= 0.90).
  ./target/release/bench_check --serve-fresh BENCH_serve.json
  # Fresh serve measurement on this machine: floors always, plus the
  # committed baseline with the noise threshold.
  timeout 120 ./target/release/bench_serve --out target/BENCH_serve_fresh.json \
    || { echo "check.sh: bench_serve failed or timed out" >&2; exit 1; }
  ./target/release/bench_check --threshold "${PRIO_BENCH_THRESHOLD:-2.0}" \
    --serve-baseline BENCH_serve.json \
    --serve-fresh target/BENCH_serve_fresh.json
  # Concurrency soak: duplicate-heavy multi-client TCP mix; exactly one
  # response per id, a >=0.90 cache hit ratio, and a drained shutdown.
  run_cargo test --release -q -p dagprio --test serve_soak -- --ignored
fi
run_cargo fmt --all -- --check
run_cargo clippy --workspace --all-targets -- -D warnings
# Per-crate line coverage (cargo-llvm-cov). Optional: prints coverage
# where the tool is installed, skips with a note where it is not.
bash scripts/coverage.sh
echo "check.sh: all checks passed"
