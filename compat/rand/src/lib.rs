//! A std-only stand-in for the parts of the `rand` crate this workspace
//! uses, so the workspace builds with no network access to a crate
//! registry. Same module paths (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::SmallRng`), deterministic per seed, but **not** the
//! upstream algorithms bit-for-bit — all workspace seeds derive their
//! streams through this crate, so results stay self-consistent.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded via
//! SplitMix64 — the same construction upstream `rand 0.8` uses on 64-bit
//! targets.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value (top bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from an [`RngCore`] (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the `SampleRange` of upstream `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// Uniform draw from `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand seeds xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_mean_tracks_p() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = SmallRng::seed_from_u64(5);
        let x = sample(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
