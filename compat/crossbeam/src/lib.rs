//! A std-only stand-in for the parts of `crossbeam` this workspace uses
//! (an unbounded multi-producer multi-consumer channel), so the workspace
//! builds with no network access to a crate registry. Built on
//! `Mutex<VecDeque>` + `Condvar`; adequate for the coarse-grained
//! work-queue fan-out in `prio-sim`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable: receivers
    /// compete for items (a work queue, not a broadcast).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`. Never blocks; errs only if all receivers are
        /// dropped (detected as this process holding the only references).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            state.items.push_back(value);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.inner.queue.lock().expect("channel lock");
            state.senders += 1;
            drop(state);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.queue.lock().expect("channel lock");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).expect("channel lock");
            }
        }

        /// Takes an item without blocking, if one is queued.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            state.items.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_consumes_every_item_exactly_once() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let collected = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let collected = &collected;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Ok(i) = rx.recv() {
                        local.push(i);
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        let mut got = collected.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errs_after_last_sender_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }
}
