//! A std-only stand-in for the parts of `criterion` this workspace uses,
//! so the workspace builds benches with no network access to a crate
//! registry. It measures wall-clock mean time per iteration over a small
//! warm-up plus measured batch and prints one line per benchmark; no
//! statistical analysis, plots, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, &mut f);
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, &mut f);
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    sample_size: usize,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measures `f`, running a warm-up pass then `sample_size` timed
    /// iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let iters = self.sample_size as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        sample_size,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total / iters as u32;
            println!("bench {name:<50} {per_iter:>12.2?}/iter ({iters} iters)");
        }
        _ => println!("bench {name:<50} (no measurement)"),
    }
}

/// Declares the function `criterion_main!` runs: builds a [`Criterion`]
/// and applies each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs >= 3, "warm-up plus measured iterations ran");
    }
}
