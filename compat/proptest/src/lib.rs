//! A std-only stand-in for the parts of `proptest` this workspace uses,
//! so the workspace builds and tests with no network access to a crate
//! registry. It keeps the macro and combinator surface (`proptest!`,
//! `prop_assert!`, `prop_oneof!`, `Strategy::prop_map`/`prop_flat_map`,
//! `collection::vec`, `bool::weighted`, `any`) but generates values with a
//! simple deterministic PRNG seeded from the test name, and does **not**
//! shrink failures — a failing case reports its case number so it can be
//! replayed by rerunning the test.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, the test-case error type, and the deterministic RNG.

    /// Proptest-style per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        /// Alias of [`TestCaseError::fail`] (upstream distinguishes
        /// rejection from failure; this stand-in treats both as failure).
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generation RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from a test name (FNV-1a over the bytes), so every
        /// test gets a stable, independent stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform on `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform on `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given non-empty set of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !arms.is_empty(),
                "prop_oneof! requires at least one alternative"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// A fixed value, generated every time (the `Just` of upstream).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + (rng.next_u64() as $t);
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Lengths acceptable to [`vec`]: a fixed `usize` or a range.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        probability: f64,
    }

    /// `true` with probability `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "weighted probability must be in [0, 1], got {probability}"
        );
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.probability
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports the upstream form: an optional
/// `#![proptest_config(expr)]` header, then any number of
/// `fn name(binding in strategy, ...) { body }` items carrying their
/// attributes (including `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expands each test item of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    ::core::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} ({:?} vs {:?})",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal {:?}",
            left
        );
    }};
}

/// Uniform choice among heterogeneous strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<bool>> {
        (1usize..=4).prop_flat_map(|n| crate::collection::vec(any::<bool>(), n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 2usize..=40) {
            prop_assert!((2..=40).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_strategy(v in small_vec()) {
            prop_assert!((1..=4).contains(&v.len()));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((11..24).contains(&pair));
        }

        #[test]
        fn oneof_picks_only_listed_arms(x in prop_oneof![
            (0usize..1).prop_map(|_| 7usize),
            (0usize..1).prop_map(|_| 9usize),
        ]) {
            prop_assert!(x == 7 || x == 9, "got {x}");
        }
    }

    #[test]
    fn weighted_extremes_are_constant() {
        let mut rng = crate::test_runner::TestRng::for_test("weighted");
        let always = crate::bool::weighted(1.0);
        let never = crate::bool::weighted(0.0);
        for _ in 0..100 {
            assert!(always.generate(&mut rng));
            assert!(!never.generate(&mut rng));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(any::<u64>(), 8usize);
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
