//! Ablation of a modeling assumption: the paper discards unfilled worker
//! requests ("these workers may meanwhile be intercepted by other
//! computations"). What if they parked at the server instead?
//!
//! Sweeps the AIRSN `μ_BIT = 1` section under both fates. Expected shape:
//! with parked workers the grid never runs dry, so both policies speed up
//! massively and PRIO's advantage narrows toward 1 — evidence that the
//! eligibility-maximizing objective matters *because* worker supply is
//! perishable, exactly the paper's motivation.

use prio_bench::report::{fmt_ci, Table};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::{compare_policies, GridModel, PolicySpec};
use prio_workloads::airsn::airsn;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(250);
    let dag = airsn(width);
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    let plan = ReplicationPlan {
        p: 16,
        q: 10,
        seed: 515,
        threads: 0,
    };

    let mut table = Table::new(&[
        "mu_bs",
        "discard: time ratio",
        "discard: FIFO mean",
        "wait: time ratio",
        "wait: FIFO mean",
    ]);
    for mu_bs in [2.0, 8.0, 16.0, 64.0, 256.0] {
        let discard = GridModel::paper(1.0, mu_bs);
        let wait = discard.with_waiting_workers();
        let rd = compare_policies(&dag, &prio, &PolicySpec::Fifo, &discard, &plan);
        let rw = compare_policies(&dag, &prio, &PolicySpec::Fifo, &wait, &plan);
        table.row(vec![
            format!("{mu_bs}"),
            fmt_ci(&rd.execution_time_ratio),
            format!("{:.1}", rd.b.execution_time.summary().mean),
            fmt_ci(&rw.execution_time_ratio),
            format!("{:.1}", rw.b.execution_time.summary().mean),
        ]);
    }
    println!(
        "\n== rollover ablation: discarded vs parked unfilled workers (AIRSN width {width}) ==\n"
    );
    println!("{}", table.render());
    println!(
        "expected shape: under parked workers both policies get much faster and the\n\
         PRIO/FIFO ratio moves toward 1 — perishable worker supply is what makes\n\
         eligibility-maximization pay."
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/rollover.txt", table.render()).expect("write table");
}
