//! Pipeline throughput measurement for CI and the README: times the PRIO
//! pipeline on a Montage-like dag (~1k jobs) in three configurations —
//! single-shot (fresh scratch each run), context reuse
//! ([`prio_core::prio::Prioritizer::prioritize_in`] with one persistent
//! [`prio_core::PrioContext`]), and the threaded Step 3 — and writes
//! `BENCH_pipeline.json` to the current directory.
//!
//! The measurement and the deterministic-key-order JSON format live in
//! [`prio_bench::pipeline`]; `bench_check` reads the same format back to
//! guard against regressions.

use prio_bench::pipeline;

fn main() {
    let bench = pipeline::measure();
    eprintln!(
        "bench_pipeline: Montage-like dag, {} jobs, {} arcs",
        bench.jobs, bench.arcs
    );

    let json = bench.to_json();
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    print!("{json}");
    eprintln!("bench_pipeline: wrote BENCH_pipeline.json");

    assert!(
        bench.context_reuse_ns <= bench.single_shot_ns,
        "context reuse ({} ns) must not be slower than single-shot ({} ns)",
        bench.context_reuse_ns,
        bench.single_shot_ns
    );
}
