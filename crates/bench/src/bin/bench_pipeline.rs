//! Pipeline throughput measurement for CI and the README: times the PRIO
//! pipeline on a Montage-like dag (~1k jobs) in three configurations —
//! single-shot (fresh scratch each run), context reuse
//! ([`Prioritizer::prioritize_in`] with one persistent [`PrioContext`]),
//! and the threaded Step 3 — and writes `BENCH_pipeline.json` to the
//! current directory.
//!
//! Reports best-of-N wall time (minimum over timed iterations), which is
//! robust to scheduling noise on shared machines. The JSON additionally
//! records the reuse-vs-single-shot speedup; context reuse must not be
//! slower than single-shot, since it does strictly less allocation.

use prio_core::prio::{PrioOptions, Prioritizer};
use prio_core::PrioContext;
use prio_workloads::montage::{montage, MontageParams};
use std::time::Instant;

const WARMUP: usize = 3;
const ITERS: usize = 40;

/// Best-of-N wall time for each of the given closures, in nanoseconds.
/// One iteration of every variant runs per round (round-robin), so clock
/// drift and background load hit all variants alike instead of biasing
/// whichever happened to run first.
fn best_ns_interleaved(fs: &mut [&mut dyn FnMut()]) -> Vec<u128> {
    for _ in 0..WARMUP {
        for f in fs.iter_mut() {
            f();
        }
    }
    let mut best = vec![u128::MAX; fs.len()];
    for _ in 0..ITERS {
        for (f, best) in fs.iter_mut().zip(&mut best) {
            let t = Instant::now();
            f();
            let ns = t.elapsed().as_nanos();
            if ns < *best {
                *best = ns;
            }
        }
    }
    best
}

fn main() {
    let dag = montage(MontageParams::scaled(0.13));
    eprintln!(
        "bench_pipeline: Montage-like dag, {} jobs, {} arcs",
        dag.num_nodes(),
        dag.num_arcs()
    );

    let serial = Prioritizer::new();
    let threaded_prio = Prioritizer::with_options(PrioOptions {
        threads: 4,
        ..PrioOptions::default()
    });
    let mut ctx = PrioContext::new();
    let mut tctx = PrioContext::new();

    let mut run_single = || {
        serial.prioritize(&dag).unwrap();
    };
    let mut run_reuse = || {
        serial.prioritize_in(&dag, &mut ctx).unwrap();
    };
    let mut run_threaded = || {
        threaded_prio.prioritize_in(&dag, &mut tctx).unwrap();
    };
    let best = best_ns_interleaved(&mut [&mut run_single, &mut run_reuse, &mut run_threaded]);
    let (single_shot, context_reuse, threaded) = (best[0], best[1], best[2]);

    let speedup = single_shot as f64 / context_reuse.max(1) as f64;
    let json = format!(
        "{{\n  \"workload\": \"montage\",\n  \"jobs\": {},\n  \"arcs\": {},\n  \"iters\": {ITERS},\n  \"metric\": \"best_of_n_wall_ns\",\n  \"single_shot_ns\": {single_shot},\n  \"context_reuse_ns\": {context_reuse},\n  \"threaded_4_ns\": {threaded},\n  \"reuse_speedup\": {speedup:.4}\n}}\n",
        dag.num_nodes(),
        dag.num_arcs(),
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    print!("{json}");
    eprintln!("bench_pipeline: wrote BENCH_pipeline.json");

    assert!(
        context_reuse <= single_shot,
        "context reuse ({context_reuse} ns) must not be slower than single-shot ({single_shot} ns)"
    );
}
