//! Reproduces the paper's Fig. 5: the AIRSN dag with jobs prioritized by
//! the `prio` tool, rendered as Graphviz DOT (arcs upward, priorities in
//! labels, nodes shaded by priority, the bottleneck job framed).
//!
//! The paper's focal point: at width 250 the last handle job — the parent
//! of all first-cover jobs — sits at schedule position 21 and therefore
//! carries priority 753 of 773.

use prio_core::prio::prioritize;
use prio_graph::dot::{to_dot, DotOptions};
use prio_workloads::airsn::{airsn, airsn_paper, HANDLE_LEN, PAPER_WIDTH};

fn main() {
    // Full-size instance for the priority check.
    let dag = airsn_paper();
    let result = prioritize(&dag).unwrap();
    let priorities = result.schedule.priorities();
    let bottleneck = dag
        .find(&format!("handle{}", HANDLE_LEN - 1))
        .expect("bottleneck");
    let p = priorities[bottleneck.index()];
    println!(
        "AIRSN width {PAPER_WIDTH}: bottleneck job {:?} has priority {p} (paper: 753)",
        dag.label(bottleneck)
    );
    assert_eq!(
        p, 753,
        "the black-framed job of Fig. 5 must get priority 753"
    );

    // A small instance for a drawable figure.
    let small = airsn(8);
    let res = prioritize(&small).unwrap();
    let prio = res.schedule.priorities();
    let bott = small
        .find(&format!("handle{}", HANDLE_LEN - 1))
        .expect("bottleneck");
    let opts = DotOptions {
        name: "AIRSN".into(),
        arcs_upward: true,
        priorities: Some(prio),
        framed: vec![bott],
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let dot = to_dot(&small, &opts);
    std::fs::write("results/fig5_airsn.dot", &dot).expect("write dot");
    println!(
        "wrote results/fig5_airsn.dot ({} nodes; render with `dot -Tpdf`)",
        small.num_nodes()
    );
}
