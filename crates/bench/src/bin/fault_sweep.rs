//! §4-under-faults experiment: PRIO vs FIFO across fault intensities.
//!
//! Sweeps the seeded fault layer (per-attempt failure probability with
//! DAGMan-style retries) at the AIRSN sweet-spot cell (`μ_BIT = 1`,
//! `μ_BS = 2⁴`) and reports, per intensity, the PRIO/FIFO makespan ratio
//! with its 95% CI plus the wasted-work means. Unlike `robustness` (which
//! exercises the legacy main-stream failure path), this sweep drives the
//! dedicated fault layer: derived fault streams, bounded retries, and
//! wasted-work accounting. Rate 0 is the reliable §4 baseline.
//!
//! Usage: `fault_sweep [airsn-width]` (default 100). Writes
//! `results/fault_sweep.txt`.

use prio_bench::report::{fmt_ci, Table};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::sweep::sweep_fault_rates;
use prio_sim::{GridModel, PolicySpec, RetryPolicy};
use prio_workloads::airsn::airsn;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let dag = airsn(width);
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    let plan = ReplicationPlan {
        p: 20,
        q: 12,
        seed: 20060406,
        threads: 0,
    };
    let retry = RetryPolicy::dagman(3);

    let rates = [0.0, 0.05, 0.15, 0.3];
    let cells = sweep_fault_rates(
        &dag,
        &prio,
        &PolicySpec::Fifo,
        &GridModel::paper(1.0, 16.0),
        &rates,
        retry,
        &plan,
    );

    let mut table = Table::new(&[
        "fault rate",
        "PRIO mean time",
        "FIFO mean time",
        "time ratio (median, CI)",
        "PRIO wasted",
        "FIFO wasted",
        "wasted ratio (median, CI)",
    ]);
    for cell in &cells {
        let r = &cell.result;
        table.row(vec![
            format!("{:.2}", cell.fault_rate),
            format!("{:.2}", r.a.execution_time.summary().mean),
            format!("{:.2}", r.b.execution_time.summary().mean),
            fmt_ci(&r.execution_time_ratio),
            format!("{:.2}", r.a.wasted_work.summary().mean),
            format!("{:.2}", r.b.wasted_work.summary().mean),
            fmt_ci(&r.wasted_work_ratio),
        ]);
    }
    println!(
        "\n== fault sweep: PRIO vs FIFO under the seeded fault layer \
         (AIRSN width {width}, {} jobs, retries 3) ==\n",
        dag.num_nodes()
    );
    println!("{}", table.render());
    println!("expected shape: time ratio stays below 1 as the fault rate grows.");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/fault_sweep.txt", table.render()).expect("write table");
}
