//! Measures traced-vs-untraced pipeline + simulator wall time at the
//! 10⁵/10⁶-job tiers and writes `BENCH_obs.json`.
//!
//! ```text
//! bench_obs [--max-jobs N] [--out FILE]
//! ```
//!
//! * `--max-jobs N` — skip tiers above `N` jobs (CI smoke runs pass
//!   `100000` to cover only the cheap tier)
//! * `--out FILE`   — output path (default `BENCH_obs.json`)
//!
//! Gate a run with `bench_check --obs-fresh FILE`: the traced (and
//! sampled) producer-side wall time must stay within `--obs-budget`
//! (default 1.10×) of the untraced run and the ring must drop nothing;
//! the writer's drain time is recorded per row and guarded cross-run
//! against the committed baseline.

use prio_bench::obs_overhead;
use std::process::ExitCode;

const DEFAULT_OUT: &str = "BENCH_obs.json";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut max_jobs: Option<usize> = None;
    let mut out = DEFAULT_OUT.to_string();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} requires a value", argv[i]))
        };
        let result = match argv[i].as_str() {
            "--max-jobs" => value(i).and_then(|v| {
                v.parse()
                    .map(|n| max_jobs = Some(n))
                    .map_err(|_| format!("--max-jobs: cannot parse {v:?}"))
            }),
            "--out" => value(i).map(|v| out = v),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(msg) = result {
            eprintln!("bench_obs: error: {msg}");
            eprintln!("usage: bench_obs [--max-jobs N] [--out FILE]");
            return ExitCode::from(2);
        }
        i += 2;
    }

    let bench = obs_overhead::measure(max_jobs, |label| {
        eprintln!("bench_obs: measuring {label}");
    });
    for row in &bench.rows {
        eprintln!(
            "bench_obs: {:<8} {:>8} jobs  untraced {:>13} ns  traced {:>13} ns ({:.3}x)  \
             sampled {:>13} ns ({:.3}x)  drain {:>13} ns ({} events)  dropped {}",
            row.workload,
            row.jobs,
            row.untraced_ns,
            row.traced_ns,
            row.traced_ratio(),
            row.sampled_ns,
            row.sampled_ratio(),
            row.drain_ns,
            row.events,
            row.dropped
        );
    }
    let json = bench.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_obs: error: {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("bench_obs: wrote {out}");
    ExitCode::SUCCESS
}
