//! §3.5 engineering ablations as a wall-clock table (the criterion benches
//! `decompose` and `combine` give the statistically rigorous version).
//!
//! 1. Decomposition: bipartite fast path vs general-only minimal-`C(s)`
//!    search, on growing SDSS-like field stages. The general search is
//!    quadratic in the number of components, which is the paper's
//!    "over 2 days" regime; the fast path stays near-linear.
//! 2. Combine: naive quadratic selection vs the class-cached engine on
//!    growing superdags of repeated component shapes.

use prio_bench::report::{fmt_duration, Table};
use prio_core::combine::{combine, CombineEngine};
use prio_core::decompose::{decompose, DecomposeOptions};
use prio_graph::reduction::transitive_reduction;
use prio_graph::Dag;
use prio_workloads::sdss::{sdss, SdssParams};
use std::time::Instant;

fn time<R>(f: impl FnOnce() -> R) -> (std::time::Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

fn main() {
    println!("== Ablation 1 (§3.5): decomposition fast path ==\n");
    let mut t = Table::new(&["jobs", "fast path", "general only", "speedup"]);
    for fields in [32usize, 64, 128, 256] {
        let dag = transitive_reduction(&sdss(SdssParams {
            fields,
            targets: fields * 4,
            extra_chain: 0,
        }));
        let (fast, dec_fast) = time(|| decompose(&dag, DecomposeOptions { fast_path: true }));
        let (slow, dec_slow) = time(|| decompose(&dag, DecomposeOptions { fast_path: false }));
        assert_eq!(dec_fast.parts.len(), dec_slow.parts.len());
        t.row(vec![
            dag.num_nodes().to_string(),
            fmt_duration(fast),
            fmt_duration(slow),
            format!("{:.1}x", slow.as_secs_f64() / fast.as_secs_f64().max(1e-9)),
        ]);
    }
    println!("{}", t.render());

    println!("== Ablation 2 (§3.5): combine engine ==\n");
    let mut t = Table::new(&["supernodes", "class-cached", "naive", "speedup"]);
    for n in [128usize, 512, 2048] {
        let superdag = Dag::from_arcs(n, &[]).expect("independent supernodes");
        let classes = [vec![1usize, 1], vec![1, 2], vec![2, 3, 4], vec![4, 2, 1]];
        let profiles: Vec<Vec<usize>> =
            (0..n).map(|i| classes[i % classes.len()].clone()).collect();
        let (fast, of) = time(|| combine(&superdag, &profiles, CombineEngine::ClassHeap));
        let (slow, on) = time(|| combine(&superdag, &profiles, CombineEngine::Naive));
        assert_eq!(of, on, "engines agree");
        t.row(vec![
            n.to_string(),
            fmt_duration(fast),
            fmt_duration(slow),
            format!("{:.1}x", slow.as_secs_f64() / fast.as_secs_f64().max(1e-9)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected shape: both speedups grow with size — the general search and the\n\
         naive combine are the quadratic algorithms the paper replaced."
    );
}
