//! Extension experiment: what happens when the equal-execution-time
//! assumption breaks?
//!
//! §4's evaluation assumes all jobs run for roughly the same time
//! (`N(1, 0.1)`) and the paper flags this as "certainly an idealization".
//! This extension widens the runtime spread (standard deviation 0.1 → 0.9,
//! truncated to stay positive) at the AIRSN sweet-spot cell. Expected
//! shape: PRIO's advantage degrades gracefully — eligibility-maximizing
//! priorities say nothing about job *lengths*, so a high-variance grid
//! erodes (but does not invert) the gain.

use prio_bench::report::{fmt_ci, Table};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::{compare_policies, GridModel, PolicySpec};
use prio_workloads::airsn::airsn;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let dag = airsn(width);
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    let plan = ReplicationPlan {
        p: 20,
        q: 12,
        seed: 7741,
        threads: 0,
    };

    let mut table = Table::new(&[
        "runtime sd",
        "PRIO mean time",
        "FIFO mean time",
        "time ratio (median, CI)",
        "stall ratio (median, CI)",
    ]);
    for sd in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let model = GridModel {
            runtime_sd: sd,
            ..GridModel::paper(1.0, 16.0)
        };
        let r = compare_policies(&dag, &prio, &PolicySpec::Fifo, &model, &plan);
        table.row(vec![
            format!("{sd:.1}"),
            format!("{:.2}", r.a.execution_time.summary().mean),
            format!("{:.2}", r.b.execution_time.summary().mean),
            fmt_ci(&r.execution_time_ratio),
            fmt_ci(&r.stalling_ratio),
        ]);
    }
    println!(
        "\n== heterogeneity: PRIO vs FIFO as job runtimes spread (AIRSN width {width}, {} jobs) ==\n",
        dag.num_nodes()
    );
    println!("{}", table.render());
    println!("expected shape: the advantage shrinks with the spread but stays <= 1.");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/heterogeneity.txt", table.render()).expect("write table");
}
