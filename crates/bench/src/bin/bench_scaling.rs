//! Measures pipeline + simulator wall time and peak allocator bytes at
//! the 10³–10⁷-job tiers, DAGMan parse + CSR build at 10⁷/10⁸, and
//! writes `BENCH_scaling.json`.
//!
//! ```text
//! bench_scaling [--max-jobs N] [--threads N] [--parse-only] [--out FILE]
//! ```
//!
//! * `--max-jobs N` — skip tiers above `N` jobs (CI smoke runs pass
//!   `10000` to cover only the two cheap tiers)
//! * `--threads N`  — worker threads for the parallel pipeline stages
//!   (default 0 = serial; recorded in each row)
//! * `--parse-only` — measure only the `dagman_parse` rows (the
//!   time-boxed front-half smoke run)
//! * `--out FILE`   — output path (default `BENCH_scaling.json`)
//!
//! Compare a run against a committed baseline with
//! `bench_check --scaling-fresh FILE`.

use prio_bench::mem::CountingAllocator;
use prio_bench::scaling;
use std::process::ExitCode;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const DEFAULT_OUT: &str = "BENCH_scaling.json";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut max_jobs: Option<usize> = None;
    let mut threads = 0usize;
    let mut parse_only = false;
    let mut out = DEFAULT_OUT.to_string();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} requires a value", argv[i]))
        };
        let mut consumed = 2;
        let result = match argv[i].as_str() {
            "--max-jobs" => value(i).and_then(|v| {
                v.parse()
                    .map(|n| max_jobs = Some(n))
                    .map_err(|_| format!("--max-jobs: cannot parse {v:?}"))
            }),
            "--threads" => value(i).and_then(|v| {
                v.parse()
                    .map(|n| threads = n)
                    .map_err(|_| format!("--threads: cannot parse {v:?}"))
            }),
            "--parse-only" => {
                parse_only = true;
                consumed = 1;
                Ok(())
            }
            "--out" => value(i).map(|v| out = v),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(msg) = result {
            eprintln!("bench_scaling: error: {msg}");
            eprintln!(
                "usage: bench_scaling [--max-jobs N] [--threads N] [--parse-only] [--out FILE]"
            );
            return ExitCode::from(2);
        }
        i += consumed;
    }

    let bench = scaling::measure(max_jobs, threads, parse_only, |label| {
        eprintln!("bench_scaling: measuring {label}");
    });
    for row in &bench.rows {
        let front_ns = if row.workload == "dagman_parse" {
            ("parse", row.parse_ns)
        } else {
            ("pipeline", row.pipeline_ns)
        };
        eprintln!(
            "bench_scaling: {:<12} {:>9} jobs  {} {:>13} ns  sim {:>13} ns  peak {:>13} B",
            row.workload, row.jobs, front_ns.0, front_ns.1, row.sim_ns, row.peak_bytes
        );
    }
    let json = bench.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_scaling: error: {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("bench_scaling: wrote {out}");
    ExitCode::SUCCESS
}
