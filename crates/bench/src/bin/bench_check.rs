//! Bench-regression guard: re-measures the pipeline (or reads a fresh
//! measurement) and fails when any metric is slower than the committed
//! `BENCH_pipeline.json` baseline by more than the threshold.
//!
//! ```text
//! bench_check [--baseline FILE] [--fresh FILE] [--threshold F]
//!             [--scaling-baseline FILE] [--scaling-fresh FILE]
//! ```
//!
//! * `--baseline FILE` — committed baseline (default `BENCH_pipeline.json`)
//! * `--fresh FILE`    — compare an existing measurement instead of
//!   re-measuring (useful when `bench_pipeline` already ran)
//! * `--threshold F`   — allowed slowdown factor, fresh/baseline
//!   (default 2.0: best-of-N on shared CI machines is noisy, so the guard
//!   catches order-of-magnitude regressions, not percent-level drift)
//! * `--scaling-fresh FILE` — additionally check a `bench_scaling` run
//!   against the committed scaling baseline; rows are matched by
//!   `(workload, jobs)`, so a `--max-jobs`-limited smoke run checks only
//!   the tiers it measured
//! * `--scaling-baseline FILE` — the scaling baseline
//!   (default `BENCH_scaling.json`; only read with `--scaling-fresh`)
//!
//! Exit codes: 0 within threshold, 1 regression, 2 usage/IO error.

use prio_bench::pipeline::{self, PipelineBench};
use prio_bench::scaling::{self, ScalingBench};
use std::process::ExitCode;

const DEFAULT_BASELINE: &str = "BENCH_pipeline.json";
const DEFAULT_SCALING_BASELINE: &str = "BENCH_scaling.json";
const DEFAULT_THRESHOLD: f64 = 2.0;

struct Options {
    baseline: String,
    fresh: Option<String>,
    scaling_baseline: String,
    scaling_fresh: Option<String>,
    threshold: f64,
}

fn parse_args(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        baseline: DEFAULT_BASELINE.into(),
        fresh: None,
        scaling_baseline: DEFAULT_SCALING_BASELINE.into(),
        scaling_fresh: None,
        threshold: DEFAULT_THRESHOLD,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} requires a value", argv[i]))
        };
        match argv[i].as_str() {
            "--baseline" => {
                opts.baseline = value(i)?;
                i += 2;
            }
            "--fresh" => {
                opts.fresh = Some(value(i)?);
                i += 2;
            }
            "--scaling-baseline" => {
                opts.scaling_baseline = value(i)?;
                i += 2;
            }
            "--scaling-fresh" => {
                opts.scaling_fresh = Some(value(i)?);
                i += 2;
            }
            "--threshold" => {
                let v = value(i)?;
                opts.threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold: cannot parse {v:?}"))?;
                if opts.threshold.is_nan() || opts.threshold < 1.0 {
                    return Err(format!("--threshold must be >= 1.0, got {v}"));
                }
                i += 2;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn load(path: &str) -> Result<PipelineBench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    PipelineBench::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&argv) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("bench_check: error: {msg}");
            }
            eprintln!(
                "usage: bench_check [--baseline FILE] [--fresh FILE] [--threshold F] \
                 [--scaling-baseline FILE] [--scaling-fresh FILE]"
            );
            return ExitCode::from(2);
        }
    };

    let baseline = match load(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: error: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match &opts.fresh {
        Some(path) => match load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_check: error: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            eprintln!("bench_check: measuring (no --fresh file given)...");
            pipeline::measure()
        }
    };

    if baseline.jobs != fresh.jobs || baseline.workload != fresh.workload {
        eprintln!(
            "bench_check: warning: baseline is {} ({} jobs), fresh is {} ({} jobs) — \
             comparing anyway, but the workload changed",
            baseline.workload, baseline.jobs, fresh.workload, fresh.jobs
        );
    }

    let mut failed = false;
    for check in pipeline::compare(&baseline, &fresh, opts.threshold) {
        let verdict = if check.regressed { "REGRESSED" } else { "ok" };
        eprintln!(
            "bench_check: {:<17} baseline {:>10} ns, fresh {:>10} ns, ratio {:.2} (threshold {:.2}) {verdict}",
            check.name, check.baseline_ns, check.fresh_ns, check.ratio, opts.threshold
        );
        failed |= check.regressed;
    }
    if let Some(path) = &opts.scaling_fresh {
        let loaded = load_scaling(&opts.scaling_baseline).and_then(|baseline| {
            let fresh = load_scaling(path)?;
            Ok((baseline, fresh))
        });
        let (baseline, fresh) = match loaded {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("bench_check: error: {e}");
                return ExitCode::from(2);
            }
        };
        let checks = scaling::compare_scaling(&baseline, &fresh, opts.threshold);
        if checks.is_empty() {
            eprintln!(
                "bench_check: warning: no scaling rows in {path} match the baseline \
                 — nothing checked"
            );
        }
        for (label, check) in checks {
            let verdict = if check.regressed { "REGRESSED" } else { "ok" };
            eprintln!(
                "bench_check: {label:<16} {:<12} baseline {:>13} ns, fresh {:>13} ns, ratio {:.2} (threshold {:.2}) {verdict}",
                check.name, check.baseline_ns, check.fresh_ns, check.ratio, opts.threshold
            );
            failed |= check.regressed;
        }
    }

    if failed {
        eprintln!(
            "bench_check: FAIL — a metric slowed by more than {:.2}x; if intentional, \
             regenerate the baseline with `cargo run --release -p prio-bench --bin bench_pipeline` \
             (and `--bin bench_scaling` for scaling rows)",
            opts.threshold
        );
        return ExitCode::from(1);
    }
    eprintln!("bench_check: all metrics within threshold");
    ExitCode::SUCCESS
}

fn load_scaling(path: &str) -> Result<ScalingBench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ScalingBench::from_json(&text).map_err(|e| format!("{path}: {e}"))
}
