//! Bench-regression guard: re-measures the pipeline (or reads a fresh
//! measurement) and fails when any metric is slower than the committed
//! `BENCH_pipeline.json` baseline by more than the threshold.
//!
//! ```text
//! bench_check [--baseline FILE] [--fresh FILE] [--threshold F]
//!             [--scaling-baseline FILE] [--scaling-fresh FILE]
//!             [--obs-baseline FILE] [--obs-fresh FILE] [--obs-budget F]
//!             [--serve-baseline FILE] [--serve-fresh FILE]
//!             [--trace FILE]
//! ```
//!
//! * `--baseline FILE` — committed baseline (default `BENCH_pipeline.json`)
//! * `--fresh FILE`    — compare an existing measurement instead of
//!   re-measuring (useful when `bench_pipeline` already ran)
//! * `--threshold F`   — allowed slowdown factor, fresh/baseline
//!   (default 2.0: best-of-N on shared CI machines is noisy, so the guard
//!   catches order-of-magnitude regressions, not percent-level drift)
//! * `--scaling-fresh FILE` — additionally check a `bench_scaling` run
//!   against the committed scaling baseline; rows are matched by
//!   `(workload, jobs)`, so a `--max-jobs`-limited smoke run checks only
//!   the tiers it measured
//! * `--scaling-baseline FILE` — the scaling baseline
//!   (default `BENCH_scaling.json`; only read with `--scaling-fresh`)
//! * `--scaling-mem-threshold F` — allowed peak-bytes growth factor,
//!   fresh/baseline, for scaling rows where both runs measured a peak
//!   (default 1.5: allocator peaks are near-deterministic, so the
//!   committed peaks act as hard memory budgets for the big tiers — a
//!   10⁸-job parse that balloons past its budget fails even if it got
//!   faster)
//! * `--obs-fresh FILE` — additionally gate a `bench_obs` run: per row
//!   the traced (and sampled) wall time must stay within `--obs-budget`
//!   of the untraced time measured in the *same* run (machine speed
//!   cancels out of the ratio, so the budget is tight where the wall-time
//!   threshold cannot be), the default ring must have dropped 0 events,
//!   and — when rows match the committed baseline by `(workload, jobs)`
//!   — absolute times are also held to `--threshold`
//! * `--obs-baseline FILE` — the observability baseline
//!   (default `BENCH_obs.json`; only read with `--obs-fresh`)
//! * `--obs-budget F` — allowed traced/untraced overhead ratio
//!   (default 1.10: tracing must cost under 10%)
//! * `--serve-fresh FILE` — additionally gate a `bench_serve` run: the
//!   absolute floors always apply (sustained ≥ 10k req/s, p99 ≤ 5 ms,
//!   warm-cache hit ratio ≥ 0.90, zero errors), and throughput/p99 are
//!   also held to `--threshold` against the committed baseline
//! * `--serve-baseline FILE` — the serve baseline
//!   (default `BENCH_serve.json`; only read with `--serve-fresh`)
//! * `--trace FILE` — additionally stream a `--trace-out` JSONL file
//!   through the lifecycle analysis (the `prio trace` ingestion path),
//!   reporting event count and throughput; a malformed trace fails the
//!   check, so CI catches schema drift between writer and reader
//!
//! Exit codes: 0 within threshold, 1 regression, 2 usage/IO error.

use prio_bench::obs_overhead::{self, ObsBench};
use prio_bench::pipeline::{self, PipelineBench};
use prio_bench::scaling::{self, ScalingBench};
use prio_bench::serve::{self, ServeBench};
use std::process::ExitCode;

const DEFAULT_BASELINE: &str = "BENCH_pipeline.json";
const DEFAULT_SCALING_BASELINE: &str = "BENCH_scaling.json";
const DEFAULT_OBS_BASELINE: &str = "BENCH_obs.json";
const DEFAULT_SERVE_BASELINE: &str = "BENCH_serve.json";
const DEFAULT_THRESHOLD: f64 = 2.0;
const DEFAULT_OBS_BUDGET: f64 = 1.10;
const DEFAULT_SCALING_MEM_THRESHOLD: f64 = 1.5;

struct Options {
    baseline: String,
    fresh: Option<String>,
    scaling_baseline: String,
    scaling_fresh: Option<String>,
    scaling_mem_threshold: f64,
    obs_baseline: String,
    obs_fresh: Option<String>,
    obs_budget: f64,
    serve_baseline: String,
    serve_fresh: Option<String>,
    trace: Option<String>,
    threshold: f64,
}

fn parse_args(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        baseline: DEFAULT_BASELINE.into(),
        fresh: None,
        scaling_baseline: DEFAULT_SCALING_BASELINE.into(),
        scaling_fresh: None,
        scaling_mem_threshold: DEFAULT_SCALING_MEM_THRESHOLD,
        obs_baseline: DEFAULT_OBS_BASELINE.into(),
        obs_fresh: None,
        obs_budget: DEFAULT_OBS_BUDGET,
        serve_baseline: DEFAULT_SERVE_BASELINE.into(),
        serve_fresh: None,
        trace: None,
        threshold: DEFAULT_THRESHOLD,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} requires a value", argv[i]))
        };
        match argv[i].as_str() {
            "--baseline" => {
                opts.baseline = value(i)?;
                i += 2;
            }
            "--fresh" => {
                opts.fresh = Some(value(i)?);
                i += 2;
            }
            "--scaling-baseline" => {
                opts.scaling_baseline = value(i)?;
                i += 2;
            }
            "--scaling-fresh" => {
                opts.scaling_fresh = Some(value(i)?);
                i += 2;
            }
            "--scaling-mem-threshold" => {
                let v = value(i)?;
                opts.scaling_mem_threshold = v
                    .parse()
                    .map_err(|_| format!("--scaling-mem-threshold: cannot parse {v:?}"))?;
                if opts.scaling_mem_threshold.is_nan() || opts.scaling_mem_threshold < 1.0 {
                    return Err(format!("--scaling-mem-threshold must be >= 1.0, got {v}"));
                }
                i += 2;
            }
            "--obs-baseline" => {
                opts.obs_baseline = value(i)?;
                i += 2;
            }
            "--obs-fresh" => {
                opts.obs_fresh = Some(value(i)?);
                i += 2;
            }
            "--obs-budget" => {
                let v = value(i)?;
                opts.obs_budget = v
                    .parse()
                    .map_err(|_| format!("--obs-budget: cannot parse {v:?}"))?;
                if opts.obs_budget.is_nan() || opts.obs_budget < 1.0 {
                    return Err(format!("--obs-budget must be >= 1.0, got {v}"));
                }
                i += 2;
            }
            "--serve-baseline" => {
                opts.serve_baseline = value(i)?;
                i += 2;
            }
            "--serve-fresh" => {
                opts.serve_fresh = Some(value(i)?);
                i += 2;
            }
            "--trace" => {
                opts.trace = Some(value(i)?);
                i += 2;
            }
            "--threshold" => {
                let v = value(i)?;
                opts.threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold: cannot parse {v:?}"))?;
                if opts.threshold.is_nan() || opts.threshold < 1.0 {
                    return Err(format!("--threshold must be >= 1.0, got {v}"));
                }
                i += 2;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn load(path: &str) -> Result<PipelineBench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    PipelineBench::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&argv) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("bench_check: error: {msg}");
            }
            eprintln!(
                "usage: bench_check [--baseline FILE] [--fresh FILE] [--threshold F] \
                 [--scaling-baseline FILE] [--scaling-fresh FILE] [--scaling-mem-threshold F] \
                 [--obs-baseline FILE] [--obs-fresh FILE] [--obs-budget F] \
                 [--serve-baseline FILE] [--serve-fresh FILE] [--trace FILE]"
            );
            return ExitCode::from(2);
        }
    };

    let baseline = match load(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: error: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match &opts.fresh {
        Some(path) => match load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_check: error: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            eprintln!("bench_check: measuring (no --fresh file given)...");
            pipeline::measure()
        }
    };

    if baseline.jobs != fresh.jobs || baseline.workload != fresh.workload {
        eprintln!(
            "bench_check: warning: baseline is {} ({} jobs), fresh is {} ({} jobs) — \
             comparing anyway, but the workload changed",
            baseline.workload, baseline.jobs, fresh.workload, fresh.jobs
        );
    }

    let mut failed = false;
    for check in pipeline::compare(&baseline, &fresh, opts.threshold) {
        let verdict = if check.regressed { "REGRESSED" } else { "ok" };
        eprintln!(
            "bench_check: {:<17} baseline {:>10} ns, fresh {:>10} ns, ratio {:.2} (threshold {:.2}) {verdict}",
            check.name, check.baseline_ns, check.fresh_ns, check.ratio, opts.threshold
        );
        failed |= check.regressed;
    }
    if let Some(path) = &opts.scaling_fresh {
        let loaded = load_scaling(&opts.scaling_baseline).and_then(|baseline| {
            let fresh = load_scaling(path)?;
            Ok((baseline, fresh))
        });
        let (baseline, fresh) = match loaded {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("bench_check: error: {e}");
                return ExitCode::from(2);
            }
        };
        let checks = scaling::compare_scaling(&baseline, &fresh, opts.threshold);
        if checks.is_empty() {
            eprintln!(
                "bench_check: warning: no scaling rows in {path} match the baseline \
                 — nothing checked"
            );
        }
        for (label, check) in checks {
            let verdict = if check.regressed { "REGRESSED" } else { "ok" };
            eprintln!(
                "bench_check: {label:<16} {:<12} baseline {:>13} ns, fresh {:>13} ns, ratio {:.2} (threshold {:.2}) {verdict}",
                check.name, check.baseline_ns, check.fresh_ns, check.ratio, opts.threshold
            );
            failed |= check.regressed;
        }
        // Memory budgets: the committed peaks bound the fresh peaks.
        for (label, check) in
            scaling::compare_scaling_memory(&baseline, &fresh, opts.scaling_mem_threshold)
        {
            let verdict = if check.regressed { "REGRESSED" } else { "ok" };
            eprintln!(
                "bench_check: {label:<16} {:<12} budget {:>13} B, fresh {:>13} B, ratio {:.2} (threshold {:.2}) {verdict}",
                check.name, check.baseline_ns, check.fresh_ns, check.ratio, opts.scaling_mem_threshold
            );
            failed |= check.regressed;
        }
    }

    if let Some(path) = &opts.obs_fresh {
        let fresh = match load_obs(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_check: error: {e}");
                return ExitCode::from(2);
            }
        };
        // The overhead budget gate is self-contained: it compares the
        // fresh run against its own untraced baseline, so it holds on
        // any machine, fast or slow.
        for (label, check) in obs_overhead::check_overhead(&fresh, opts.obs_budget) {
            let verdict = if check.regressed { "REGRESSED" } else { "ok" };
            if check.name == "dropped_events" {
                eprintln!(
                    "bench_check: {label:<16} {:<16} {} dropped (must be 0) {verdict}",
                    check.name, check.fresh_ns
                );
            } else {
                eprintln!(
                    "bench_check: {label:<16} {:<16} untraced {:>13} ns, fresh {:>13} ns, ratio {:.3} (budget {:.2}) {verdict}",
                    check.name, check.baseline_ns, check.fresh_ns, check.ratio, opts.obs_budget
                );
            }
            failed |= check.regressed;
        }
        // Absolute wall times are additionally held to the ordinary
        // threshold against the committed baseline when it exists.
        match load_obs(&opts.obs_baseline) {
            Ok(baseline) => {
                for (label, check) in obs_overhead::compare_obs(&baseline, &fresh, opts.threshold) {
                    let verdict = if check.regressed { "REGRESSED" } else { "ok" };
                    eprintln!(
                        "bench_check: {label:<16} {:<16} baseline {:>13} ns, fresh {:>13} ns, ratio {:.2} (threshold {:.2}) {verdict}",
                        check.name, check.baseline_ns, check.fresh_ns, check.ratio, opts.threshold
                    );
                    failed |= check.regressed;
                }
            }
            Err(e) => {
                eprintln!(
                    "bench_check: warning: {e} — budget gate ran, cross-run comparison skipped"
                );
            }
        }
    }

    if let Some(path) = &opts.serve_fresh {
        let fresh = match load_serve(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_check: error: {e}");
                return ExitCode::from(2);
            }
        };
        // The absolute floors hold regardless of any baseline: the
        // daemon must sustain the target rate with bounded tail latency
        // and a warm cache, and a load test that produced errors is not
        // a measurement at all.
        for check in serve::check_floors(&fresh) {
            let verdict = if check.failed { "REGRESSED" } else { "ok" };
            eprintln!(
                "bench_check: serve {:<18} value {:>12.1}, bound {:>10.1} {verdict}",
                check.name, check.value, check.bound
            );
            failed |= check.failed;
        }
        match load_serve(&opts.serve_baseline) {
            Ok(baseline) => {
                for check in serve::compare_serve(&baseline, &fresh, opts.threshold) {
                    let verdict = if check.failed { "REGRESSED" } else { "ok" };
                    eprintln!(
                        "bench_check: serve {:<18} value {:>12.1}, bound {:>10.1} (threshold {:.2}) {verdict}",
                        check.name, check.value, check.bound, opts.threshold
                    );
                    failed |= check.failed;
                }
            }
            Err(e) => {
                eprintln!(
                    "bench_check: warning: {e} — serve floors ran, cross-run comparison skipped"
                );
            }
        }
    }

    if let Some(path) = &opts.trace {
        match analyze_trace(path) {
            Ok(stats) => {
                let secs = stats.elapsed.as_secs_f64().max(1e-9);
                eprintln!(
                    "bench_check: trace {path}: {} records ({} lifecycle events, {} jobs) \
                     streamed in {:.1} ms ({:.0} records/s)",
                    stats.records,
                    stats.events,
                    stats.jobs,
                    secs * 1e3,
                    stats.records as f64 / secs
                );
                if stats.events == 0 {
                    eprintln!("bench_check: error: {path}: no lifecycle events in trace");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("bench_check: error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        eprintln!(
            "bench_check: FAIL — a metric exceeded its threshold; if an absolute-time drift is \
             intentional, regenerate the baseline with `cargo run --release -p prio-bench --bin \
             bench_pipeline` (and `--bin bench_scaling` / `--bin bench_obs` / `--bin bench_serve` \
             for scaling/overhead/serve rows); an overhead-budget failure (ratio > {:.2}) means \
             tracing itself got more expensive and must be fixed, not re-baselined; a serve-floor \
             failure means the daemon missed its absolute targets and cannot be re-baselined away",
            opts.obs_budget
        );
        return ExitCode::from(1);
    }
    eprintln!("bench_check: all metrics within threshold");
    ExitCode::SUCCESS
}

fn load_scaling(path: &str) -> Result<ScalingBench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ScalingBench::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_obs(path: &str) -> Result<ObsBench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ObsBench::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_serve(path: &str) -> Result<ServeBench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ServeBench::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

struct TraceStats {
    records: u64,
    events: u64,
    jobs: usize,
    elapsed: std::time::Duration,
}

/// Streams a `--trace-out` JSONL file through the same reader and event
/// decoder `prio trace` uses, counting records and distinct jobs. Any
/// parse or schema error fails the check — the committed trace format and
/// the reader must never drift apart.
fn analyze_trace(path: &str) -> Result<TraceStats, String> {
    use prio_sim::trace::TraceEvent;
    let reader = prio_obs::stream::open(path).map_err(|e| format!("{path}: {e}"))?;
    let start = std::time::Instant::now();
    let mut stats = TraceStats {
        records: 0,
        events: 0,
        jobs: 0,
        elapsed: std::time::Duration::ZERO,
    };
    for record in reader {
        let record = record.map_err(|e| format!("{path}: {e}"))?;
        stats.records += 1;
        let event = prio_sim::trace_json::event_from_value(&record.value)
            .map_err(|e| format!("{path}: line {}: {e}", record.line_no))?;
        if let Some(event) = event {
            stats.events += 1;
            let job = match event {
                TraceEvent::JobSubmitted { job, .. }
                | TraceEvent::JobEligible { job, .. }
                | TraceEvent::JobAssigned { job, .. }
                | TraceEvent::JobCompleted { job, .. }
                | TraceEvent::JobFailed { job, .. }
                | TraceEvent::JobRetried { job, .. } => Some(job.index()),
                TraceEvent::BatchArrived { .. }
                | TraceEvent::WorkerDown { .. }
                | TraceEvent::WorkerUp { .. } => None,
            };
            if let Some(j) = job {
                stats.jobs = stats.jobs.max(j + 1);
            }
        }
    }
    stats.elapsed = start.elapsed();
    Ok(stats)
}
