//! Ad-hoc per-stage profile of the PRIO pipeline (development aid).

use prio_bench::scaling::{layered_tier, montage_tier};
use prio_core::prio::Prioritizer;
use std::time::Instant;

fn main() {
    let tier: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    for (name, dag) in [
        ("montage", montage_tier(tier)),
        ("layered", layered_tier(tier)),
    ] {
        prio_obs::span::reset_spans();
        let prio = Prioritizer::new();
        let t = Instant::now();
        let r = prio.prioritize(&dag).unwrap();
        let total = t.elapsed();
        eprintln!(
            "{name} {} jobs {} arcs: total {:?} ({} components)",
            dag.num_nodes(),
            dag.num_arcs(),
            total,
            r.stats.num_components
        );
        for rec in prio_obs::span::snapshot() {
            eprintln!(
                "  {:<28} count {:>8}  total {:>12?}",
                rec.path, rec.stat.count, rec.stat.total
            );
        }
    }
}
