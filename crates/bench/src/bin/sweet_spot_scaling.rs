//! Extension experiment: how a dag's PRIO-favourable batch-size band moves
//! with dag scale.
//!
//! The paper reports per-dag sweet spots (AIRSN ≈ 2⁵, Inspiral ≈ 2⁹,
//! Montage ≈ 2⁷, SDSS ≈ 2¹³) that track the dags' parallel widths. Our
//! default SDSS sweep runs at 1/10 scale, so its sweet spot sits far below
//! the paper's 2¹³; this experiment sweeps μ_BS at several dag scales and
//! shows the argmin batch size growing with scale — evidence that the
//! full-size spot extrapolates toward the paper's.
//!
//! ```text
//! sweet_spot_scaling [--dag sdss|airsn|inspiral|montage] [--mu-bit X]
//!                    [--p N] [--q N] [--scales a,b,c]
//! ```

use prio_bench::report::{fmt_ci, Table};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::sweep::{paper_mu_bss, sweep};
use prio_sim::PolicySpec;
use prio_workloads::{airsn, inspiral, montage, sdss};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut dag_name = "sdss".to_string();
    let mut mu_bit = 1.0f64;
    let mut p = 16usize;
    let mut q = 8usize;
    let mut scales = vec![0.02, 0.05, 0.1, 0.2];
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dag" => {
                i += 1;
                dag_name = argv[i].clone();
            }
            "--mu-bit" => {
                i += 1;
                mu_bit = argv[i].parse().expect("numeric --mu-bit");
            }
            "--p" => {
                i += 1;
                p = argv[i].parse().expect("numeric --p");
            }
            "--q" => {
                i += 1;
                q = argv[i].parse().expect("numeric --q");
            }
            "--scales" => {
                i += 1;
                scales = argv[i]
                    .split(',')
                    .map(|s| s.parse().expect("numeric scale"))
                    .collect();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut table = Table::new(&[
        "scale",
        "jobs",
        "best mu_bs",
        "best time ratio (median, CI)",
        "log2(best mu_bs)",
    ]);
    for &scale in &scales {
        let dag = match dag_name.as_str() {
            "sdss" => sdss::sdss(sdss::SdssParams::scaled(scale)),
            "airsn" => airsn::airsn(((airsn::PAPER_WIDTH as f64 * scale).round() as usize).max(4)),
            "inspiral" => inspiral::inspiral(inspiral::InspiralParams::scaled(scale)),
            "montage" => montage::montage(montage::MontageParams::scaled(scale)),
            other => {
                eprintln!("unknown dag {other}");
                std::process::exit(2);
            }
        };
        let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
        let plan = ReplicationPlan {
            p,
            q,
            seed: 42,
            threads: 0,
        };
        let mu_bss = paper_mu_bss();
        eprintln!(
            "scale {scale}: {} jobs, sweeping {} batch sizes…",
            dag.num_nodes(),
            mu_bss.len()
        );
        let cells = sweep(
            &dag,
            &prio,
            &PolicySpec::Fifo,
            &[mu_bit],
            &mu_bss,
            &plan,
            |_| {},
        );
        let best = cells
            .iter()
            .filter_map(|c| {
                c.result
                    .execution_time_ratio
                    .as_ref()
                    .map(|ci| (ci.median, c))
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("non-empty sweep");
        table.row(vec![
            format!("{scale}"),
            dag.num_nodes().to_string(),
            format!("{}", best.1.mu_bs),
            fmt_ci(&best.1.result.execution_time_ratio),
            format!("{:.1}", best.1.mu_bs.log2()),
        ]);
    }
    println!("\n== sweet-spot batch size vs dag scale ({dag_name}, mu_bit={mu_bit}) ==\n");
    println!("{}", table.render());
    println!("expected shape: log2(best mu_bs) grows with scale.");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(format!("results/sweet_spot_{dag_name}.txt"), table.render())
        .expect("write table");
}
