//! Reproduces the paper's Figs. 6–9: ratios of (a) expected execution
//! time, (b) probability of stalling and (c) expected utilization between
//! the PRIO and FIFO scheduling algorithms, swept over
//! `μ_BIT ∈ {10⁻³ … 10³}` × `μ_BS ∈ {2⁰ … 2¹⁶}`, with 95% confidence
//! intervals and medians.
//!
//! ```text
//! fig6to9_ratios <airsn|inspiral|montage|sdss|all>
//!     [--p N] [--q N] [--seed S] [--threads T]
//!     [--scale F]     dag scale (default: paper sizes except SDSS,
//!                     which defaults to 0.1 of its 48,013 jobs; pass
//!                     --full for the full SDSS)
//!     [--quick]       3×5 sub-grid instead of the full 7×17
//! ```
//!
//! Output: a TSV per dag under `results/` plus a console summary of the
//! headline shape checks.

use prio_bench::report::{fmt_ci, Table};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::sweep::{paper_mu_bits, paper_mu_bss, sweep, SweepCell};
use prio_sim::PolicySpec;
use prio_workloads::{airsn, inspiral, montage, sdss};
use std::time::Instant;

struct Options {
    p: usize,
    q: usize,
    seed: u64,
    threads: usize,
    scale: Option<f64>,
    full: bool,
    quick: bool,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut opts = Options {
        p: 20,
        q: 10,
        seed: 20060401,
        threads: 0,
        scale: None,
        full: false,
        quick: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--p" => opts.p = next(&argv, &mut i),
            "--q" => opts.q = next(&argv, &mut i),
            "--seed" => opts.seed = next(&argv, &mut i),
            "--threads" => opts.threads = next(&argv, &mut i),
            "--scale" => opts.scale = Some(next(&argv, &mut i)),
            "--full" => opts.full = true,
            "--quick" => opts.quick = true,
            other if !other.starts_with("--") => which.push(other.to_lowercase()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = vec![
            "airsn".into(),
            "inspiral".into(),
            "montage".into(),
            "sdss".into(),
        ];
    }
    std::fs::create_dir_all("results").expect("create results dir");
    for name in which {
        run_dag(&name, &opts);
    }
}

fn next<T: std::str::FromStr>(argv: &[String], i: &mut usize) -> T {
    *i += 1;
    argv.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("flag {} needs a value", argv[*i - 1]);
            std::process::exit(2);
        })
}

fn build_dag(name: &str, opts: &Options) -> prio_graph::Dag {
    let scale = opts.scale;
    match name {
        "airsn" => airsn::airsn(scale.map_or(airsn::PAPER_WIDTH, |f| {
            ((airsn::PAPER_WIDTH as f64 * f).round() as usize).max(4)
        })),
        "inspiral" => inspiral::inspiral(scale.map_or_else(
            inspiral::InspiralParams::default,
            inspiral::InspiralParams::scaled,
        )),
        "montage" => montage::montage(scale.map_or_else(
            montage::MontageParams::default,
            montage::MontageParams::scaled,
        )),
        "sdss" => {
            // The full 48,013-job SDSS is expensive to sweep; default to a
            // 1/10-scale instance unless --full (or an explicit --scale).
            let params = match (opts.full, scale) {
                (true, _) => sdss::SdssParams::default(),
                (false, Some(f)) => sdss::SdssParams::scaled(f),
                (false, None) => sdss::SdssParams::scaled(0.1),
            };
            sdss::sdss(params)
        }
        other => {
            eprintln!("unknown dag {other}");
            std::process::exit(2);
        }
    }
}

fn run_dag(name: &str, opts: &Options) {
    let dag = build_dag(name, opts);
    eprintln!("== {name}: {} jobs ==", dag.num_nodes());
    let start = Instant::now();
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    eprintln!(
        "{name}: prioritized in {:.2}s",
        start.elapsed().as_secs_f64()
    );

    let (mu_bits, mu_bss) = if opts.quick {
        (
            vec![1e-2, 1.0, 1e2],
            vec![1.0, 16.0, 256.0, 4096.0, 65536.0],
        )
    } else {
        (paper_mu_bits(), paper_mu_bss())
    };
    let plan = ReplicationPlan {
        p: opts.p,
        q: opts.q,
        seed: opts.seed,
        threads: opts.threads,
    };

    let total = mu_bits.len() * mu_bss.len();
    let mut done = 0usize;
    let sweep_start = Instant::now();
    let cells = sweep(
        &dag,
        &prio,
        &PolicySpec::Fifo,
        &mu_bits,
        &mu_bss,
        &plan,
        |c| {
            done += 1;
            eprintln!(
            "{name}: cell {done}/{total} mu_bit={:.0e} mu_bs={:.0} time_ratio={} ({:.0}s elapsed)",
            c.mu_bit,
            c.mu_bs,
            fmt_ci(&c.result.execution_time_ratio),
            sweep_start.elapsed().as_secs_f64()
        );
        },
    );

    let mut tsv = Table::new(&[
        "mu_bit",
        "mu_bs",
        "time_ratio_median",
        "time_ratio_lo",
        "time_ratio_hi",
        "stall_ratio_median",
        "stall_ratio_lo",
        "stall_ratio_hi",
        "util_ratio_median",
        "util_ratio_lo",
        "util_ratio_hi",
        "prio_time_mean",
        "fifo_time_mean",
    ]);
    for c in &cells {
        let tri = |ci: &Option<prio_stats::ConfidenceInterval>| -> [String; 3] {
            match ci {
                Some(ci) => [
                    format!("{:.5}", ci.median),
                    format!("{:.5}", ci.lo),
                    format!("{:.5}", ci.hi),
                ],
                None => ["-".into(), "-".into(), "-".into()],
            }
        };
        let t = tri(&c.result.execution_time_ratio);
        let s = tri(&c.result.stalling_ratio);
        let u = tri(&c.result.utilization_ratio);
        tsv.row(vec![
            format!("{:e}", c.mu_bit),
            format!("{}", c.mu_bs),
            t[0].clone(),
            t[1].clone(),
            t[2].clone(),
            s[0].clone(),
            s[1].clone(),
            s[2].clone(),
            u[0].clone(),
            u[1].clone(),
            u[2].clone(),
            format!("{:.4}", c.result.a.execution_time.summary().mean),
            format!("{:.4}", c.result.b.execution_time.summary().mean),
        ]);
    }
    let path = format!("results/fig_ratios_{name}.tsv");
    std::fs::write(&path, tsv.render_tsv()).expect("write tsv");
    eprintln!("{name}: wrote {path}");

    summarize(name, &cells);
}

fn summarize(name: &str, cells: &[SweepCell]) {
    // Best (smallest) median execution-time ratio and where it occurs.
    let best = cells
        .iter()
        .filter_map(|c| {
            c.result
                .execution_time_ratio
                .as_ref()
                .map(|ci| (ci.median, c))
        })
        .min_by(|a, b| a.0.total_cmp(&b.0));
    println!("\n== {name} summary ==");
    if let Some((median, cell)) = best {
        println!(
            "best median time ratio {:.3} at mu_bit={:.0e}, mu_bs={:.0} (CI {})",
            median,
            cell.mu_bit,
            cell.mu_bs,
            fmt_ci(&cell.result.execution_time_ratio)
        );
    }
    // Shape check: ratios near 1 at the extreme ends.
    let near_one = |c: &SweepCell| -> bool {
        c.result
            .execution_time_ratio
            .as_ref()
            .map(|ci| (ci.median - 1.0).abs() < 0.05)
            .unwrap_or(true)
    };
    let fast_arrivals: Vec<&SweepCell> = cells.iter().filter(|c| c.mu_bit <= 1e-2).collect();
    let frac = fast_arrivals.iter().filter(|c| near_one(c)).count();
    println!(
        "cells with mu_bit <= 1e-2 and median time ratio within 5% of 1: {frac}/{}",
        fast_arrivals.len()
    );
    let huge_batches: Vec<&SweepCell> = cells.iter().filter(|c| c.mu_bs >= 65536.0).collect();
    let frac = huge_batches.iter().filter(|c| near_one(c)).count();
    println!(
        "cells with mu_bs = 2^16 and median time ratio within 5% of 1: {frac}/{}",
        huge_batches.len()
    );
    // Headline (AIRSN): mu_bit = 1, mu_bs = 2^4 => >= 13% faster.
    if name == "airsn" {
        if let Some(cell) = cells.iter().find(|c| c.mu_bit == 1.0 && c.mu_bs == 16.0) {
            if let Some(ci) = &cell.result.execution_time_ratio {
                println!(
                    "headline cell (mu_bit=1, mu_bs=2^4): median {:.3}, hi {:.3} (paper: median < 0.85, hi < 0.87)",
                    ci.median, ci.hi
                );
            }
        }
    }
}
