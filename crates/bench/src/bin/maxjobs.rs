//! Quantifying the §3.2 integration shortcoming: DAGMan's `-maxjobs`
//! throttle.
//!
//! "In order to enforce the order of job assignment to workers, all
//! eligible jobs must be forwarded to the Condor queue … Hence, the
//! -maxjobs parameter … should not be used." The paper argues this
//! qualitatively; this experiment measures it: the PRIO priorities are run
//! through a model of the DAGMan-queue → Condor-queue forwarding with a
//! `maxjobs` cap, and compared against FIFO at the AIRSN sweet-spot cell.
//!
//! Expected shape: with a generous cap PRIO keeps its full advantage;
//! as the cap shrinks, priorities act on an ever-smaller window of the
//! FIFO stream and the ratio climbs to 1 (at `maxjobs = 1` the priorities
//! are inert).

use prio_bench::report::{fmt_ci, Table};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::{compare_policies, GridModel, PolicySpec};
use prio_workloads::airsn::airsn;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(250);
    let dag = airsn(width);
    let schedule = prioritize(&dag).unwrap().schedule;
    let plan = ReplicationPlan {
        p: 20,
        q: 12,
        seed: 32001,
        threads: 0,
    };
    let model = GridModel::paper(1.0, 16.0);

    let mut table = Table::new(&[
        "maxjobs",
        "PRIO(throttled) mean time",
        "FIFO mean time",
        "time ratio (median, CI)",
    ]);
    let caps: [usize; 6] = [1, 4, 16, 64, 256, usize::MAX];
    for cap in caps {
        let policy = PolicySpec::ThrottledOblivious {
            schedule: schedule.clone(),
            maxjobs: cap,
        };
        let r = compare_policies(&dag, &policy, &PolicySpec::Fifo, &model, &plan);
        table.row(vec![
            if cap == usize::MAX {
                "unlimited".into()
            } else {
                cap.to_string()
            },
            format!("{:.2}", r.a.execution_time.summary().mean),
            format!("{:.2}", r.b.execution_time.summary().mean),
            fmt_ci(&r.execution_time_ratio),
        ]);
    }
    println!("\n== §3.2 shortcoming: PRIO behind a -maxjobs throttle (AIRSN width {width}) ==\n");
    println!("{}", table.render());
    println!(
        "expected shape: the advantage collapses toward 1 as maxjobs shrinks —\n\
         the paper's advice that -maxjobs 'should not be used' with prio, quantified."
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/maxjobs.txt", table.render()).expect("write table");
}
