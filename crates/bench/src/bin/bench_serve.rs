//! Measures sustained daemon throughput and latency and writes
//! `BENCH_serve.json` — the committed baseline `bench_check
//! --serve-fresh` guards.
//!
//! ```text
//! cargo run -p prio-bench --release --bin bench_serve -- \
//!     [--rate N] [--duration-secs S] [--serve-threads N] [--unique N] \
//!     [--fresh-every N] [--repeat N] [--out FILE]
//! ```
//!
//! Starts an in-process daemon on an ephemeral port and drives it
//! open-loop with a duplicate-heavy mix of ~100-job Montage-like dags
//! (see `prio_bench::serve`). The measurement runs `--repeat` times
//! (default 3) and the best run by p99 is kept — open-loop tails on a
//! shared runner are scheduler-noise dominated. Prints the measurement
//! as a table and writes the JSON to `--out` (default
//! `BENCH_serve.json`). Exits 1 if any absolute floor (≥10k req/s
//! sustained, bounded p99, hit ratio ≥ 0.90, zero errors) is violated,
//! so CI never commits a baseline that fails its own gate.

use prio_bench::serve::{check_floors, measure_best, ServeBenchOptions};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ServeBenchOptions::default();
    let mut out = String::from("BENCH_serve.json");
    let mut repeat = 3usize;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("bench_serve: {} requires a value", args[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        let parse_u64 = |i: usize| -> u64 {
            value(i).parse().unwrap_or_else(|_| {
                eprintln!("bench_serve: cannot parse value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--rate" => {
                opts.rate = parse_u64(i);
                i += 2;
            }
            "--duration-secs" => {
                opts.duration = Duration::from_secs(parse_u64(i));
                i += 2;
            }
            "--serve-threads" => {
                opts.threads = parse_u64(i) as usize;
                i += 2;
            }
            "--unique" => {
                opts.unique = parse_u64(i) as usize;
                i += 2;
            }
            "--fresh-every" => {
                opts.fresh_every = parse_u64(i) as usize;
                i += 2;
            }
            "--repeat" => {
                repeat = parse_u64(i) as usize;
                i += 2;
            }
            "--out" => {
                out = value(i);
                i += 2;
            }
            other => {
                eprintln!("bench_serve: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.rate == 0
        || opts.threads == 0
        || opts.unique == 0
        || opts.fresh_every == 0
        || repeat == 0
    {
        eprintln!(
            "bench_serve: --rate/--serve-threads/--unique/--fresh-every/--repeat must be nonzero"
        );
        return ExitCode::from(2);
    }

    let bench = measure_best(&opts, repeat);
    println!(
        "bench_serve: {} x {}-job {} dags, {} threads, offered {} req/s for {:.1}s",
        bench.unique_dags,
        bench.jobs,
        bench.workload,
        bench.threads,
        bench.offered_rps,
        bench.duration_ns as f64 / 1e9,
    );
    println!(
        "bench_serve: {} sent, {} ok, {} overloaded, {} errors",
        bench.requests, bench.completed, bench.overloaded, bench.errors
    );
    println!(
        "bench_serve: sustained {:.0} req/s, latency p50 {}us p90 {}us p99 {}us, hit ratio {:.3}",
        bench.achieved_rps, bench.p50_us, bench.p90_us, bench.p99_us, bench.hit_ratio
    );

    if let Err(e) = std::fs::write(&out, bench.to_json()) {
        eprintln!("bench_serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!("bench_serve: wrote {out}");

    let mut failed = false;
    for check in check_floors(&bench) {
        if check.failed {
            eprintln!(
                "bench_serve: FLOOR VIOLATED: {} = {:.1} (bound {:.1})",
                check.name, check.value, check.bound
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
