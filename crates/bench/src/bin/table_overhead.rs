//! Reproduces the §3.6 overhead table: running time and peak memory of the
//! `prio` pipeline on the four scientific dags at full size (the paper ran
//! on a 3.4 GHz Pentium 4 with MSVC; absolute numbers differ, the scaling
//! across dags is the comparison target).
//!
//! Timing comes from the observability span registry — the same clocks the
//! CLI's `--timings` footer reads — so the table additionally breaks the
//! total down into the pipeline phases (reduce, decompose, schedule,
//! combine, emit).

use prio_bench::mem::{peak_since, reset_peak, CountingAllocator};
use prio_bench::report::{fmt_bytes, fmt_duration, Table};
use prio_core::prio::prioritize;
use prio_obs::span;
use prio_workloads::paper_suite;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Paper-reported numbers for reference: (jobs, seconds, memory).
const PAPER: [(&str, &str, &str); 4] = [
    ("AIRSN", "< 1 s", "2 MB"),
    ("Inspiral", "16 s", "21 MB"),
    ("Montage", "8 s", "104 MB"),
    ("SDSS", "845 s", "1.3 GB"),
];

/// The phase spans broken out as columns — the stage vocabulary shared by
/// the span registry and the error taxonomy, recorded at their
/// implementation sites inside prio-graph and prio-core.
const PHASES: [&str; 5] = [
    prio_obs::stage::REDUCE,
    prio_obs::stage::DECOMPOSE,
    prio_obs::stage::SCHEDULE,
    prio_obs::stage::COMBINE,
    prio_obs::stage::EMIT,
];

fn phase_total(path: &str) -> Duration {
    span::stat_of(path).map(|s| s.total).unwrap_or_default()
}

fn main() {
    let mut headers = vec!["dag", "jobs", "time (ours)"];
    headers.extend(PHASES);
    headers.extend(["peak mem (ours)", "time (paper, P4/MSVC)", "mem (paper)"]);
    let mut t = Table::new(&headers);
    for (i, w) in paper_suite().into_iter().enumerate() {
        eprintln!(
            "overhead: prioritizing {} ({} jobs)…",
            w.name,
            w.dag().num_nodes()
        );
        // Each workload is measured from a clean registry so the phase
        // columns belong to this dag alone.
        prio_obs::reset();
        let baseline = reset_peak();
        let total = {
            let guard = span::span("prioritize");
            let result = prioritize(w.dag()).unwrap();
            assert!(result.schedule.is_valid_for(w.dag()));
            guard.elapsed()
        };
        let peak = peak_since(baseline);
        let (pname, ptime, pmem) = PAPER[i];
        assert_eq!(pname, w.name);
        let mut row = vec![
            w.name.to_string(),
            w.dag().num_nodes().to_string(),
            fmt_duration(total),
        ];
        row.extend(
            PHASES
                .iter()
                .map(|p| fmt_duration(phase_total(&format!("prioritize/{p}")))),
        );
        row.extend([fmt_bytes(peak), ptime.to_string(), pmem.to_string()]);
        t.row(row);
    }
    println!("\n== §3.6 overhead table: prio tool on the four scientific dags ==\n");
    println!("{}", t.render());
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/table_overhead.txt", t.render()).expect("write table");
    println!("wrote results/table_overhead.txt");
}
