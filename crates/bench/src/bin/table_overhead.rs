//! Reproduces the §3.6 overhead table: running time and peak memory of the
//! `prio` pipeline on the four scientific dags at full size (the paper ran
//! on a 3.4 GHz Pentium 4 with MSVC; absolute numbers differ, the scaling
//! across dags is the comparison target).

use prio_bench::mem::{peak_since, reset_peak, CountingAllocator};
use prio_bench::report::{fmt_bytes, fmt_duration, Table};
use prio_core::prio::prioritize;
use prio_workloads::paper_suite;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Paper-reported numbers for reference: (jobs, seconds, memory).
const PAPER: [(&str, &str, &str); 4] = [
    ("AIRSN", "< 1 s", "2 MB"),
    ("Inspiral", "16 s", "21 MB"),
    ("Montage", "8 s", "104 MB"),
    ("SDSS", "845 s", "1.3 GB"),
];

fn main() {
    let mut t = Table::new(&[
        "dag",
        "jobs",
        "time (ours)",
        "peak mem (ours)",
        "time (paper, P4/MSVC)",
        "mem (paper)",
    ]);
    for (i, w) in paper_suite().into_iter().enumerate() {
        eprintln!("overhead: prioritizing {} ({} jobs)…", w.name, w.dag.num_nodes());
        let baseline = reset_peak();
        let start = Instant::now();
        let result = prioritize(&w.dag);
        let elapsed = start.elapsed();
        let peak = peak_since(baseline);
        assert!(result.schedule.is_valid_for(&w.dag));
        let (pname, ptime, pmem) = PAPER[i];
        assert_eq!(pname, w.name);
        t.row(vec![
            w.name.to_string(),
            w.dag.num_nodes().to_string(),
            fmt_duration(elapsed),
            fmt_bytes(peak),
            ptime.to_string(),
            pmem.to_string(),
        ]);
        drop(result);
    }
    println!("\n== §3.6 overhead table: prio tool on the four scientific dags ==\n");
    println!("{}", t.render());
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/table_overhead.txt", t.render()).expect("write table");
    println!("wrote results/table_overhead.txt");
}
