//! Extension experiment: does PRIO's advantage survive unreliable
//! workers?
//!
//! The paper's model is reliable ("a more comprehensive model that
//! explicitly models a worker temporarily quitting … is beyond the scope
//! of this paper"). This extension sweeps a per-assignment failure
//! probability — a failed job re-enters the eligible queue — at the AIRSN
//! sweet-spot cell (`μ_BIT = 1`, `μ_BS = 2⁴`) and reports the PRIO/FIFO
//! ratios. Expected shape: PRIO's edge persists (failures delay both
//! policies roughly proportionally) and erodes only slowly.

use prio_bench::report::{fmt_ci, Table};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::{compare_policies, GridModel, PolicySpec};
use prio_workloads::airsn::airsn;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let dag = airsn(width);
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    let plan = ReplicationPlan {
        p: 20,
        q: 12,
        seed: 1123,
        threads: 0,
    };

    let mut table = Table::new(&[
        "failure prob",
        "PRIO mean time",
        "FIFO mean time",
        "time ratio (median, CI)",
        "util ratio (median, CI)",
    ]);
    for f in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let model = GridModel::paper(1.0, 16.0).with_failures(f);
        let r = compare_policies(&dag, &prio, &PolicySpec::Fifo, &model, &plan);
        table.row(vec![
            format!("{f:.2}"),
            format!("{:.2}", r.a.execution_time.summary().mean),
            format!("{:.2}", r.b.execution_time.summary().mean),
            fmt_ci(&r.execution_time_ratio),
            fmt_ci(&r.utilization_ratio),
        ]);
    }
    println!(
        "\n== robustness: PRIO vs FIFO under worker failures (AIRSN width {width}, {} jobs) ==\n",
        dag.num_nodes()
    );
    println!("{}", table.render());
    println!("expected shape: time ratio stays below 1 as failures grow.");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/robustness.txt", table.render()).expect("write table");
}
