//! Reproduces the paper's Fig. 3: invoking `prio` on the 5-job `IV.dag`
//! (a → b, c → d, c → e) yields the PRIO schedule c, a, b, d, e; the
//! DAGMan file gains one `VARS … jobpriority` line per job (job `c` gets
//! the highest value, 5) and the JSDF gains `priority = $(jobpriority)`.

use prio_bench::report::Table;
use prio_core::optimal::{is_ic_optimal, DEFAULT_STATE_LIMIT};
use prio_core::prio::prioritize;
use prio_dagman::instrument::{instrument_dagman, priorities_by_job};
use prio_dagman::jsdf::Jsdf;
use prio_dagman::parse::parse_dagman;
use prio_dagman::write::write_dagman;

const IV_DAG: &str = "\
JOB a a.submit
JOB b b.submit
JOB c c.submit
JOB d d.submit
JOB e e.submit
PARENT a CHILD b
PARENT c CHILD d e
";

const C_SUBMIT: &str = "\
universe = vanilla
executable = c_job
queue
";

fn main() {
    println!("== Fig. 3: prio invoked on IV.dag ==\n");
    let mut file = parse_dagman(IV_DAG).expect("IV.dag parses");
    let dag = file.to_dag().expect("IV.dag is acyclic");

    let result = prioritize(&dag).unwrap();
    let names: Vec<&str> = result
        .schedule
        .order()
        .iter()
        .map(|&u| dag.label(u))
        .collect();
    println!("PRIO schedule: {}", names.join(","));
    assert_eq!(names, ["c", "a", "b", "d", "e"], "must match the paper");
    assert_eq!(
        is_ic_optimal(&dag, result.schedule.order(), DEFAULT_STATE_LIMIT),
        Some(true),
        "the Fig. 3 schedule is IC-optimal"
    );

    let mut t = Table::new(&["job", "schedule position", "jobpriority"]);
    for (i, &u) in result.schedule.order().iter().enumerate() {
        t.row(vec![
            dag.label(u).to_string(),
            (i + 1).to_string(),
            (dag.num_nodes() - i).to_string(),
        ]);
    }
    println!("\n{}", t.render());

    let priorities = priorities_by_job(names.iter().copied());
    instrument_dagman(&mut file, &priorities).expect("instrumentation succeeds");
    println!("instrumented IV.dag:\n{}", write_dagman(&file));

    let mut jsdf = Jsdf::parse(C_SUBMIT);
    jsdf.instrument_priority();
    println!("instrumented c.submit:\n{}", jsdf.to_text());

    println!(
        "paper check: job c holds jobpriority 5 -> {}",
        priorities["c"] == 5
    );
    assert_eq!(priorities["c"], 5);
}
