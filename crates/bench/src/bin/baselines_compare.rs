//! Extension experiment: PRIO against schedulers beyond FIFO.
//!
//! The paper compares PRIO only with DAGMan's FIFO. This extension adds
//! two classic oblivious baselines at the AIRSN sweet-spot cell:
//!
//! * **CP** — critical-path (largest height first), the standard
//!   makespan-oriented list-scheduling priority;
//! * **RANDOM** — a random linear extension (seeded), the no-information
//!   floor.
//!
//! Each row reports the baseline's mean execution time and the
//! PRIO/baseline ratio. Expected shape: PRIO ≤ CP < FIFO ≈ RANDOM on the
//! fringed-umbrella AIRSN (CP also pushes the handle early, but does not
//! reason about *widths*, only depths).

use prio_bench::report::{fmt_ci, Table};
use prio_core::baselines::{critical_path_schedule, random_schedule};
use prio_core::prio::prioritize;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::{compare_policies, GridModel, PolicySpec};
use prio_workloads::airsn::airsn;
use rand::SeedableRng;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let dag = airsn(width);
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let baselines: Vec<(&str, PolicySpec)> = vec![
        ("FIFO", PolicySpec::Fifo),
        ("CP", PolicySpec::Oblivious(critical_path_schedule(&dag))),
        (
            "RANDOM",
            PolicySpec::Oblivious(random_schedule(&dag, &mut rng)),
        ),
    ];
    let plan = ReplicationPlan {
        p: 20,
        q: 12,
        seed: 3203,
        threads: 0,
    };
    let model = GridModel::paper(1.0, 16.0);

    let mut table = Table::new(&[
        "baseline",
        "PRIO mean time",
        "baseline mean time",
        "PRIO/baseline time ratio",
        "PRIO/baseline util ratio",
    ]);
    for (name, policy) in &baselines {
        let r = compare_policies(&dag, &prio, policy, &model, &plan);
        table.row(vec![
            name.to_string(),
            format!("{:.2}", r.a.execution_time.summary().mean),
            format!("{:.2}", r.b.execution_time.summary().mean),
            fmt_ci(&r.execution_time_ratio),
            fmt_ci(&r.utilization_ratio),
        ]);
    }
    println!(
        "\n== baselines: PRIO vs FIFO/CP/RANDOM (AIRSN width {width}, {} jobs, mu_bit=1, mu_bs=16) ==\n",
        dag.num_nodes()
    );
    println!("{}", table.render());
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/baselines.txt", table.render()).expect("write table");
}
