//! Reproduces the paper's Fig. 4: the per-step difference
//! `E_PRIO(t) − E_FIFO(t)` for the four scientific dags, both absolute and
//! normalized by the number of jobs.
//!
//! Full series are written as TSV under `results/`; the console shows the
//! summary shape checks (difference almost everywhere non-negative, large
//! positive spike for AIRSN).

use prio_bench::report::Table;
use prio_core::fifo::fifo_schedule;
use prio_core::prio::prioritize;
use prio_core::schedule::profile_difference;
use prio_workloads::paper_suite;
use std::time::Instant;

fn main() {
    std::fs::create_dir_all("results").expect("create results dir");
    let mut summary = Table::new(&[
        "dag",
        "jobs",
        "max diff",
        "max diff (normalized)",
        "min diff",
        "steps PRIO >= FIFO",
        "mean diff",
    ]);
    for w in paper_suite() {
        let start = Instant::now();
        let prio = prioritize(w.dag()).unwrap().schedule;
        let fifo = fifo_schedule(w.dag());
        let diff = profile_difference(w.dag(), &prio, &fifo);
        let n = w.dag().num_nodes();
        eprintln!(
            "fig4: {} ({} jobs) computed in {:.2}s",
            w.name,
            n,
            start.elapsed().as_secs_f64()
        );

        let mut tsv = Table::new(&["t", "t_normalized", "diff", "diff_normalized"]);
        for (t, &d) in diff.iter().enumerate() {
            tsv.row(vec![
                t.to_string(),
                format!("{:.6}", t as f64 / n as f64),
                d.to_string(),
                format!("{:.6}", d as f64 / n as f64),
            ]);
        }
        let path = format!("results/fig4_{}.tsv", w.name.to_lowercase());
        std::fs::write(&path, tsv.render_tsv()).expect("write series");
        eprintln!("fig4: wrote {path}");

        let max = diff.iter().copied().max().unwrap_or(0);
        let min = diff.iter().copied().min().unwrap_or(0);
        let nonneg = diff.iter().filter(|&&d| d >= 0).count();
        let mean = diff.iter().sum::<i64>() as f64 / diff.len() as f64;
        summary.row(vec![
            w.name.to_string(),
            n.to_string(),
            max.to_string(),
            format!("{:.4}", max as f64 / n as f64),
            min.to_string(),
            format!("{}/{}", nonneg, diff.len()),
            format!("{mean:.2}"),
        ]);
    }
    println!("\n== Fig. 4 summary: E_PRIO(t) - E_FIFO(t) ==\n");
    println!("{}", summary.render());
    println!(
        "shape check: the difference should be >= 0 at (essentially) every step,\n\
         with the largest normalized spike on AIRSN (the fringed double umbrella)."
    );
}
