//! Plain-text table and TSV rendering for experiment outputs.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        // Widths in chars, not bytes: cells may hold non-ASCII (µ,
        // sparkline blocks) and `format!` pads by char count.
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}", w = width[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: Vec<String> = width.iter().map(|&w| "-".repeat(w)).collect();
        emit(&mut out, &rule);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as tab-separated values (for downstream plotting).
    pub fn render_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Formats an optional confidence interval as `median [lo, hi]` or `-`.
pub fn fmt_ci(ci: &Option<prio_stats::ConfidenceInterval>) -> String {
    match ci {
        Some(ci) => format!("{:.3} [{:.3}, {:.3}]", ci.median, ci.lo, ci.hi),
        None => "-".to_string(),
    }
}

/// Formats a duration in human units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Formats a byte count in human units.
pub fn fmt_bytes(b: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn tsv_rendering() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_tsv(), "x\ty\n1\t2\n");
    }

    #[test]
    fn human_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert!(fmt_bytes(3 * 1024 * 1024).contains("MB"));
        assert!(fmt_duration(std::time::Duration::from_micros(50)).contains("µs"));
        assert!(fmt_duration(std::time::Duration::from_millis(20)).contains("ms"));
        assert!(fmt_duration(std::time::Duration::from_secs(3)).contains("s"));
    }
}
