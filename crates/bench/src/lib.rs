//! # prio-bench — benchmark and figure-regeneration harness
//!
//! One target per table/figure of the paper (see DESIGN.md §4 for the full
//! index):
//!
//! | paper artifact | target |
//! |----------------|--------|
//! | Fig. 3 (tool invocation) | `cargo run -p prio-bench --bin fig3_example` |
//! | Fig. 4 (eligibility differences) | `cargo run -p prio-bench --release --bin fig4_eligibility` |
//! | Fig. 5 (prioritized AIRSN drawing) | `cargo run -p prio-bench --bin fig5_dot` |
//! | Figs. 6–9 (simulation ratio sweeps) | `cargo run -p prio-bench --release --bin fig6to9_ratios -- <dag>` |
//! | §3.5 engineering speedups | `cargo bench -p prio-bench --bench decompose` / `--bench combine`, `cargo run -p prio-bench --release --bin ablations` |
//! | §3.6 overhead table | `cargo bench -p prio-bench --bench overhead`, `cargo run -p prio-bench --release --bin table_overhead` |
//!
//! The library part holds shared plumbing: plain-text table/TSV rendering
//! ([`report`]), a byte-counting global allocator used to estimate the
//! §3.6 memory column ([`mem`]), and the pipeline-throughput measurement
//! shared by `bench_pipeline` and the `bench_check` regression guard
//! ([`pipeline`]).

pub mod mem;
pub mod obs_overhead;
pub mod pipeline;
pub mod report;
pub mod scaling;
pub mod serve;
