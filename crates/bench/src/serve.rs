//! Serve-throughput measurement: the library behind the `bench_serve`
//! load generator and the `--serve-fresh` gate in `bench_check`.
//!
//! The measurement starts an in-process `prio serve` daemon on an
//! ephemeral TCP port and drives it **open-loop**: request send times are
//! scheduled on a fixed grid (`rate` per second) before the run starts,
//! and each latency is measured from the *scheduled* send time, so queue
//! build-up in the daemon shows up as latency instead of silently
//! throttling the client (closed-loop generators hide overload by
//! slowing down with the server). The mix is duplicate-heavy over a pool
//! of paper-scale (~100-job) Montage-like dags, with one never-seen dag
//! spliced in every `fresh_every` requests — so both the content-hash
//! cache hit path and the full pipeline path are always exercised, and a
//! warm-cache hit ratio floor is meaningful.
//!
//! [`ServeBench::to_json`] serializes with a fixed key order
//! ([`KEY_ORDER`]) for a cleanly-diffing committed `BENCH_serve.json`;
//! [`check_floors`] holds a measurement to the absolute acceptance
//! floors (sustained req/s, p99 latency, hit ratio), and
//! [`compare_serve`] guards a fresh run against the committed baseline.

use prio_ir::{FormatId, Workflow};
use prio_obs::json::{parse, JsonValue};
use prio_serve::{encode_control, encode_request, ServeConfig, Server};
use prio_workloads::montage::{montage, MontageParams};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Absolute acceptance floor: sustained requests per second.
pub const MIN_RPS: f64 = 10_000.0;
/// Absolute acceptance ceiling: p99 latency, microseconds. The design
/// target is 5 ms on a quiet machine (what a clean `BENCH_serve.json`
/// run records), but the *gate* is a sanity ceiling an order of
/// magnitude wider: on a shared single-CPU runner the tail is dominated
/// by host preemption stalls of tens of milliseconds — throughput and
/// p50 barely move while p99 swings 10×, so a tight ceiling only
/// measures the neighbors. A real tail regression (a lost wakeup, a
/// wedged drain, a serialized pool) parks requests for seconds and
/// blows through this bound anyway; genuine throughput regressions are
/// caught by the stable [`MIN_RPS`] floor.
pub const MAX_P99_US: u64 = 100_000;
/// Additive scheduler-noise allowance on the relative p99 comparison,
/// sized to the host-preemption stalls observed on shared runners: a
/// multiplicative threshold alone turns a sub-3 ms baseline into a
/// bound ordinary run-to-run jitter crosses.
pub const P99_NOISE_US: u64 = 50_000;
/// Absolute acceptance floor: warm-cache hit ratio on the
/// duplicate-heavy mix.
pub const MIN_HIT_RATIO: f64 = 0.90;

/// The serialized keys, in the exact order [`ServeBench::to_json`] emits
/// them.
pub const KEY_ORDER: [&str; 15] = [
    "workload",
    "jobs",
    "unique_dags",
    "threads",
    "offered_rps",
    "requests",
    "completed",
    "overloaded",
    "errors",
    "duration_ns",
    "achieved_rps",
    "p50_us",
    "p90_us",
    "p99_us",
    "hit_ratio",
];

/// One serve-throughput measurement (or a parsed committed baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// Workload family of the request mix (`"montage"`).
    pub workload: String,
    /// Jobs per dag in the mix (the paper-scale ~100).
    pub jobs: u64,
    /// Distinct dags in the warm pool.
    pub unique_dags: u64,
    /// Daemon worker threads.
    pub threads: u64,
    /// Open-loop offered rate, requests per second.
    pub offered_rps: u64,
    /// Requests sent in the measured window.
    pub requests: u64,
    /// Requests answered `ok`.
    pub completed: u64,
    /// Requests shed with `overloaded`.
    pub overloaded: u64,
    /// Requests answered with an error (must be 0).
    pub errors: u64,
    /// First scheduled send to last response, nanoseconds.
    pub duration_ns: u64,
    /// `completed / duration` — the sustained throughput.
    pub achieved_rps: f64,
    /// Median latency from scheduled send, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Cache hits / lookups during the measured window.
    pub hit_ratio: f64,
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Offered request rate per second.
    pub rate: u64,
    /// Measured-window length.
    pub duration: Duration,
    /// Daemon worker threads.
    pub threads: usize,
    /// Warm-pool size (distinct dags resubmitted round-robin).
    pub unique: usize,
    /// Every `fresh_every`-th request is a never-before-seen dag (a
    /// guaranteed cache miss through the full pipeline); the rest are
    /// warm. 20 ⇒ 5% misses ⇒ ~95% hit ratio.
    pub fresh_every: usize,
}

impl Default for ServeBenchOptions {
    fn default() -> ServeBenchOptions {
        ServeBenchOptions {
            rate: 10_500,
            duration: Duration::from_secs(3),
            threads: 2,
            unique: 32,
            fresh_every: 20,
        }
    }
}

/// The paper-scale (~100-job) Montage-like dag behind every request.
fn base_dag_text() -> (u64, String) {
    let params = MontageParams {
        images: 13,
        tiles: 4,
    };
    let wf = Workflow::synthetic(montage(params));
    let reg = prio_dagman::registry();
    let frontend = reg.get(FormatId::Edges).expect("edges frontend registered");
    (wf.num_jobs() as u64, frontend.export(&wf, wf.priorities()))
}

/// A pre-encoded request line split at the id placeholder, so sending is
/// two writes and zero allocation per request.
struct Prepared {
    prefix: Vec<u8>,
    suffix: Vec<u8>,
}

impl Prepared {
    fn new(workflow_text: &str) -> Prepared {
        const MARK: &str = "%%ID%%";
        let line = encode_request(MARK, workflow_text, Some("edges"), Some("edges"));
        let at = line.find(MARK).expect("marker survives encoding");
        Prepared {
            prefix: line.as_bytes()[..at].to_vec(),
            suffix: line.as_bytes()[at + MARK.len()..].to_vec(),
        }
    }

    fn write(&self, out: &mut impl Write, id: u64) -> std::io::Result<()> {
        out.write_all(&self.prefix)?;
        out.write_all(id.to_string().as_bytes())?;
        out.write_all(&self.suffix)?;
        out.write_all(b"\n")
    }
}

/// Fast-path response decoding: pull `"id"` and classify the status
/// without a full JSON parse (the client must keep up with the daemon on
/// the same machine, and responses carry multi-KB exports).
fn decode_response(line: &str) -> Option<(u64, u8)> {
    let id_at = line.find("\"id\":\"")? + 6;
    let id_end = id_at + line[id_at..].find('"')?;
    let id: u64 = line[id_at..id_end].parse().ok()?;
    let status = if line.contains("\"status\":\"ok\"") {
        0
    } else if line.contains("\"status\":\"overloaded\"") {
        1
    } else {
        2
    };
    Some((id, status))
}

const PENDING: u64 = u64::MAX;

/// Per-request completion slots, written by the reader thread: micros
/// since the client epoch, or [`PENDING`].
struct Completions {
    slots: Vec<AtomicU64>,
    statuses: Vec<AtomicU64>,
    done: AtomicU64,
}

/// Runs the load generator against an in-process daemon and returns the
/// measurement. Panics on harness failures (connect errors, a wedged
/// daemon) — this is a benchmark binary, not a library API.
pub fn measure(opts: &ServeBenchOptions) -> ServeBench {
    let (jobs, base) = base_dag_text();
    // Warm pool: the base dag plus one pool-unique isolated node, so each
    // pool entry has its own CSR (labels differ) and its own cache entry.
    let pool: Vec<Prepared> = (0..opts.unique)
        .map(|p| Prepared::new(&format!("pool_{p}\n{base}")))
        .collect();
    let total = (opts.rate as u128 * opts.duration.as_nanos() / 1_000_000_000) as usize;
    let fresh_count = total / opts.fresh_every + 1;
    let fresh: Vec<Prepared> = (0..fresh_count)
        .map(|f| Prepared::new(&format!("fresh_{f}\n{base}")))
        .collect();

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            threads: opts.threads,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    let mut writer = std::io::BufWriter::with_capacity(1 << 16, stream.try_clone().expect("clone"));

    let warm_ids = opts.unique as u64;
    let completions = Arc::new(Completions {
        slots: (0..warm_ids as usize + total)
            .map(|_| AtomicU64::new(PENDING))
            .collect(),
        statuses: (0..warm_ids as usize + total)
            .map(|_| AtomicU64::new(2))
            .collect(),
        done: AtomicU64::new(0),
    });
    let epoch = Instant::now();
    let reader = {
        let completions = Arc::clone(&completions);
        let stream = stream.try_clone().expect("clone");
        std::thread::spawn(move || {
            let mut reader = BufReader::with_capacity(1 << 16, stream);
            let mut stats_lines: Vec<String> = Vec::new();
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => return stats_lines,
                    Ok(_) => {}
                }
                match decode_response(&line) {
                    Some((id, status)) if (id as usize) < completions.slots.len() => {
                        let micros = epoch.elapsed().as_micros() as u64;
                        completions.statuses[id as usize]
                            .store(u64::from(status), Ordering::Relaxed);
                        completions.slots[id as usize].store(micros, Ordering::Release);
                        completions.done.fetch_add(1, Ordering::Release);
                    }
                    _ => stats_lines.push(line.trim().to_string()),
                }
            }
        })
    };
    let wait_done = |target: u64| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while completions.done.load(Ordering::Acquire) < target {
            assert!(
                Instant::now() < deadline,
                "daemon wedged: responses missing"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    };

    // Warm the cache: one request per pool entry, fully drained.
    for (p, prepared) in pool.iter().enumerate() {
        prepared.write(&mut writer, p as u64).expect("send");
    }
    writer.flush().expect("flush");
    wait_done(warm_ids);
    send_control(&mut writer, "stats_before");

    // Measured window: scheduled sends on the open-loop grid. Sends that
    // fall due together (sleep granularity) go out back-to-back.
    let interval = Duration::from_nanos(1_000_000_000 / opts.rate);
    let start = Instant::now();
    let mut scheduled_us: Vec<u64> = Vec::with_capacity(total);
    let start_us = start.duration_since(epoch).as_micros() as u64;
    let mut fresh_cursor = 0usize;
    for i in 0..total {
        let due = start + interval * i as u32;
        let now = Instant::now();
        if due > now {
            writer.flush().expect("flush");
            std::thread::sleep(due - now);
        }
        scheduled_us.push(start_us + (interval * i as u32).as_micros() as u64);
        let prepared = if i % opts.fresh_every == 0 {
            fresh_cursor += 1;
            &fresh[fresh_cursor - 1]
        } else {
            &pool[i % pool.len()]
        };
        prepared
            .write(&mut writer, warm_ids + i as u64)
            .expect("send");
    }
    writer.flush().expect("flush");
    wait_done(warm_ids + total as u64);
    send_control(&mut writer, "stats_after");
    send_shutdown(&mut writer);
    // The daemon's teardown drops the server-side write half, which is
    // what EOFs the client reader — so wait() must come first.
    server.wait();
    let stats_lines = reader.join().expect("reader thread");

    // Latencies from the scheduled (not actual) send time.
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let (mut completed, mut overloaded, mut errors) = (0u64, 0u64, 0u64);
    let mut last_completion_us = 0u64;
    for (i, &sched) in scheduled_us.iter().enumerate() {
        let slot = warm_ids as usize + i;
        let at = completions.slots[slot].load(Ordering::Acquire);
        match completions.statuses[slot].load(Ordering::Relaxed) {
            0 => {
                completed += 1;
                latencies.push(at.saturating_sub(sched));
                last_completion_us = last_completion_us.max(at);
            }
            1 => overloaded += 1,
            _ => errors += 1,
        }
    }
    latencies.sort_unstable();
    let pct = |p: u64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as u64 * p).div_ceil(100)).max(1) as usize - 1;
        latencies[rank.min(latencies.len() - 1)]
    };
    let duration_ns = (last_completion_us.saturating_sub(start_us)).max(1) * 1_000;
    let hit_ratio = hit_ratio_between(&stats_lines);

    ServeBench {
        workload: "montage".into(),
        jobs,
        unique_dags: opts.unique as u64,
        threads: opts.threads as u64,
        offered_rps: opts.rate,
        requests: total as u64,
        completed,
        overloaded,
        errors,
        duration_ns,
        achieved_rps: completed as f64 / (duration_ns as f64 / 1e9),
        p50_us: pct(50),
        p90_us: pct(90),
        p99_us: pct(99),
        hit_ratio,
    }
}

/// Runs [`measure`] `repeat` times and keeps the run with the lowest
/// p99 (ties broken by throughput). Tail latency on a shared runner is
/// scheduler-noise dominated; the best of a few runs reflects what the
/// daemon can do rather than what the neighbors were doing.
pub fn measure_best(opts: &ServeBenchOptions, repeat: usize) -> ServeBench {
    let mut best: Option<ServeBench> = None;
    for _ in 0..repeat.max(1) {
        let run = measure(opts);
        let better = match &best {
            None => true,
            Some(b) => (run.p99_us, -run.achieved_rps) < (b.p99_us, -b.achieved_rps),
        };
        if better {
            best = Some(run);
        }
    }
    best.expect("at least one run")
}

fn send_control(writer: &mut impl Write, id: &str) {
    writer
        .write_all(encode_control(id, "stats").as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .expect("send control");
}

fn send_shutdown(writer: &mut impl Write) {
    writer
        .write_all(encode_control("bye", "shutdown").as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .expect("send shutdown");
}

/// The measured window's cache hit ratio, from the `stats` snapshots
/// taken just before and just after it.
fn hit_ratio_between(stats_lines: &[String]) -> f64 {
    let snapshot = |id: &str| -> Option<(u64, u64)> {
        let v = stats_lines
            .iter()
            .filter_map(|l| parse(l).ok())
            .find(|v| v.get("id").and_then(JsonValue::as_str) == Some(id))?;
        Some((
            v.get("cache_hits").and_then(JsonValue::as_u64)?,
            v.get("cache_misses").and_then(JsonValue::as_u64)?,
        ))
    };
    let Some((h0, m0)) = snapshot("stats_before") else {
        return 0.0;
    };
    let Some((h1, m1)) = snapshot("stats_after") else {
        return 0.0;
    };
    let (hits, misses) = (h1 - h0, m1 - m0);
    hits as f64 / ((hits + misses).max(1)) as f64
}

impl ServeBench {
    /// Serializes in the committed `BENCH_serve.json` format: keys in
    /// [`KEY_ORDER`], one per line, trailing newline.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"jobs\": {},\n  \"unique_dags\": {},\n  \"threads\": {},\n  \"offered_rps\": {},\n  \"requests\": {},\n  \"completed\": {},\n  \"overloaded\": {},\n  \"errors\": {},\n  \"duration_ns\": {},\n  \"achieved_rps\": {:.1},\n  \"p50_us\": {},\n  \"p90_us\": {},\n  \"p99_us\": {},\n  \"hit_ratio\": {:.4}\n}}\n",
            self.workload,
            self.jobs,
            self.unique_dags,
            self.threads,
            self.offered_rps,
            self.requests,
            self.completed,
            self.overloaded,
            self.errors,
            self.duration_ns,
            self.achieved_rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.hit_ratio,
        )
    }

    /// Parses the `BENCH_serve.json` format (any key order).
    pub fn from_json(text: &str) -> Result<ServeBench, String> {
        let v = parse(text)?;
        if !v.is_object() {
            return Err("expected a JSON object".into());
        }
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let f = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing number field {key:?}"))
        };
        Ok(ServeBench {
            workload: v
                .get("workload")
                .and_then(JsonValue::as_str)
                .ok_or("missing string field \"workload\"")?
                .to_owned(),
            jobs: u("jobs")?,
            unique_dags: u("unique_dags")?,
            threads: u("threads")?,
            offered_rps: u("offered_rps")?,
            requests: u("requests")?,
            completed: u("completed")?,
            overloaded: u("overloaded")?,
            errors: u("errors")?,
            duration_ns: u("duration_ns")?,
            achieved_rps: f("achieved_rps")?,
            p50_us: u("p50_us")?,
            p90_us: u("p90_us")?,
            p99_us: u("p99_us")?,
            hit_ratio: f("hit_ratio")?,
        })
    }
}

/// One floor-or-baseline verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCheck {
    /// What was checked.
    pub name: &'static str,
    /// The bound (floor or scaled baseline) the value is held to.
    pub bound: f64,
    /// The fresh measurement's value.
    pub value: f64,
    /// Whether the bound was violated.
    pub failed: bool,
}

/// Holds a measurement to the absolute acceptance floors: sustained
/// req/s ≥ [`MIN_RPS`], p99 ≤ [`MAX_P99_US`], hit ratio ≥
/// [`MIN_HIT_RATIO`], and zero errors.
pub fn check_floors(fresh: &ServeBench) -> Vec<ServeCheck> {
    vec![
        ServeCheck {
            name: "achieved_rps_floor",
            bound: MIN_RPS,
            value: fresh.achieved_rps,
            failed: fresh.achieved_rps < MIN_RPS,
        },
        ServeCheck {
            name: "p99_us_ceiling",
            bound: MAX_P99_US as f64,
            value: fresh.p99_us as f64,
            failed: fresh.p99_us > MAX_P99_US,
        },
        ServeCheck {
            name: "hit_ratio_floor",
            bound: MIN_HIT_RATIO,
            value: fresh.hit_ratio,
            failed: fresh.hit_ratio < MIN_HIT_RATIO,
        },
        ServeCheck {
            name: "errors",
            bound: 0.0,
            value: fresh.errors as f64,
            failed: fresh.errors > 0,
        },
    ]
}

/// Guards a fresh run against the committed baseline: throughput may not
/// fall below `baseline / threshold`, p99 may not exceed
/// `baseline × threshold + `[`P99_NOISE_US`] (the additive term keeps a
/// fast sub-millisecond baseline from producing a bound that ordinary
/// scheduler jitter on a shared runner crosses).
pub fn compare_serve(baseline: &ServeBench, fresh: &ServeBench, threshold: f64) -> Vec<ServeCheck> {
    let rps_bound = baseline.achieved_rps / threshold;
    let p99_bound = baseline.p99_us as f64 * threshold + P99_NOISE_US as f64;
    vec![
        ServeCheck {
            name: "achieved_rps",
            bound: rps_bound,
            value: fresh.achieved_rps,
            failed: fresh.achieved_rps < rps_bound,
        },
        ServeCheck {
            name: "p99_us",
            bound: p99_bound,
            value: fresh.p99_us as f64,
            failed: (fresh.p99_us as f64) > p99_bound,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBench {
        ServeBench {
            workload: "montage".into(),
            jobs: 104,
            unique_dags: 32,
            threads: 2,
            offered_rps: 11_000,
            requests: 33_000,
            completed: 33_000,
            overloaded: 0,
            errors: 0,
            duration_ns: 3_010_000_000,
            achieved_rps: 10_963.5,
            p50_us: 180,
            p90_us: 420,
            p99_us: 1_800,
            hit_ratio: 0.9492,
        }
    }

    #[test]
    fn json_round_trips_with_fixed_key_order() {
        let b = sample();
        let json = b.to_json();
        assert_eq!(ServeBench::from_json(&json).unwrap(), b);
        let mut last = 0;
        for key in KEY_ORDER {
            let pos = json
                .find(&format!("\"{key}\":"))
                .unwrap_or_else(|| panic!("missing {key}"));
            assert!(pos > last, "{key} out of order");
            last = pos;
        }
        assert_eq!(json, sample().to_json());
        assert!(ServeBench::from_json("{}").is_err());
        assert!(ServeBench::from_json("not json").is_err());
    }

    #[test]
    fn floors_flag_each_violation() {
        assert!(check_floors(&sample()).iter().all(|c| !c.failed));
        let slow = ServeBench {
            achieved_rps: 9_000.0,
            ..sample()
        };
        assert!(check_floors(&slow)
            .iter()
            .any(|c| c.name == "achieved_rps_floor" && c.failed));
        let laggy = ServeBench {
            p99_us: MAX_P99_US + 5_000,
            ..sample()
        };
        assert!(check_floors(&laggy)
            .iter()
            .any(|c| c.name == "p99_us_ceiling" && c.failed));
        let cold = ServeBench {
            hit_ratio: 0.5,
            ..sample()
        };
        assert!(check_floors(&cold)
            .iter()
            .any(|c| c.name == "hit_ratio_floor" && c.failed));
        let broken = ServeBench {
            errors: 1,
            ..sample()
        };
        assert!(check_floors(&broken)
            .iter()
            .any(|c| c.name == "errors" && c.failed));
    }

    #[test]
    fn baseline_comparison_guards_both_directions() {
        let baseline = sample();
        let ok = ServeBench {
            achieved_rps: baseline.achieved_rps * 0.9,
            p99_us: baseline.p99_us + 100,
            ..sample()
        };
        assert!(compare_serve(&baseline, &ok, 2.0).iter().all(|c| !c.failed));
        let slow = ServeBench {
            achieved_rps: baseline.achieved_rps / 3.0,
            ..sample()
        };
        assert!(compare_serve(&baseline, &slow, 2.0)
            .iter()
            .any(|c| c.name == "achieved_rps" && c.failed));
        let ok_jitter = ServeBench {
            // Within the additive noise allowance even though it is more
            // than threshold × baseline.
            p99_us: baseline.p99_us * 2 + P99_NOISE_US / 2,
            ..sample()
        };
        assert!(compare_serve(&baseline, &ok_jitter, 2.0)
            .iter()
            .all(|c| !c.failed));
        let laggy = ServeBench {
            p99_us: baseline.p99_us * 2 + P99_NOISE_US * 2,
            ..sample()
        };
        assert!(compare_serve(&baseline, &laggy, 2.0)
            .iter()
            .any(|c| c.name == "p99_us" && c.failed));
    }

    #[test]
    fn response_decoding_is_robust() {
        assert_eq!(
            decode_response(r#"{"type":"response","v":3,"id":"17","status":"ok","output":"x"}"#),
            Some((17, 0))
        );
        assert_eq!(
            decode_response(r#"{"id":"2","status":"overloaded"}"#),
            Some((2, 1))
        );
        assert_eq!(
            decode_response(r#"{"id":"9","status":"error"}"#),
            Some((9, 2))
        );
        assert_eq!(
            decode_response(r#"{"id":"stats_before","status":"ok"}"#),
            None
        );
        assert_eq!(decode_response("garbage"), None);
    }

    #[test]
    fn measurement_smoke_at_tiny_rate() {
        // Not a throughput assertion — a harness sanity check in debug
        // mode: the generator drives a real daemon, every request
        // completes, and the hit ratio reflects the duplicate-heavy mix.
        let b = measure(&ServeBenchOptions {
            rate: 200,
            duration: Duration::from_millis(500),
            threads: 2,
            unique: 4,
            fresh_every: 10,
        });
        assert_eq!(b.requests, b.completed + b.overloaded + b.errors);
        assert_eq!(b.errors, 0, "{b:?}");
        assert!(b.completed > 0);
        assert!(
            b.hit_ratio > 0.5,
            "duplicate-heavy mix must mostly hit: {b:?}"
        );
        ServeBench::from_json(&b.to_json()).unwrap();
    }
}
