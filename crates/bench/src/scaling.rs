//! Scaling measurement: pipeline and simulator wall time plus peak
//! allocator bytes at 10³/10⁴/10⁵/10⁶ jobs, behind the `bench_scaling`
//! binary and the `bench_check --scaling-fresh` regression guard.
//!
//! Two dag families per tier: a Montage-like dag (the paper's structure,
//! scaled to the tier's job count) and a layered random dag (fixed layer
//! width, ~4 children per job) whose single giant component stresses the
//! CSR adjacency directly rather than the decomposition. Rows serialize
//! to `BENCH_scaling.json` with a fixed key order, and rows from two
//! files are compared by their `(workload, jobs)` identity, so a smoke
//! run covering only the small tiers can still be checked against a
//! committed full run.

use crate::mem;
use crate::pipeline::MetricCheck;
use prio_core::prio::Prioritizer;
use prio_graph::Dag;
use prio_obs::json::{parse, JsonValue};
use prio_sim::engine::simulate;
use prio_sim::model::GridModel;
use prio_sim::PolicySpec;
use prio_workloads::montage::{montage, MontageParams};
use prio_workloads::random_dag::{layered, LayeredParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// The job-count tiers, smallest first.
pub const TIERS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Montage jobs at the paper's default parameters; tier targets scale
/// against this.
const MONTAGE_PAPER_JOBS: f64 = 7_881.0;

/// Layer width of the random layered family. ~4 children per job keeps
/// the arc count at roughly 4× the job count at every tier.
const LAYER_WIDTH: usize = 100;

/// Fixed seeds so every run measures the same dag and the same batch
/// arrival process.
const DAG_SEED: u64 = 0x5CA1_AB1E;
const SIM_SEED: u64 = 42;

/// One `(workload, tier)` measurement row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Dag family: `"montage"` or `"layered"`.
    pub workload: String,
    /// Jobs in the generated dag (close to, not exactly, the tier).
    pub jobs: u64,
    /// Arcs in the generated dag.
    pub arcs: u64,
    /// Timed iterations behind the best-of-N metrics.
    pub iters: u64,
    /// Best-of-N wall time of one full PRIO pipeline run.
    pub pipeline_ns: u64,
    /// Best-of-N wall time of one simulated execution under the PRIO
    /// schedule.
    pub sim_ns: u64,
    /// Peak bytes allocated above the pre-run baseline across one
    /// pipeline + simulation run (needs the binary to install
    /// [`mem::CountingAllocator`]; 0 when it is not installed).
    pub peak_bytes: u64,
}

/// A full measurement: the metric name and one row per workload × tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingBench {
    /// Metric name (`"best_of_n_wall_ns"`).
    pub metric: String,
    /// Rows, in measurement order (tier-major, montage before layered).
    pub rows: Vec<ScalingRow>,
}

/// Fewer timed iterations at the larger tiers: the 10⁶-job pipeline runs
/// near a second, and best-of-2 is stable enough there.
fn iters_for(jobs: usize) -> usize {
    match jobs {
        0..=10_000 => 20,
        10_001..=100_000 => 6,
        _ => 2,
    }
}

/// A Montage-like dag with roughly `target` jobs.
pub fn montage_tier(target: usize) -> Dag {
    montage(MontageParams::scaled(target as f64 / MONTAGE_PAPER_JOBS))
}

/// A seeded layered random dag with roughly `target` jobs.
pub fn layered_tier(target: usize) -> Dag {
    let p = LayeredParams {
        layers: (target / LAYER_WIDTH).max(2),
        width: LAYER_WIDTH,
        arc_prob: 4.0 / LAYER_WIDTH as f64,
    };
    layered(p, &mut SmallRng::seed_from_u64(DAG_SEED))
}

fn best_ns(iters: usize, f: &mut dyn FnMut()) -> u64 {
    f(); // warm-up
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best as u64
}

/// Measures one dag: pipeline wall time, simulated-execution wall time
/// under the resulting schedule, and the allocator peak of one combined
/// run.
pub fn measure_dag(workload: &str, dag: &Dag) -> ScalingRow {
    let iters = iters_for(dag.num_nodes());
    let prio = Prioritizer::new();
    let model = GridModel::paper(1.0, 64.0);

    let pipeline_ns = best_ns(iters, &mut || {
        std::hint::black_box(prio.prioritize(dag).unwrap());
    });

    let schedule = prio.prioritize(dag).unwrap().schedule;
    let policy = PolicySpec::Oblivious(schedule);
    let sim_ns = best_ns(iters, &mut || {
        std::hint::black_box(simulate(dag, &policy, &model, SIM_SEED));
    });

    let baseline = mem::reset_peak();
    let r = prio.prioritize(dag).unwrap();
    let out = simulate(dag, &PolicySpec::Oblivious(r.schedule), &model, SIM_SEED);
    std::hint::black_box(&out);
    let peak_bytes = mem::peak_since(baseline) as u64;

    ScalingRow {
        workload: workload.into(),
        jobs: dag.num_nodes() as u64,
        arcs: dag.num_arcs() as u64,
        iters: iters as u64,
        pipeline_ns,
        sim_ns,
        peak_bytes,
    }
}

/// Runs the whole grid, skipping tiers above `max_jobs` (for CI smoke
/// runs). `progress` is called before each row with a human-readable
/// label.
pub fn measure(max_jobs: Option<usize>, mut progress: impl FnMut(&str)) -> ScalingBench {
    let mut rows = Vec::new();
    for &tier in &TIERS {
        if max_jobs.is_some_and(|cap| tier > cap) {
            continue;
        }
        for (name, dag) in [
            ("montage", montage_tier(tier)),
            ("layered", layered_tier(tier)),
        ] {
            progress(&format!(
                "{name} tier {tier}: {} jobs, {} arcs",
                dag.num_nodes(),
                dag.num_arcs()
            ));
            rows.push(measure_dag(name, &dag));
        }
    }
    ScalingBench {
        metric: "best_of_n_wall_ns".into(),
        rows,
    }
}

impl ScalingRow {
    fn to_json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"jobs\": {}, \"arcs\": {}, \"iters\": {}, \"pipeline_ns\": {}, \"sim_ns\": {}, \"peak_bytes\": {}}}",
            self.workload, self.jobs, self.arcs, self.iters, self.pipeline_ns, self.sim_ns, self.peak_bytes,
        )
    }

    fn from_json(v: &JsonValue) -> Result<ScalingRow, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("row missing integer field {key:?}"))
        };
        Ok(ScalingRow {
            workload: v
                .get("workload")
                .and_then(JsonValue::as_str)
                .ok_or("row missing string field \"workload\"")?
                .to_owned(),
            jobs: u("jobs")?,
            arcs: u("arcs")?,
            iters: u("iters")?,
            pipeline_ns: u("pipeline_ns")?,
            sim_ns: u("sim_ns")?,
            peak_bytes: u("peak_bytes")?,
        })
    }
}

impl ScalingBench {
    /// Serializes in the committed `BENCH_scaling.json` format: fixed key
    /// order, one row per line — byte-deterministic for identical
    /// measurements.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(ScalingRow::to_json).collect();
        format!(
            "{{\n  \"metric\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.metric,
            rows.join(",\n")
        )
    }

    /// Parses the `BENCH_scaling.json` format (any key order).
    pub fn from_json(text: &str) -> Result<ScalingBench, String> {
        let v = parse(text)?;
        let metric = v
            .get("metric")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field \"metric\"")?
            .to_owned();
        let rows = match v.get("rows") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(ScalingRow::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing array field \"rows\"".into()),
        };
        Ok(ScalingBench { metric, rows })
    }

    /// The row for a `(workload, jobs)` identity, if present.
    pub fn row(&self, workload: &str, jobs: u64) -> Option<&ScalingRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.jobs == jobs)
    }
}

/// Compares every fresh row that has a baseline row with the same
/// `(workload, jobs)` identity — rows only one side measured (e.g. the
/// big tiers during a CI smoke run) are skipped. Each matched row yields
/// two [`MetricCheck`]s (pipeline and sim wall time); peak bytes are
/// reported by the caller but not thresholded, since allocator peaks are
/// exact and assertable in tests instead.
pub fn compare_scaling(
    baseline: &ScalingBench,
    fresh: &ScalingBench,
    threshold: f64,
) -> Vec<(String, MetricCheck)> {
    let mut checks = Vec::new();
    for f in &fresh.rows {
        let Some(b) = baseline.row(&f.workload, f.jobs) else {
            continue;
        };
        let label = format!("{}/{}", f.workload, f.jobs);
        for (name, baseline_ns, fresh_ns) in [
            ("pipeline_ns", b.pipeline_ns, f.pipeline_ns),
            ("sim_ns", b.sim_ns, f.sim_ns),
        ] {
            let ratio = fresh_ns as f64 / baseline_ns.max(1) as f64;
            checks.push((
                label.clone(),
                MetricCheck {
                    name,
                    baseline_ns,
                    fresh_ns,
                    ratio,
                    regressed: ratio > threshold,
                },
            ));
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScalingBench {
        ScalingBench {
            metric: "best_of_n_wall_ns".into(),
            rows: vec![
                ScalingRow {
                    workload: "montage".into(),
                    jobs: 1033,
                    arcs: 2044,
                    iters: 20,
                    pipeline_ns: 500_000,
                    sim_ns: 250_000,
                    peak_bytes: 1_000_000,
                },
                ScalingRow {
                    workload: "layered".into(),
                    jobs: 1000,
                    arcs: 4000,
                    iters: 20,
                    pipeline_ns: 700_000,
                    sim_ns: 300_000,
                    peak_bytes: 2_000_000,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let back = ScalingBench::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
        // Byte-deterministic.
        assert_eq!(b.to_json(), back.to_json());
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(ScalingBench::from_json("{}").is_err());
        assert!(ScalingBench::from_json("{\"metric\": \"m\"}").is_err());
        assert!(ScalingBench::from_json("{\"metric\": \"m\", \"rows\": [{}]}").is_err());
        assert!(ScalingBench::from_json("not json").is_err());
    }

    #[test]
    fn compare_matches_rows_by_identity_and_skips_unmatched() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.rows[0].pipeline_ns *= 3; // montage pipeline 3× slower
        fresh.rows[1].workload = "other".into(); // no baseline row
        let checks = compare_scaling(&baseline, &fresh, 2.0);
        assert_eq!(checks.len(), 2, "one matched row × two metrics");
        assert!(checks.iter().all(|(label, _)| label == "montage/1033"));
        assert!(checks[0].1.regressed, "3× exceeds 2×");
        assert!(!checks[1].1.regressed);
    }

    #[test]
    fn tier_generators_hit_their_targets() {
        for &tier in &TIERS[..2] {
            for (name, dag) in [
                ("montage", montage_tier(tier)),
                ("layered", layered_tier(tier)),
            ] {
                let jobs = dag.num_nodes() as f64;
                let lo = tier as f64 * 0.8;
                let hi = tier as f64 * 1.25;
                assert!(
                    (lo..=hi).contains(&jobs),
                    "{name} tier {tier} produced {jobs} jobs"
                );
            }
        }
        // Seeded: the layered dag is identical across calls.
        assert_eq!(layered_tier(1_000), layered_tier(1_000));
    }

    #[test]
    fn measure_dag_smoke() {
        let dag = montage_tier(150);
        let row = measure_dag("montage", &dag);
        assert_eq!(row.jobs, dag.num_nodes() as u64);
        assert!(row.pipeline_ns > 0 && row.sim_ns > 0);
        // No counting allocator installed in the test harness.
        assert!(row.iters > 0);
    }
}
