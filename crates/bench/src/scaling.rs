//! Scaling measurement: pipeline and simulator wall time plus peak
//! allocator bytes at the 10³–10⁷ job tiers — and DAGMan parse + CSR
//! build at 10⁷/10⁸ — behind the `bench_scaling` binary and the
//! `bench_check --scaling-fresh` regression guard.
//!
//! Two dag families per pipeline tier: a Montage-like dag (the paper's
//! structure, scaled to the tier's job count) and a layered random dag
//! (fixed layer width, ~4 children per job) whose single giant component
//! stresses the CSR adjacency directly rather than the decomposition.
//! The parse tiers measure the front door instead: a deterministic
//! generated DAGMan file pushed through [`parse_dagman_to_dag`] (no AST,
//! no interning — the only front half that fits 10⁸ jobs in memory).
//! Rows serialize to `BENCH_scaling.json` with a fixed key order, and
//! rows from two files are compared by their `(workload, jobs)`
//! identity, so a smoke run covering only the small tiers can still be
//! checked against a committed full run. Peak bytes are additionally
//! gated by [`compare_scaling_memory`] so the committed peaks double as
//! memory budgets.

use crate::mem;
use crate::pipeline::MetricCheck;
use prio_core::prio::{PrioOptions, Prioritizer};
use prio_dagman::parse_dagman_to_dag;
use prio_graph::Dag;
use prio_obs::json::{parse, JsonValue};
use prio_sim::engine::simulate;
use prio_sim::model::GridModel;
use prio_sim::PolicySpec;
use prio_workloads::montage::{montage, MontageParams};
use prio_workloads::random_dag::{layered, LayeredParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// The full-pipeline job-count tiers, smallest first.
pub const TIERS: [usize; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// The parse + CSR-build tiers (the `"dagman_parse"` workload). The top
/// tier only runs the front half: at 10⁸ jobs a full pipeline run is out
/// of scope, but parse + build must fit the committed memory budget.
pub const PARSE_TIERS: [usize; 2] = [10_000_000, 100_000_000];

/// Montage jobs at the paper's default parameters; tier targets scale
/// against this.
const MONTAGE_PAPER_JOBS: f64 = 7_881.0;

/// Layer width of the random layered family. ~4 children per job keeps
/// the arc count at roughly 4× the job count at every tier.
const LAYER_WIDTH: usize = 100;

/// Fixed seeds so every run measures the same dag and the same batch
/// arrival process.
const DAG_SEED: u64 = 0x5CA1_AB1E;
const SIM_SEED: u64 = 42;

/// One `(workload, tier)` measurement row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Dag family: `"montage"` or `"layered"`.
    pub workload: String,
    /// Jobs in the generated dag (close to, not exactly, the tier).
    pub jobs: u64,
    /// Arcs in the generated dag.
    pub arcs: u64,
    /// Timed iterations behind the best-of-N metrics.
    pub iters: u64,
    /// Best-of-N wall time of one full PRIO pipeline run.
    pub pipeline_ns: u64,
    /// Best-of-N wall time of one simulated execution under the PRIO
    /// schedule.
    pub sim_ns: u64,
    /// Peak bytes allocated above the pre-run baseline across one
    /// pipeline + simulation run (needs the binary to install
    /// [`mem::CountingAllocator`]; 0 when it is not installed).
    pub peak_bytes: u64,
    /// Worker threads the measurement ran with (0 = serial).
    pub threads: u64,
    /// Best-of-N wall time of DAGMan parse + CSR build (`"dagman_parse"`
    /// rows only; 0 elsewhere).
    pub parse_ns: u64,
    /// Wall time of the reduce stage in one pipeline run (0 for parse
    /// rows).
    pub reduce_ns: u64,
    /// Wall time of the decompose stage in one pipeline run.
    pub decompose_ns: u64,
    /// Wall time of the schedule stage in one pipeline run.
    pub schedule_ns: u64,
    /// Wall time of the combine stage in one pipeline run.
    pub combine_ns: u64,
    /// Wall time of the emit stage in one pipeline run.
    pub emit_ns: u64,
}

/// A full measurement: the metric name and one row per workload × tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingBench {
    /// Metric name (`"best_of_n_wall_ns"`).
    pub metric: String,
    /// Rows, in measurement order (tier-major, montage before layered).
    pub rows: Vec<ScalingRow>,
}

/// Fewer timed iterations at the larger tiers: the 10⁶-job pipeline runs
/// near a second, best-of-2 is stable enough there, and the 10⁷ tier is
/// timed once (its run-to-run noise is far below the 2× gate).
fn iters_for(jobs: usize) -> usize {
    match jobs {
        0..=10_000 => 20,
        10_001..=100_000 => 6,
        100_001..=2_000_000 => 2,
        _ => 1,
    }
}

/// A Montage-like dag with roughly `target` jobs.
pub fn montage_tier(target: usize) -> Dag {
    montage(MontageParams::scaled(target as f64 / MONTAGE_PAPER_JOBS))
}

/// A seeded layered random dag with roughly `target` jobs.
pub fn layered_tier(target: usize) -> Dag {
    let p = LayeredParams {
        layers: (target / LAYER_WIDTH).max(2),
        width: LAYER_WIDTH,
        arc_prob: 4.0 / LAYER_WIDTH as f64,
    };
    layered(p, &mut SmallRng::seed_from_u64(DAG_SEED))
}

/// Layer width of the generated-DAGMan parse workload.
const PARSE_LAYER_WIDTH: usize = 1_000;

/// Appends `n{id}` without going through `format!` (the generator emits
/// hundreds of millions of names; a per-name `String` would dominate).
fn push_name(text: &mut String, id: usize) {
    let mut buf = [0u8; 20];
    let mut k = buf.len();
    let mut x = id;
    loop {
        k -= 1;
        buf[k] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    text.push('n');
    text.push_str(std::str::from_utf8(&buf[k..]).expect("ascii digits"));
}

/// Deterministic DAGMan text with roughly `target` jobs: layers of width
/// [`PARSE_LAYER_WIDTH`]; job `(l, i)` feeds `(l+1, i)`, and every fourth
/// job also feeds `(l+1, (i+7) % width)` — one giant weakly-connected
/// component with ~1.25 arcs per job. All `JOB` declarations come first
/// (in id order), then one `PARENT … CHILD …` statement per parent.
pub fn dagman_text_tier(target: usize) -> String {
    let width = PARSE_LAYER_WIDTH;
    let layers = (target / width).max(2);
    let n = layers * width;
    // ~30 B per JOB line + ~45 B per PARENT line.
    let mut text = String::with_capacity(n * 78);
    for id in 0..n {
        text.push_str("JOB ");
        push_name(&mut text, id);
        text.push(' ');
        push_name(&mut text, id);
        text.push_str(".sub\n");
    }
    for l in 0..layers - 1 {
        for i in 0..width {
            let id = l * width + i;
            text.push_str("PARENT ");
            push_name(&mut text, id);
            text.push_str(" CHILD ");
            push_name(&mut text, (l + 1) * width + i);
            if i % 4 == 0 {
                text.push(' ');
                push_name(&mut text, (l + 1) * width + (i + 7) % width);
            }
            text.push('\n');
        }
    }
    text
}

fn best_ns(iters: usize, f: &mut dyn FnMut()) -> u64 {
    f(); // warm-up
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best as u64
}

/// Measures one dag: pipeline wall time, simulated-execution wall time
/// under the resulting schedule, the allocator peak of one combined run,
/// and the per-stage wall breakdown of that run (from the pipeline's
/// stage spans).
pub fn measure_dag(workload: &str, dag: &Dag, threads: usize) -> ScalingRow {
    let iters = iters_for(dag.num_nodes());
    let prio = Prioritizer::with_options(PrioOptions {
        threads,
        ..PrioOptions::default()
    });
    let model = GridModel::paper(1.0, 64.0);

    let pipeline_ns = best_ns(iters, &mut || {
        std::hint::black_box(prio.prioritize(dag).unwrap());
    });

    let schedule = prio.prioritize(dag).unwrap().schedule;
    let policy = PolicySpec::Oblivious(schedule);
    let sim_ns = best_ns(iters, &mut || {
        std::hint::black_box(simulate(dag, &policy, &model, SIM_SEED));
    });

    // One combined run measures the allocator peak and, via the stage
    // spans, the per-stage wall breakdown of a single pipeline pass.
    prio_obs::span::reset_spans();
    let baseline = mem::reset_peak();
    let r = prio.prioritize(dag).unwrap();
    let out = simulate(dag, &PolicySpec::Oblivious(r.schedule), &model, SIM_SEED);
    std::hint::black_box(&out);
    let peak_bytes = mem::peak_since(baseline) as u64;
    let stage_ns = |name: &str| {
        prio_obs::span::stat_of(name)
            .map(|s| s.total.as_nanos() as u64)
            .unwrap_or(0)
    };

    ScalingRow {
        workload: workload.into(),
        jobs: dag.num_nodes() as u64,
        arcs: dag.num_arcs() as u64,
        iters: iters as u64,
        pipeline_ns,
        sim_ns,
        peak_bytes,
        threads: threads as u64,
        parse_ns: 0,
        reduce_ns: stage_ns(prio_obs::stage::REDUCE),
        decompose_ns: stage_ns(prio_obs::stage::DECOMPOSE),
        schedule_ns: stage_ns(prio_obs::stage::SCHEDULE),
        combine_ns: stage_ns(prio_obs::stage::COMBINE),
        emit_ns: stage_ns(prio_obs::stage::EMIT),
    }
}

/// Measures one parse tier: generates the DAGMan text, then times the
/// zero-copy direct parse + CSR build ([`parse_dagman_to_dag`]) and its
/// allocator peak (text excluded — it is allocated before the baseline is
/// taken). The top tier is timed once, without a warm-up: a single 10⁸-job
/// parse is minutes of wall time, and its noise is far below the gate.
pub fn measure_parse(target: usize, threads: usize) -> ScalingRow {
    let text = dagman_text_tier(target);
    let iters = if target >= 50_000_000 { 1 } else { 2 };
    let mut best = u128::MAX;
    let mut peak_bytes = 0u64;
    let mut row = None;
    for _ in 0..iters {
        let baseline = mem::reset_peak();
        let t = Instant::now();
        let dag = parse_dagman_to_dag(&text, threads).unwrap();
        best = best.min(t.elapsed().as_nanos());
        peak_bytes = peak_bytes.max(mem::peak_since(baseline) as u64);
        row.get_or_insert((dag.num_nodes() as u64, dag.num_arcs() as u64));
        std::hint::black_box(&dag);
    }
    let (jobs, arcs) = row.expect("at least one iteration");
    ScalingRow {
        workload: "dagman_parse".into(),
        jobs,
        arcs,
        iters: iters as u64,
        pipeline_ns: 0,
        sim_ns: 0,
        peak_bytes,
        threads: threads as u64,
        parse_ns: best as u64,
        reduce_ns: 0,
        decompose_ns: 0,
        schedule_ns: 0,
        combine_ns: 0,
        emit_ns: 0,
    }
}

/// Runs the whole grid — pipeline tiers then parse tiers — skipping tiers
/// above `max_jobs` (for CI smoke runs). `parse_only` restricts the run
/// to the `"dagman_parse"` rows. `progress` is called before each row
/// with a human-readable label.
pub fn measure(
    max_jobs: Option<usize>,
    threads: usize,
    parse_only: bool,
    mut progress: impl FnMut(&str),
) -> ScalingBench {
    let mut rows = Vec::new();
    if !parse_only {
        for &tier in &TIERS {
            if max_jobs.is_some_and(|cap| tier > cap) {
                continue;
            }
            for (name, dag) in [
                ("montage", montage_tier(tier)),
                ("layered", layered_tier(tier)),
            ] {
                progress(&format!(
                    "{name} tier {tier}: {} jobs, {} arcs",
                    dag.num_nodes(),
                    dag.num_arcs()
                ));
                rows.push(measure_dag(name, &dag, threads));
            }
        }
    }
    for &tier in &PARSE_TIERS {
        if max_jobs.is_some_and(|cap| tier > cap) {
            continue;
        }
        progress(&format!("dagman_parse tier {tier}"));
        rows.push(measure_parse(tier, threads));
    }
    ScalingBench {
        metric: "best_of_n_wall_ns".into(),
        rows,
    }
}

impl ScalingRow {
    fn to_json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"jobs\": {}, \"arcs\": {}, \"iters\": {}, \"pipeline_ns\": {}, \"sim_ns\": {}, \"peak_bytes\": {}, \"threads\": {}, \"parse_ns\": {}, \"reduce_ns\": {}, \"decompose_ns\": {}, \"schedule_ns\": {}, \"combine_ns\": {}, \"emit_ns\": {}}}",
            self.workload, self.jobs, self.arcs, self.iters, self.pipeline_ns, self.sim_ns, self.peak_bytes,
            self.threads, self.parse_ns, self.reduce_ns, self.decompose_ns, self.schedule_ns, self.combine_ns, self.emit_ns,
        )
    }

    fn from_json(v: &JsonValue) -> Result<ScalingRow, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("row missing integer field {key:?}"))
        };
        // Fields added after the first committed baselines default to 0 so
        // historic `BENCH_scaling.json` files still load.
        let opt = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok(ScalingRow {
            workload: v
                .get("workload")
                .and_then(JsonValue::as_str)
                .ok_or("row missing string field \"workload\"")?
                .to_owned(),
            jobs: u("jobs")?,
            arcs: u("arcs")?,
            iters: u("iters")?,
            pipeline_ns: u("pipeline_ns")?,
            sim_ns: u("sim_ns")?,
            peak_bytes: u("peak_bytes")?,
            threads: opt("threads"),
            parse_ns: opt("parse_ns"),
            reduce_ns: opt("reduce_ns"),
            decompose_ns: opt("decompose_ns"),
            schedule_ns: opt("schedule_ns"),
            combine_ns: opt("combine_ns"),
            emit_ns: opt("emit_ns"),
        })
    }
}

impl ScalingBench {
    /// Serializes in the committed `BENCH_scaling.json` format: fixed key
    /// order, one row per line — byte-deterministic for identical
    /// measurements.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(ScalingRow::to_json).collect();
        format!(
            "{{\n  \"metric\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.metric,
            rows.join(",\n")
        )
    }

    /// Parses the `BENCH_scaling.json` format (any key order).
    pub fn from_json(text: &str) -> Result<ScalingBench, String> {
        let v = parse(text)?;
        let metric = v
            .get("metric")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field \"metric\"")?
            .to_owned();
        let rows = match v.get("rows") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(ScalingRow::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing array field \"rows\"".into()),
        };
        Ok(ScalingBench { metric, rows })
    }

    /// The row for a `(workload, jobs)` identity, if present.
    pub fn row(&self, workload: &str, jobs: u64) -> Option<&ScalingRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.jobs == jobs)
    }
}

/// Compares every fresh row that has a baseline row with the same
/// `(workload, jobs)` identity — rows only one side measured (e.g. the
/// big tiers during a CI smoke run) are skipped. Each matched row yields
/// two [`MetricCheck`]s (pipeline and sim wall time); peak bytes are
/// reported by the caller but not thresholded, since allocator peaks are
/// exact and assertable in tests instead.
pub fn compare_scaling(
    baseline: &ScalingBench,
    fresh: &ScalingBench,
    threshold: f64,
) -> Vec<(String, MetricCheck)> {
    let mut checks = Vec::new();
    for f in &fresh.rows {
        let Some(b) = baseline.row(&f.workload, f.jobs) else {
            continue;
        };
        let label = format!("{}/{}", f.workload, f.jobs);
        for (name, baseline_ns, fresh_ns) in [
            ("pipeline_ns", b.pipeline_ns, f.pipeline_ns),
            ("sim_ns", b.sim_ns, f.sim_ns),
            ("parse_ns", b.parse_ns, f.parse_ns),
        ] {
            if baseline_ns == 0 && fresh_ns == 0 {
                // Metric not applicable to this workload kind (e.g.
                // parse_ns on a pipeline row).
                continue;
            }
            let ratio = fresh_ns as f64 / baseline_ns.max(1) as f64;
            checks.push((
                label.clone(),
                MetricCheck {
                    name,
                    baseline_ns,
                    fresh_ns,
                    ratio,
                    regressed: ratio > threshold,
                },
            ));
        }
    }
    checks
}

/// Gates allocator peaks against the committed baseline: for every
/// matched `(workload, jobs)` row where both sides measured a peak (a run
/// without the counting allocator records 0 and is skipped), the fresh
/// peak must stay within `factor` of the baseline — the committed peaks
/// are the memory budgets of the big tiers.
pub fn compare_scaling_memory(
    baseline: &ScalingBench,
    fresh: &ScalingBench,
    factor: f64,
) -> Vec<(String, MetricCheck)> {
    let mut checks = Vec::new();
    for f in &fresh.rows {
        let Some(b) = baseline.row(&f.workload, f.jobs) else {
            continue;
        };
        if b.peak_bytes == 0 || f.peak_bytes == 0 {
            continue;
        }
        let ratio = f.peak_bytes as f64 / b.peak_bytes as f64;
        checks.push((
            format!("{}/{}", f.workload, f.jobs),
            MetricCheck {
                name: "peak_bytes",
                baseline_ns: b.peak_bytes,
                fresh_ns: f.peak_bytes,
                ratio,
                regressed: ratio > factor,
            },
        ));
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, jobs: u64, pipeline_ns: u64, sim_ns: u64, peak: u64) -> ScalingRow {
        ScalingRow {
            workload: workload.into(),
            jobs,
            arcs: jobs * 2,
            iters: 20,
            pipeline_ns,
            sim_ns,
            peak_bytes: peak,
            threads: 4,
            parse_ns: 0,
            reduce_ns: 10,
            decompose_ns: 20,
            schedule_ns: 30,
            combine_ns: 5,
            emit_ns: 1,
        }
    }

    fn sample() -> ScalingBench {
        ScalingBench {
            metric: "best_of_n_wall_ns".into(),
            rows: vec![
                row("montage", 1033, 500_000, 250_000, 1_000_000),
                row("layered", 1000, 700_000, 300_000, 2_000_000),
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let back = ScalingBench::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
        // Byte-deterministic.
        assert_eq!(b.to_json(), back.to_json());
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(ScalingBench::from_json("{}").is_err());
        assert!(ScalingBench::from_json("{\"metric\": \"m\"}").is_err());
        assert!(ScalingBench::from_json("{\"metric\": \"m\", \"rows\": [{}]}").is_err());
        assert!(ScalingBench::from_json("not json").is_err());
    }

    #[test]
    fn pre_breakdown_baselines_still_load() {
        // A row in the original committed format — no threads, parse_ns or
        // stage fields — must load with those fields defaulted to 0.
        let old = "{\"metric\": \"m\", \"rows\": [{\"workload\": \"montage\", \"jobs\": 10, \
                   \"arcs\": 20, \"iters\": 2, \"pipeline_ns\": 5, \"sim_ns\": 3, \
                   \"peak_bytes\": 7}]}";
        let b = ScalingBench::from_json(old).unwrap();
        let r = &b.rows[0];
        assert_eq!((r.pipeline_ns, r.sim_ns, r.peak_bytes), (5, 3, 7));
        assert_eq!(r.threads, 0);
        assert_eq!(r.parse_ns, 0);
        assert_eq!(r.reduce_ns + r.decompose_ns + r.schedule_ns, 0);
    }

    #[test]
    fn memory_gate_compares_matched_nonzero_peaks() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.rows[0].peak_bytes *= 2; // montage peak doubled
        fresh.rows[1].peak_bytes = 0; // no counting allocator
        let checks = compare_scaling_memory(&baseline, &fresh, 1.5);
        assert_eq!(checks.len(), 1, "zero-peak rows are skipped");
        assert_eq!(checks[0].0, "montage/1033");
        assert!(checks[0].1.regressed, "2.0x exceeds the 1.5x budget");
        let ok = compare_scaling_memory(&baseline, &baseline, 1.5);
        assert!(ok.iter().all(|(_, c)| !c.regressed));
    }

    #[test]
    fn parse_rows_compare_parse_ns_only() {
        let mk = |parse_ns: u64| ScalingBench {
            metric: "m".into(),
            rows: vec![ScalingRow {
                workload: "dagman_parse".into(),
                jobs: 1_000_000,
                arcs: 1_250_000,
                iters: 1,
                pipeline_ns: 0,
                sim_ns: 0,
                peak_bytes: 1,
                threads: 0,
                parse_ns,
                reduce_ns: 0,
                decompose_ns: 0,
                schedule_ns: 0,
                combine_ns: 0,
                emit_ns: 0,
            }],
        };
        let checks = compare_scaling(&mk(100), &mk(250), 2.0);
        assert_eq!(checks.len(), 1, "pipeline/sim metrics are skipped at 0");
        assert_eq!(checks[0].1.name, "parse_ns");
        assert!(checks[0].1.regressed, "2.5x exceeds 2x");
    }

    #[test]
    fn dagman_text_tier_parses_to_the_expected_shape() {
        let text = dagman_text_tier(3_000);
        let dag = prio_dagman::parse_dagman_to_dag(&text, 0).unwrap();
        assert_eq!(dag.num_nodes(), 3_000);
        // ~1.25 arcs per job, minus the last layer which has no children.
        let arcs = dag.num_arcs();
        assert!(
            (2_400..=2_600).contains(&arcs),
            "unexpected arc count {arcs}"
        );
        // Deterministic and identical across the parallel chunked path.
        assert_eq!(text, dagman_text_tier(3_000));
        let par = prio_dagman::parse_dagman_to_dag(&text, 3).unwrap();
        assert_eq!(dag.num_nodes(), par.num_nodes());
        assert_eq!(dag.num_arcs(), par.num_arcs());
    }

    #[test]
    fn compare_matches_rows_by_identity_and_skips_unmatched() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.rows[0].pipeline_ns *= 3; // montage pipeline 3× slower
        fresh.rows[1].workload = "other".into(); // no baseline row
        let checks = compare_scaling(&baseline, &fresh, 2.0);
        assert_eq!(checks.len(), 2, "one matched row × two metrics");
        assert!(checks.iter().all(|(label, _)| label == "montage/1033"));
        assert!(checks[0].1.regressed, "3× exceeds 2×");
        assert!(!checks[1].1.regressed);
    }

    #[test]
    fn tier_generators_hit_their_targets() {
        for &tier in &TIERS[..2] {
            for (name, dag) in [
                ("montage", montage_tier(tier)),
                ("layered", layered_tier(tier)),
            ] {
                let jobs = dag.num_nodes() as f64;
                let lo = tier as f64 * 0.8;
                let hi = tier as f64 * 1.25;
                assert!(
                    (lo..=hi).contains(&jobs),
                    "{name} tier {tier} produced {jobs} jobs"
                );
            }
        }
        // Seeded: the layered dag is identical across calls.
        assert_eq!(layered_tier(1_000), layered_tier(1_000));
    }

    #[test]
    fn measure_dag_smoke() {
        let dag = montage_tier(150);
        let row = measure_dag("montage", &dag, 0);
        assert_eq!(row.jobs, dag.num_nodes() as u64);
        assert!(row.pipeline_ns > 0 && row.sim_ns > 0);
        // No counting allocator installed in the test harness.
        assert!(row.iters > 0);
        // The stage breakdown comes from the combined run's spans.
        assert!(row.reduce_ns + row.decompose_ns + row.schedule_ns > 0);
        assert_eq!(row.parse_ns, 0);
    }

    #[test]
    fn measure_parse_smoke() {
        let row = measure_parse(2_000, 0);
        assert_eq!(row.workload, "dagman_parse");
        assert_eq!(row.jobs, 2_000);
        assert!(row.parse_ns > 0);
        assert_eq!(row.pipeline_ns, 0);
        assert_eq!(row.sim_ns, 0);
    }
}
