//! A byte-counting global allocator for the §3.6 memory column.
//!
//! The allocator itself now lives in `prio-obs` (behind its
//! `alloc-profile` feature) so the CLI can attach per-span allocation
//! deltas with the same counters; this module re-exports it for the
//! bench binaries that predate the move.

pub use prio_obs::mem::{peak_since, reset_peak, CountingAllocator, LIVE_BYTES, PEAK_BYTES};
