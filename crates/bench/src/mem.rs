//! A byte-counting global allocator for the §3.6 memory column.
//!
//! The paper reports the prio tool's peak memory on each scientific dag.
//! Binaries that want the measurement install [`CountingAllocator`] as
//! their `#[global_allocator]` and read the live/peak counters around the
//! pipeline invocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Currently allocated bytes (process-wide, via the counting allocator).
pub static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE_BYTES`].
pub static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A `System`-backed allocator that tracks live and peak bytes.
pub struct CountingAllocator;

// SAFETY: delegates all allocation to `System` and only adds relaxed
// atomic bookkeeping; size/layout pairs are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let live =
                    LIVE_BYTES.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE_BYTES.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Resets the peak to the current live count and returns a guard-style
/// baseline; call [`peak_since`] with the returned baseline afterwards.
pub fn reset_peak() -> usize {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

/// Peak bytes allocated above the given baseline since [`reset_peak`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline)
}
