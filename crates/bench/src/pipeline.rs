//! Shared pipeline-throughput measurement: the library behind the
//! `bench_pipeline` (measure and record) and `bench_check` (regression
//! guard) binaries.
//!
//! The measurement times the PRIO pipeline on a Montage-like dag (~1k
//! jobs) in three configurations — single-shot, context reuse, threaded
//! Step 3 — interleaved round-robin so background load biases no variant,
//! reporting best-of-N wall time. A second tier times each frontend's
//! parser (DAGMan vs JSON vs edge list) importing the same ~10^5-job
//! Montage-like workflow. [`PipelineBench::to_json`] serializes with a
//! **fixed key order** ([`KEY_ORDER`]) so the committed
//! `BENCH_pipeline.json` diffs cleanly run to run; [`PipelineBench::from_json`]
//! reads it back (key order independent), and [`compare`] checks a fresh
//! measurement against a committed baseline under a slowdown threshold.

use prio_core::prio::{PrioOptions, Prioritizer};
use prio_core::PrioContext;
use prio_ir::{FormatId, Workflow};
use prio_obs::json::{parse, JsonValue};
use prio_workloads::montage::{montage, MontageParams};
use std::time::Instant;

/// Warm-up rounds before timing starts.
pub const WARMUP: usize = 3;
/// Timed rounds; the metric is the minimum over them.
pub const ITERS: usize = 40;
/// Target size of the parse-tier workflow (the 10^5 Montage-like dag).
pub const PARSE_TARGET_JOBS: usize = 100_000;
/// Warm-up rounds for the parse tier (each round parses ~10^5 jobs three
/// ways, so fewer rounds than the pipeline tier).
pub const PARSE_WARMUP: usize = 1;
/// Timed rounds for the parse tier.
pub const PARSE_ITERS: usize = 5;

/// The serialized keys, in the exact order [`PipelineBench::to_json`]
/// emits them.
pub const KEY_ORDER: [&str; 14] = [
    "workload",
    "jobs",
    "arcs",
    "iters",
    "metric",
    "single_shot_ns",
    "context_reuse_ns",
    "threaded_4_ns",
    "reuse_speedup",
    "parse_jobs",
    "parse_iters",
    "parse_dagman_ns",
    "parse_json_ns",
    "parse_edges_ns",
];

/// One pipeline-throughput measurement (or a parsed committed baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBench {
    /// Workload family name (`"montage"`).
    pub workload: String,
    /// Jobs in the measured dag.
    pub jobs: u64,
    /// Arcs in the measured dag.
    pub arcs: u64,
    /// Timed iterations behind the best-of-N metric.
    pub iters: u64,
    /// Metric name (`"best_of_n_wall_ns"`).
    pub metric: String,
    /// Best-of-N wall time, fresh scratch each run.
    pub single_shot_ns: u64,
    /// Best-of-N wall time reusing one [`PrioContext`].
    pub context_reuse_ns: u64,
    /// Best-of-N wall time with the 4-thread Step 3.
    pub threaded_4_ns: u64,
    /// `single_shot_ns / context_reuse_ns`.
    pub reuse_speedup: f64,
    /// Jobs in the parse-tier workflow (~10^5 Montage-like).
    pub parse_jobs: u64,
    /// Timed iterations behind the parse-tier best-of-N metrics.
    pub parse_iters: u64,
    /// Best-of-N wall time importing the parse-tier workflow as DAGMan.
    pub parse_dagman_ns: u64,
    /// Best-of-N wall time importing it as prio-workflow-v1 JSON.
    pub parse_json_ns: u64,
    /// Best-of-N wall time importing it as a TSV edge list.
    pub parse_edges_ns: u64,
}

/// Best-of-N wall time for each closure, in nanoseconds. One iteration of
/// every variant runs per round (round-robin), so clock drift and
/// background load hit all variants alike instead of biasing whichever
/// happened to run first.
fn best_ns_interleaved(fs: &mut [&mut dyn FnMut()]) -> Vec<u128> {
    best_ns_interleaved_n(fs, WARMUP, ITERS)
}

/// [`best_ns_interleaved`] with caller-chosen round counts, for tiers
/// whose single iteration is expensive (the 10^5-job parse tier).
fn best_ns_interleaved_n(fs: &mut [&mut dyn FnMut()], warmup: usize, iters: usize) -> Vec<u128> {
    for _ in 0..warmup {
        for f in fs.iter_mut() {
            f();
        }
    }
    let mut best = vec![u128::MAX; fs.len()];
    for _ in 0..iters {
        for (f, best) in fs.iter_mut().zip(&mut best) {
            let t = Instant::now();
            f();
            let ns = t.elapsed().as_nanos();
            if ns < *best {
                *best = ns;
            }
        }
    }
    best
}

/// Runs the measurement on the standard Montage-like dag, with the parse
/// tier at [`PARSE_TARGET_JOBS`].
pub fn measure() -> PipelineBench {
    measure_with_parse_target(PARSE_TARGET_JOBS)
}

/// [`measure`] with a caller-chosen parse-tier size (tests use a small
/// one; the committed baseline always uses [`PARSE_TARGET_JOBS`]).
pub fn measure_with_parse_target(parse_target: usize) -> PipelineBench {
    let dag = montage(MontageParams::scaled(0.13));
    let serial = Prioritizer::new();
    let threaded_prio = Prioritizer::with_options(PrioOptions {
        threads: 4,
        ..PrioOptions::default()
    });
    let mut ctx = PrioContext::new();
    let mut tctx = PrioContext::new();

    let mut run_single = || {
        serial.prioritize(&dag).unwrap();
    };
    let mut run_reuse = || {
        serial.prioritize_in(&dag, &mut ctx).unwrap();
    };
    let mut run_threaded = || {
        threaded_prio.prioritize_in(&dag, &mut tctx).unwrap();
    };
    let best = best_ns_interleaved(&mut [&mut run_single, &mut run_reuse, &mut run_threaded]);
    let (single_shot, context_reuse, threaded) = (best[0], best[1], best[2]);
    let (parse_jobs, parse_best) = measure_parse_tier(parse_target);

    PipelineBench {
        workload: "montage".into(),
        jobs: dag.num_nodes() as u64,
        arcs: dag.num_arcs() as u64,
        iters: ITERS as u64,
        metric: "best_of_n_wall_ns".into(),
        single_shot_ns: single_shot as u64,
        context_reuse_ns: context_reuse as u64,
        threaded_4_ns: threaded as u64,
        reuse_speedup: single_shot as f64 / context_reuse.max(1) as f64,
        parse_jobs,
        parse_iters: PARSE_ITERS as u64,
        parse_dagman_ns: parse_best[0] as u64,
        parse_json_ns: parse_best[1] as u64,
        parse_edges_ns: parse_best[2] as u64,
    }
}

/// Times each frontend importing the same ~10^5-job Montage-like workflow
/// (exported once per format beforehand), interleaved like the pipeline
/// tier. Returns the job count and best-of-N per format in
/// dagman/json/edges order.
fn measure_parse_tier(target: usize) -> (u64, Vec<u128>) {
    let wf = Workflow::synthetic(crate::scaling::montage_tier(target));
    let reg = prio_dagman::registry();
    let texts: Vec<(FormatId, String)> = [FormatId::Dagman, FormatId::Json, FormatId::Edges]
        .into_iter()
        .map(|id| {
            let f = reg.get(id).expect("builtin frontend registered");
            (id, f.export(&wf, wf.priorities()))
        })
        .collect();
    let mut runs: Vec<Box<dyn FnMut()>> = texts
        .iter()
        .map(|(id, text)| {
            let f = reg.get(*id).expect("builtin frontend registered");
            Box::new(move || {
                std::hint::black_box(f.import(text).expect("own export re-imports"));
            }) as Box<dyn FnMut()>
        })
        .collect();
    let mut fs: Vec<&mut dyn FnMut()> = runs.iter_mut().map(|f| f.as_mut() as _).collect();
    let best = best_ns_interleaved_n(&mut fs, PARSE_WARMUP, PARSE_ITERS);
    (wf.num_jobs() as u64, best)
}

impl PipelineBench {
    /// Serializes in the committed `BENCH_pipeline.json` format: keys in
    /// [`KEY_ORDER`], one per line, trailing newline — byte-deterministic
    /// for identical measurements.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"jobs\": {},\n  \"arcs\": {},\n  \"iters\": {},\n  \"metric\": \"{}\",\n  \"single_shot_ns\": {},\n  \"context_reuse_ns\": {},\n  \"threaded_4_ns\": {},\n  \"reuse_speedup\": {:.4},\n  \"parse_jobs\": {},\n  \"parse_iters\": {},\n  \"parse_dagman_ns\": {},\n  \"parse_json_ns\": {},\n  \"parse_edges_ns\": {}\n}}\n",
            self.workload,
            self.jobs,
            self.arcs,
            self.iters,
            self.metric,
            self.single_shot_ns,
            self.context_reuse_ns,
            self.threaded_4_ns,
            self.reuse_speedup,
            self.parse_jobs,
            self.parse_iters,
            self.parse_dagman_ns,
            self.parse_json_ns,
            self.parse_edges_ns,
        )
    }

    /// Parses the `BENCH_pipeline.json` format (any key order).
    pub fn from_json(text: &str) -> Result<PipelineBench, String> {
        let v = parse(text)?;
        if !v.is_object() {
            return Err("expected a JSON object".into());
        }
        let s = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        Ok(PipelineBench {
            workload: s("workload")?,
            jobs: u("jobs")?,
            arcs: u("arcs")?,
            iters: u("iters")?,
            metric: s("metric")?,
            single_shot_ns: u("single_shot_ns")?,
            context_reuse_ns: u("context_reuse_ns")?,
            threaded_4_ns: u("threaded_4_ns")?,
            reuse_speedup: v
                .get("reuse_speedup")
                .and_then(JsonValue::as_f64)
                .ok_or("missing number field \"reuse_speedup\"")?,
            parse_jobs: u("parse_jobs")?,
            parse_iters: u("parse_iters")?,
            parse_dagman_ns: u("parse_dagman_ns")?,
            parse_json_ns: u("parse_json_ns")?,
            parse_edges_ns: u("parse_edges_ns")?,
        })
    }

    /// The timed metrics by name, in serialization order. `compare` (and
    /// therefore `bench_check`) guards every entry, so the per-frontend
    /// parse tier is covered automatically.
    pub fn metrics(&self) -> [(&'static str, u64); 6] {
        [
            ("single_shot_ns", self.single_shot_ns),
            ("context_reuse_ns", self.context_reuse_ns),
            ("threaded_4_ns", self.threaded_4_ns),
            ("parse_dagman_ns", self.parse_dagman_ns),
            ("parse_json_ns", self.parse_json_ns),
            ("parse_edges_ns", self.parse_edges_ns),
        ]
    }
}

/// One metric's baseline-vs-fresh verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// Metric name (`single_shot_ns`, …).
    pub name: &'static str,
    /// Committed baseline, nanoseconds.
    pub baseline_ns: u64,
    /// Fresh measurement, nanoseconds.
    pub fresh_ns: u64,
    /// `fresh / baseline`.
    pub ratio: f64,
    /// Whether the ratio exceeds the threshold.
    pub regressed: bool,
}

/// Compares a fresh measurement against a committed baseline: a metric
/// regresses when `fresh > baseline × threshold`. Returns one verdict per
/// metric; the caller fails when any is regressed.
pub fn compare(
    baseline: &PipelineBench,
    fresh: &PipelineBench,
    threshold: f64,
) -> Vec<MetricCheck> {
    baseline
        .metrics()
        .iter()
        .zip(fresh.metrics().iter())
        .map(|(&(name, baseline_ns), &(_, fresh_ns))| {
            let ratio = fresh_ns as f64 / baseline_ns.max(1) as f64;
            MetricCheck {
                name,
                baseline_ns,
                fresh_ns,
                ratio,
                regressed: ratio > threshold,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineBench {
        PipelineBench {
            workload: "montage".into(),
            jobs: 1033,
            arcs: 2044,
            iters: 40,
            metric: "best_of_n_wall_ns".into(),
            single_shot_ns: 622_366,
            context_reuse_ns: 611_205,
            threaded_4_ns: 729_699,
            reuse_speedup: 1.0183,
            parse_jobs: 100_003,
            parse_iters: 5,
            parse_dagman_ns: 31_000_000,
            parse_json_ns: 54_000_000,
            parse_edges_ns: 22_000_000,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let back = PipelineBench::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn key_order_is_deterministic() {
        let json = sample().to_json();
        // Every key appears exactly once, in KEY_ORDER.
        let mut last = 0;
        for key in KEY_ORDER {
            let needle = format!("\"{key}\":");
            let pos = json
                .find(&needle)
                .unwrap_or_else(|| panic!("missing {key}"));
            assert!(pos > last, "{key} out of order in {json}");
            assert_eq!(json.rfind(&needle), Some(pos), "{key} appears twice");
            last = pos;
        }
        // Byte-identical for identical measurements.
        assert_eq!(json, sample().to_json());
    }

    #[test]
    fn committed_baseline_format_parses() {
        // The exact shape committed at the repository root.
        let committed = "{\n  \"workload\": \"montage\",\n  \"jobs\": 1033,\n  \"arcs\": 2044,\n  \"iters\": 40,\n  \"metric\": \"best_of_n_wall_ns\",\n  \"single_shot_ns\": 622366,\n  \"context_reuse_ns\": 611205,\n  \"threaded_4_ns\": 729699,\n  \"reuse_speedup\": 1.0183,\n  \"parse_jobs\": 100003,\n  \"parse_iters\": 5,\n  \"parse_dagman_ns\": 31000000,\n  \"parse_json_ns\": 54000000,\n  \"parse_edges_ns\": 22000000\n}\n";
        let b = PipelineBench::from_json(committed).unwrap();
        assert_eq!(b, sample());
        assert_eq!(
            b.to_json(),
            committed,
            "writer reproduces the committed bytes"
        );
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(PipelineBench::from_json("{}").is_err());
        assert!(PipelineBench::from_json("[1]").is_err());
        assert!(PipelineBench::from_json("not json").is_err());
    }

    #[test]
    fn compare_flags_only_threshold_breaches() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.single_shot_ns = baseline.single_shot_ns * 3; // 3× slower
        fresh.context_reuse_ns = baseline.context_reuse_ns; // unchanged
        fresh.threaded_4_ns = baseline.threaded_4_ns / 2; // faster
        let checks = compare(&baseline, &fresh, 2.0);
        assert_eq!(checks.len(), 6);
        assert!(checks[0].regressed, "3× exceeds a 2× threshold");
        assert!(!checks[1].regressed);
        assert!(!checks[2].regressed, "speedups never regress");
        assert!((checks[0].ratio - 3.0).abs() < 1e-9);
        // The parse tier is guarded by the same comparison.
        let mut fresh = sample();
        fresh.parse_json_ns = baseline.parse_json_ns * 3;
        let checks = compare(&baseline, &fresh, 2.0);
        assert!(checks
            .iter()
            .any(|c| c.name == "parse_json_ns" && c.regressed));
    }

    #[test]
    fn measurement_smoke_is_consistent() {
        // Not a timing assertion (CI machines vary wildly) — just that the
        // measurement runs and produces internally consistent fields. The
        // parse tier is shrunk so the debug-mode test stays fast.
        let b = measure_with_parse_target(2_000);
        assert_eq!(b.workload, "montage");
        assert!(b.jobs > 0 && b.arcs > 0);
        assert!(b.single_shot_ns > 0 && b.context_reuse_ns > 0 && b.threaded_4_ns > 0);
        let expected = b.single_shot_ns as f64 / b.context_reuse_ns.max(1) as f64;
        assert!((b.reuse_speedup - expected).abs() < 1e-9);
        assert!(b.parse_jobs as usize >= 2_000);
        assert!(b.parse_dagman_ns > 0 && b.parse_json_ns > 0 && b.parse_edges_ns > 0);
        PipelineBench::from_json(&b.to_json()).unwrap();
    }
}
