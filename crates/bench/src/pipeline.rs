//! Shared pipeline-throughput measurement: the library behind the
//! `bench_pipeline` (measure and record) and `bench_check` (regression
//! guard) binaries.
//!
//! The measurement times the PRIO pipeline on a Montage-like dag (~1k
//! jobs) in three configurations — single-shot, context reuse, threaded
//! Step 3 — interleaved round-robin so background load biases no variant,
//! reporting best-of-N wall time. [`PipelineBench::to_json`] serializes
//! with a **fixed key order** ([`KEY_ORDER`]) so the committed
//! `BENCH_pipeline.json` diffs cleanly run to run; [`PipelineBench::from_json`]
//! reads it back (key order independent), and [`compare`] checks a fresh
//! measurement against a committed baseline under a slowdown threshold.

use prio_core::prio::{PrioOptions, Prioritizer};
use prio_core::PrioContext;
use prio_obs::json::{parse, JsonValue};
use prio_workloads::montage::{montage, MontageParams};
use std::time::Instant;

/// Warm-up rounds before timing starts.
pub const WARMUP: usize = 3;
/// Timed rounds; the metric is the minimum over them.
pub const ITERS: usize = 40;

/// The serialized keys, in the exact order [`PipelineBench::to_json`]
/// emits them.
pub const KEY_ORDER: [&str; 9] = [
    "workload",
    "jobs",
    "arcs",
    "iters",
    "metric",
    "single_shot_ns",
    "context_reuse_ns",
    "threaded_4_ns",
    "reuse_speedup",
];

/// One pipeline-throughput measurement (or a parsed committed baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBench {
    /// Workload family name (`"montage"`).
    pub workload: String,
    /// Jobs in the measured dag.
    pub jobs: u64,
    /// Arcs in the measured dag.
    pub arcs: u64,
    /// Timed iterations behind the best-of-N metric.
    pub iters: u64,
    /// Metric name (`"best_of_n_wall_ns"`).
    pub metric: String,
    /// Best-of-N wall time, fresh scratch each run.
    pub single_shot_ns: u64,
    /// Best-of-N wall time reusing one [`PrioContext`].
    pub context_reuse_ns: u64,
    /// Best-of-N wall time with the 4-thread Step 3.
    pub threaded_4_ns: u64,
    /// `single_shot_ns / context_reuse_ns`.
    pub reuse_speedup: f64,
}

/// Best-of-N wall time for each closure, in nanoseconds. One iteration of
/// every variant runs per round (round-robin), so clock drift and
/// background load hit all variants alike instead of biasing whichever
/// happened to run first.
fn best_ns_interleaved(fs: &mut [&mut dyn FnMut()]) -> Vec<u128> {
    for _ in 0..WARMUP {
        for f in fs.iter_mut() {
            f();
        }
    }
    let mut best = vec![u128::MAX; fs.len()];
    for _ in 0..ITERS {
        for (f, best) in fs.iter_mut().zip(&mut best) {
            let t = Instant::now();
            f();
            let ns = t.elapsed().as_nanos();
            if ns < *best {
                *best = ns;
            }
        }
    }
    best
}

/// Runs the measurement on the standard Montage-like dag.
pub fn measure() -> PipelineBench {
    let dag = montage(MontageParams::scaled(0.13));
    let serial = Prioritizer::new();
    let threaded_prio = Prioritizer::with_options(PrioOptions {
        threads: 4,
        ..PrioOptions::default()
    });
    let mut ctx = PrioContext::new();
    let mut tctx = PrioContext::new();

    let mut run_single = || {
        serial.prioritize(&dag).unwrap();
    };
    let mut run_reuse = || {
        serial.prioritize_in(&dag, &mut ctx).unwrap();
    };
    let mut run_threaded = || {
        threaded_prio.prioritize_in(&dag, &mut tctx).unwrap();
    };
    let best = best_ns_interleaved(&mut [&mut run_single, &mut run_reuse, &mut run_threaded]);
    let (single_shot, context_reuse, threaded) = (best[0], best[1], best[2]);

    PipelineBench {
        workload: "montage".into(),
        jobs: dag.num_nodes() as u64,
        arcs: dag.num_arcs() as u64,
        iters: ITERS as u64,
        metric: "best_of_n_wall_ns".into(),
        single_shot_ns: single_shot as u64,
        context_reuse_ns: context_reuse as u64,
        threaded_4_ns: threaded as u64,
        reuse_speedup: single_shot as f64 / context_reuse.max(1) as f64,
    }
}

impl PipelineBench {
    /// Serializes in the committed `BENCH_pipeline.json` format: keys in
    /// [`KEY_ORDER`], one per line, trailing newline — byte-deterministic
    /// for identical measurements.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"jobs\": {},\n  \"arcs\": {},\n  \"iters\": {},\n  \"metric\": \"{}\",\n  \"single_shot_ns\": {},\n  \"context_reuse_ns\": {},\n  \"threaded_4_ns\": {},\n  \"reuse_speedup\": {:.4}\n}}\n",
            self.workload,
            self.jobs,
            self.arcs,
            self.iters,
            self.metric,
            self.single_shot_ns,
            self.context_reuse_ns,
            self.threaded_4_ns,
            self.reuse_speedup,
        )
    }

    /// Parses the `BENCH_pipeline.json` format (any key order).
    pub fn from_json(text: &str) -> Result<PipelineBench, String> {
        let v = parse(text)?;
        if !v.is_object() {
            return Err("expected a JSON object".into());
        }
        let s = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        Ok(PipelineBench {
            workload: s("workload")?,
            jobs: u("jobs")?,
            arcs: u("arcs")?,
            iters: u("iters")?,
            metric: s("metric")?,
            single_shot_ns: u("single_shot_ns")?,
            context_reuse_ns: u("context_reuse_ns")?,
            threaded_4_ns: u("threaded_4_ns")?,
            reuse_speedup: v
                .get("reuse_speedup")
                .and_then(JsonValue::as_f64)
                .ok_or("missing number field \"reuse_speedup\"")?,
        })
    }

    /// The three timed metrics by name, in serialization order.
    pub fn metrics(&self) -> [(&'static str, u64); 3] {
        [
            ("single_shot_ns", self.single_shot_ns),
            ("context_reuse_ns", self.context_reuse_ns),
            ("threaded_4_ns", self.threaded_4_ns),
        ]
    }
}

/// One metric's baseline-vs-fresh verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// Metric name (`single_shot_ns`, …).
    pub name: &'static str,
    /// Committed baseline, nanoseconds.
    pub baseline_ns: u64,
    /// Fresh measurement, nanoseconds.
    pub fresh_ns: u64,
    /// `fresh / baseline`.
    pub ratio: f64,
    /// Whether the ratio exceeds the threshold.
    pub regressed: bool,
}

/// Compares a fresh measurement against a committed baseline: a metric
/// regresses when `fresh > baseline × threshold`. Returns one verdict per
/// metric; the caller fails when any is regressed.
pub fn compare(
    baseline: &PipelineBench,
    fresh: &PipelineBench,
    threshold: f64,
) -> Vec<MetricCheck> {
    baseline
        .metrics()
        .iter()
        .zip(fresh.metrics().iter())
        .map(|(&(name, baseline_ns), &(_, fresh_ns))| {
            let ratio = fresh_ns as f64 / baseline_ns.max(1) as f64;
            MetricCheck {
                name,
                baseline_ns,
                fresh_ns,
                ratio,
                regressed: ratio > threshold,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineBench {
        PipelineBench {
            workload: "montage".into(),
            jobs: 1033,
            arcs: 2044,
            iters: 40,
            metric: "best_of_n_wall_ns".into(),
            single_shot_ns: 622_366,
            context_reuse_ns: 611_205,
            threaded_4_ns: 729_699,
            reuse_speedup: 1.0183,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let back = PipelineBench::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn key_order_is_deterministic() {
        let json = sample().to_json();
        // Every key appears exactly once, in KEY_ORDER.
        let mut last = 0;
        for key in KEY_ORDER {
            let needle = format!("\"{key}\":");
            let pos = json
                .find(&needle)
                .unwrap_or_else(|| panic!("missing {key}"));
            assert!(pos > last, "{key} out of order in {json}");
            assert_eq!(json.rfind(&needle), Some(pos), "{key} appears twice");
            last = pos;
        }
        // Byte-identical for identical measurements.
        assert_eq!(json, sample().to_json());
    }

    #[test]
    fn committed_baseline_format_parses() {
        // The exact shape committed at the repository root.
        let committed = "{\n  \"workload\": \"montage\",\n  \"jobs\": 1033,\n  \"arcs\": 2044,\n  \"iters\": 40,\n  \"metric\": \"best_of_n_wall_ns\",\n  \"single_shot_ns\": 622366,\n  \"context_reuse_ns\": 611205,\n  \"threaded_4_ns\": 729699,\n  \"reuse_speedup\": 1.0183\n}\n";
        let b = PipelineBench::from_json(committed).unwrap();
        assert_eq!(b, sample());
        assert_eq!(
            b.to_json(),
            committed,
            "writer reproduces the committed bytes"
        );
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(PipelineBench::from_json("{}").is_err());
        assert!(PipelineBench::from_json("[1]").is_err());
        assert!(PipelineBench::from_json("not json").is_err());
    }

    #[test]
    fn compare_flags_only_threshold_breaches() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.single_shot_ns = baseline.single_shot_ns * 3; // 3× slower
        fresh.context_reuse_ns = baseline.context_reuse_ns; // unchanged
        fresh.threaded_4_ns = baseline.threaded_4_ns / 2; // faster
        let checks = compare(&baseline, &fresh, 2.0);
        assert_eq!(checks.len(), 3);
        assert!(checks[0].regressed, "3× exceeds a 2× threshold");
        assert!(!checks[1].regressed);
        assert!(!checks[2].regressed, "speedups never regress");
        assert!((checks[0].ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_smoke_is_consistent() {
        // Not a timing assertion (CI machines vary wildly) — just that the
        // measurement runs and produces internally consistent fields.
        let b = measure();
        assert_eq!(b.workload, "montage");
        assert!(b.jobs > 0 && b.arcs > 0);
        assert!(b.single_shot_ns > 0 && b.context_reuse_ns > 0 && b.threaded_4_ns > 0);
        let expected = b.single_shot_ns as f64 / b.context_reuse_ns.max(1) as f64;
        assert!((b.reuse_speedup - expected).abs() < 1e-9);
        PipelineBench::from_json(&b.to_json()).unwrap();
    }
}
