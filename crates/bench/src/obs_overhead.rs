//! Observability-overhead measurement: traced-vs-untraced pipeline+sim
//! wall time at the 10⁵/10⁶-job tiers, behind the `bench_obs` binary and
//! the `bench_check --obs-fresh` regression gate.
//!
//! Each row measures the same Montage-tier dag three ways:
//!
//! * **untraced** — prioritize + simulate, no trace consumer attached
//!   (the baseline everything is judged against);
//! * **traced** — prioritize + [`simulate_streamed`] through a full-rate
//!   [`StreamingTraceWriter`] into a deferred-drain [`TracePipeline`]
//!   (writer parked, see below) over a discarding sink;
//! * **sampled** — the same with a 1/1000 [`JobSampler`], the low-cost
//!   mode `--trace-sample` offers.
//!
//! ## What is gated vs. what is recorded
//!
//! The pipeline's contract is that tracing **never blocks the sim
//! clock**: the overhead that matters for measurement fidelity is what
//! the producing thread pays — per event, a sampler hash, a buffer
//! append, and an amortized ring push. The traced/sampled columns
//! measure exactly that: the writer thread stays parked during the
//! producing phase (deferred mode), so its CPU time cannot pollute the
//! producer's wall clock, on any core count. That ratio is what the
//! `budget` (default 1.10×) gates.
//!
//! The writer's own encode+write cost does not vanish — it is measured
//! separately as **`drain_ns`** (the one-pass drain of the full trace at
//! `finish`) and guarded *cross-run* against the committed baseline like
//! any other wall-time metric. On multi-core hosts the drain overlaps
//! the simulation in production; folding it into the gated ratio would
//! make the gate measure host core count and disk speed instead of the
//! perturbation the pipeline promises to bound. The `dropped` column
//! (gated at 0) proves the ring was sized for the whole trace; the CLI
//! end-to-end tests separately prove the *concurrent* production
//! pipeline traces full-rate runs without dropping.
//!
//! The committed `BENCH_obs.json` is the contract. Rows serialize with a
//! fixed key order and are matched by `(workload, jobs)` like the
//! scaling rows, so a smoke run covering only the 10⁵ tier still checks
//! against the committed file.

use crate::pipeline::MetricCheck;
use crate::scaling::montage_tier;
use prio_core::prio::Prioritizer;
use prio_graph::Dag;
use prio_obs::json::{parse, JsonValue};
use prio_obs::{JobSampler, JsonlSink, DEFAULT_RING_CAPACITY};
use prio_sim::engine::{simulate, simulate_streamed};
use prio_sim::model::GridModel;
use prio_sim::trace_json::{event_pipeline_deferred, StreamingTraceWriter, DEFAULT_CHUNK_EVENTS};
use prio_sim::PolicySpec;
use std::time::Instant;

/// The job-count tiers, smallest first. Only the big tiers matter here:
/// per-event overhead is invisible under a small run's fixed costs.
pub const TIERS: [usize; 2] = [100_000, 1_000_000];

/// Sampling modulus of the `sampled` column.
pub const SAMPLE_MODULUS: u64 = 1_000;

/// Same arrival process as the scaling rows.
const SIM_SEED: u64 = 42;

/// One `(workload, tier)` overhead row.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRow {
    /// Dag family (currently always `"montage"`).
    pub workload: String,
    /// Jobs in the generated dag (close to, not exactly, the tier).
    pub jobs: u64,
    /// Timed iterations behind the best-of-N metrics.
    pub iters: u64,
    /// Best-of-N wall time of prioritize + simulate, untraced.
    pub untraced_ns: u64,
    /// Best-of-N wall time of prioritize + simulate streaming every
    /// event into the (deferred-drain) trace pipeline: the producer-side
    /// overhead the budget gates.
    pub traced_ns: u64,
    /// Best-of-N wall time with a 1/[`SAMPLE_MODULUS`] job sampler.
    pub sampled_ns: u64,
    /// Best-of-N wall time of the writer's one-pass drain of a full-rate
    /// trace (JSON-encode every event, batch-write to the sink). Guarded
    /// cross-run, not budget-gated — see the module docs.
    pub drain_ns: u64,
    /// Events in one full-rate trace of this dag (what `drain_ns`
    /// drained).
    pub events: u64,
    /// Events the ring dropped across all traced iterations. Must be 0:
    /// a drop here means the bench's ring was undersized for the trace.
    pub dropped: u64,
}

impl ObsRow {
    /// Traced-over-untraced wall-time ratio (the gated overhead).
    pub fn traced_ratio(&self) -> f64 {
        self.traced_ns as f64 / self.untraced_ns.max(1) as f64
    }

    /// Sampled-over-untraced wall-time ratio.
    pub fn sampled_ratio(&self) -> f64 {
        self.sampled_ns as f64 / self.untraced_ns.max(1) as f64
    }
}

/// A full measurement: one row per tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsBench {
    /// Metric name (`"best_of_n_wall_ns"`).
    pub metric: String,
    /// Rows in measurement order, smallest tier first.
    pub rows: Vec<ObsRow>,
}

/// Best-of-11 keeps the full run near two minutes while giving the
/// min estimator enough rounds to find quiet windows on a busy host —
/// the gated metric is a ratio of two ~1.5 s measurements, and on a
/// single-core machine any background process lands entirely on the
/// benchmarked thread, so each side of the ratio needs its own lucky
/// quiet window.
fn iters_for(_jobs: usize) -> usize {
    11
}

fn timed(f: &mut dyn FnMut()) -> u64 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos() as u64
}

/// Measures one dag untraced / traced / sampled. Returns the row.
///
/// The three configurations are *interleaved* round-robin (untraced,
/// traced, sampled, repeat) rather than measured phase-by-phase: the
/// gated metric is a ratio, and on a shared machine a slow patch hitting
/// one whole phase would skew it. Interleaving spreads drift evenly
/// across the configurations; best-of-N then discards the slow rounds.
pub fn measure_dag(workload: &str, dag: &Dag) -> ObsRow {
    let iters = iters_for(dag.num_nodes());
    let prio = Prioritizer::new();
    let model = GridModel::paper(1.0, 64.0);
    let schedule = prio.prioritize(dag).unwrap().schedule;
    let policy = PolicySpec::Oblivious(schedule);

    let mut untraced = || {
        std::hint::black_box(prio.prioritize(dag).unwrap());
        std::hint::black_box(simulate(dag, &policy, &model, SIM_SEED));
    };

    // A full-rate trace emits a handful of events per job; size the ring
    // (chunk records of up to 256 events each) to hold the whole trace
    // with headroom, so deferred mode buffers losslessly.
    let ring = DEFAULT_RING_CAPACITY.max((dag.num_nodes() / 16).next_power_of_two());

    // Traced runs stream into a deferred-drain pipeline (writer parked)
    // over a discarding sink: the producing phase's wall time is pure
    // producer-side overhead, and `finish` is pure writer throughput —
    // neither number is polluted by the other, or by disk speed.
    //
    // Deferred mode buffers the whole trace, so chunk buffers are
    // pre-allocated and pre-faulted (`with_chunk_pool`) before the
    // timer starts: a concurrent-drain pipeline recycles chunk memory
    // through the allocator at steady state, and charging the producer
    // for ~40k fresh page faults it would never pay in production
    // would gate the measurement harness, not the pipeline.
    // Returns (producer_ns, drain_ns, enqueued, dropped).
    let streamed = |sampler: JobSampler, pool_chunks: usize| -> (u64, u64, u64, u64) {
        let sink = JsonlSink::to_writer(Box::new(std::io::sink()));
        let pipeline = event_pipeline_deferred(sink, ring, sampler.modulus());
        let writer = if pool_chunks > 0 {
            StreamingTraceWriter::with_chunk_pool(&pipeline, sampler, pool_chunks)
        } else {
            StreamingTraceWriter::new(&pipeline, sampler)
        };
        let t = Instant::now();
        std::hint::black_box(prio.prioritize(dag).unwrap());
        std::hint::black_box(simulate_streamed(
            dag, &policy, &model, None, SIM_SEED, &writer,
        ));
        let producer_ns = t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let (_sink, stats, result) = pipeline.finish();
        let drain_ns = t.elapsed().as_nanos() as u64;
        result.expect("discarding sink never fails");
        (producer_ns, drain_ns, stats.enqueued, stats.dropped)
    };

    // Warm-up rounds (not timed, not drop-counted): page in the dag,
    // the allocator arenas, and the pipeline code paths — and discover
    // each configuration's event count, which sizes the pre-faulted
    // chunk pool for the timed rounds.
    untraced();
    let (_, _, full_events, _) = streamed(JobSampler::full_rate(), 0);
    let (_, _, sampled_events, _) = streamed(JobSampler::new(SAMPLE_MODULUS), 0);
    let pool = |events: u64| events as usize / DEFAULT_CHUNK_EVENTS + 2;

    let mut dropped = 0u64;
    let mut events = 0u64;
    let (mut untraced_ns, mut traced_ns, mut sampled_ns, mut drain_ns) =
        (u64::MAX, u64::MAX, u64::MAX, u64::MAX);
    for _ in 0..iters {
        untraced_ns = untraced_ns.min(timed(&mut untraced));
        let (producer, drain, enqueued, drops) =
            streamed(JobSampler::full_rate(), pool(full_events));
        traced_ns = traced_ns.min(producer);
        drain_ns = drain_ns.min(drain);
        events = enqueued;
        dropped += drops;
        let (producer, _, _, _) = streamed(JobSampler::new(SAMPLE_MODULUS), pool(sampled_events));
        sampled_ns = sampled_ns.min(producer);
    }

    ObsRow {
        workload: workload.into(),
        jobs: dag.num_nodes() as u64,
        iters: iters as u64,
        untraced_ns,
        traced_ns,
        sampled_ns,
        drain_ns,
        events,
        dropped,
    }
}

/// Runs every tier at or below `max_jobs` (None = all). `progress` is
/// called before each row with a human-readable label.
pub fn measure(max_jobs: Option<usize>, mut progress: impl FnMut(&str)) -> ObsBench {
    let mut rows = Vec::new();
    for &tier in &TIERS {
        if max_jobs.is_some_and(|cap| tier > cap) {
            continue;
        }
        let dag = montage_tier(tier);
        progress(&format!(
            "montage tier {tier}: {} jobs, {} arcs",
            dag.num_nodes(),
            dag.num_arcs()
        ));
        rows.push(measure_dag("montage", &dag));
    }
    ObsBench {
        metric: "best_of_n_wall_ns".into(),
        rows,
    }
}

impl ObsRow {
    fn to_json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"jobs\": {}, \"iters\": {}, \"untraced_ns\": {}, \"traced_ns\": {}, \"sampled_ns\": {}, \"drain_ns\": {}, \"events\": {}, \"dropped\": {}}}",
            self.workload, self.jobs, self.iters, self.untraced_ns, self.traced_ns, self.sampled_ns, self.drain_ns, self.events, self.dropped,
        )
    }

    fn from_json(v: &JsonValue) -> Result<ObsRow, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("row missing integer field {key:?}"))
        };
        Ok(ObsRow {
            workload: v
                .get("workload")
                .and_then(JsonValue::as_str)
                .ok_or("row missing string field \"workload\"")?
                .to_owned(),
            jobs: u("jobs")?,
            iters: u("iters")?,
            untraced_ns: u("untraced_ns")?,
            traced_ns: u("traced_ns")?,
            sampled_ns: u("sampled_ns")?,
            drain_ns: u("drain_ns")?,
            events: u("events")?,
            dropped: u("dropped")?,
        })
    }
}

impl ObsBench {
    /// Serializes in the committed `BENCH_obs.json` format: fixed key
    /// order, one row per line.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(ObsRow::to_json).collect();
        format!(
            "{{\n  \"metric\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.metric,
            rows.join(",\n")
        )
    }

    /// Parses the `BENCH_obs.json` format (any key order).
    pub fn from_json(text: &str) -> Result<ObsBench, String> {
        let v = parse(text)?;
        let metric = v
            .get("metric")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field \"metric\"")?
            .to_owned();
        let rows = match v.get("rows") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(ObsRow::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing array field \"rows\"".into()),
        };
        Ok(ObsBench { metric, rows })
    }

    /// The row for a `(workload, jobs)` identity, if present.
    pub fn row(&self, workload: &str, jobs: u64) -> Option<&ObsRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.jobs == jobs)
    }
}

/// The overhead gate on one measurement: per row, the traced and sampled
/// runs must finish within `budget × untraced` (the fresh run's own
/// baseline — machine speed cancels out of the ratio), and the default
/// ring must have dropped nothing. Returns one [`MetricCheck`] per gated
/// metric; `baseline_ns` is the budget-scaled untraced time the fresh
/// time is held to.
pub fn check_overhead(bench: &ObsBench, budget: f64) -> Vec<(String, MetricCheck)> {
    let mut checks = Vec::new();
    for row in &bench.rows {
        let label = format!("{}/{}", row.workload, row.jobs);
        for (name, fresh_ns, ratio) in [
            ("traced_overhead", row.traced_ns, row.traced_ratio()),
            ("sampled_overhead", row.sampled_ns, row.sampled_ratio()),
        ] {
            checks.push((
                label.clone(),
                MetricCheck {
                    name,
                    baseline_ns: row.untraced_ns,
                    fresh_ns,
                    ratio,
                    regressed: ratio > budget,
                },
            ));
        }
        checks.push((
            label,
            MetricCheck {
                name: "dropped_events",
                baseline_ns: 0,
                fresh_ns: row.dropped,
                ratio: row.dropped as f64,
                regressed: row.dropped > 0,
            },
        ));
    }
    checks
}

/// Cross-run regression check against the committed baseline: rows are
/// matched by `(workload, jobs)`; unmatched rows (smoke runs) are
/// skipped. Uses the ordinary wall-time threshold, not the overhead
/// budget — absolute times vary with the machine, ratios do not.
pub fn compare_obs(
    baseline: &ObsBench,
    fresh: &ObsBench,
    threshold: f64,
) -> Vec<(String, MetricCheck)> {
    let mut checks = Vec::new();
    for f in &fresh.rows {
        let Some(b) = baseline.row(&f.workload, f.jobs) else {
            continue;
        };
        let label = format!("{}/{}", f.workload, f.jobs);
        for (name, baseline_ns, fresh_ns) in [
            ("untraced_ns", b.untraced_ns, f.untraced_ns),
            ("traced_ns", b.traced_ns, f.traced_ns),
            ("drain_ns", b.drain_ns, f.drain_ns),
        ] {
            let ratio = fresh_ns as f64 / baseline_ns.max(1) as f64;
            checks.push((
                label.clone(),
                MetricCheck {
                    name,
                    baseline_ns,
                    fresh_ns,
                    ratio,
                    regressed: ratio > threshold,
                },
            ));
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsBench {
        ObsBench {
            metric: "best_of_n_wall_ns".into(),
            rows: vec![
                ObsRow {
                    workload: "montage".into(),
                    jobs: 103_000,
                    iters: 5,
                    untraced_ns: 100_000_000,
                    traced_ns: 105_000_000,
                    sampled_ns: 101_000_000,
                    drain_ns: 60_000_000,
                    events: 500_000,
                    dropped: 0,
                },
                ObsRow {
                    workload: "montage".into(),
                    jobs: 1_030_000,
                    iters: 3,
                    untraced_ns: 1_000_000_000,
                    traced_ns: 1_080_000_000,
                    sampled_ns: 1_020_000_000,
                    drain_ns: 700_000_000,
                    events: 5_000_000,
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let back = ObsBench::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
        assert_eq!(b.to_json(), back.to_json());
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(ObsBench::from_json("{}").is_err());
        assert!(ObsBench::from_json("{\"metric\": \"m\"}").is_err());
        assert!(ObsBench::from_json("{\"metric\": \"m\", \"rows\": [{}]}").is_err());
    }

    #[test]
    fn overhead_gate_passes_within_budget_and_fails_beyond() {
        let b = sample();
        let checks = check_overhead(&b, 1.10);
        assert_eq!(checks.len(), 6, "two rows × three gated metrics");
        assert!(checks.iter().all(|(_, c)| !c.regressed));

        let mut slow = sample();
        slow.rows[1].traced_ns = slow.rows[1].untraced_ns * 2; // 2.0× > 1.10×
        let checks = check_overhead(&slow, 1.10);
        let failed: Vec<_> = checks.iter().filter(|(_, c)| c.regressed).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].1.name, "traced_overhead");
        assert_eq!(failed[0].0, "montage/1030000");
    }

    #[test]
    fn any_dropped_event_fails_the_gate() {
        let mut b = sample();
        b.rows[0].dropped = 1;
        let checks = check_overhead(&b, 1.10);
        let failed: Vec<_> = checks.iter().filter(|(_, c)| c.regressed).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].1.name, "dropped_events");
    }

    #[test]
    fn compare_matches_rows_by_identity_and_skips_unmatched() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.rows.truncate(1); // smoke run: small tier only
        fresh.rows[0].untraced_ns *= 3;
        let checks = compare_obs(&baseline, &fresh, 2.0);
        assert_eq!(checks.len(), 3, "one matched row × three metrics");
        assert!(checks[0].1.regressed, "3× exceeds 2×");
        assert!(!checks[1].1.regressed);
        assert!(!checks[2].1.regressed);
    }

    #[test]
    fn measure_dag_smoke() {
        // A small dag: not a meaningful overhead measurement, but proves
        // the three paths run and account drops.
        let dag = montage_tier(200);
        let row = measure_dag("montage", &dag);
        assert_eq!(row.jobs, dag.num_nodes() as u64);
        assert!(row.untraced_ns > 0 && row.traced_ns > 0 && row.sampled_ns > 0);
        assert!(row.drain_ns > 0, "the deferred drain is a real phase");
        assert!(row.events > 0, "a full-rate trace has events");
        assert_eq!(row.dropped, 0, "default ring never drops at this scale");
    }
}
