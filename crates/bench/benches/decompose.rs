//! §3.5 ablation: bipartite-block fast path vs the general
//! minimal-`C(s)` search in the decomposition. (Paper: the fast path
//! reduced SDSS decomposition from over 2 days to a few minutes.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_core::decompose::{decompose, DecomposeOptions};
use prio_graph::reduction::transitive_reduction;
use prio_workloads::{airsn, sdss};

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    group.sample_size(10);

    let cases = vec![
        ("AIRSN_w50", transitive_reduction(&airsn::airsn(50))),
        (
            "SDSS_tiny",
            transitive_reduction(&sdss::sdss(sdss::SdssParams {
                fields: 64,
                targets: 200,
                extra_chain: 0,
            })),
        ),
    ];
    for (name, dag) in &cases {
        group.bench_with_input(BenchmarkId::new("fast_path", name), dag, |b, dag| {
            b.iter(|| decompose(dag, DecomposeOptions { fast_path: true }));
        });
        group.bench_with_input(BenchmarkId::new("general_only", name), dag, |b, dag| {
            b.iter(|| decompose(dag, DecomposeOptions { fast_path: false }));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
