//! §3.6 overhead: running time of the full `prio` pipeline on the four
//! scientific dags (scaled so the bench suite stays fast; the full-size
//! wall-clock/memory table is `--bin table_overhead`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_core::prio::prioritize;
use prio_workloads::{airsn, inspiral, montage, sdss};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("prio_pipeline");
    group.sample_size(10);

    let cases = vec![
        ("AIRSN_773", airsn::airsn_paper()),
        ("Inspiral_2988", inspiral::inspiral_paper()),
        (
            "Montage_scaled",
            montage::montage(montage::MontageParams::scaled(0.25)),
        ),
        ("SDSS_scaled", sdss::sdss(sdss::SdssParams::scaled(0.05))),
    ];
    for (name, dag) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &dag, |b, dag| {
            b.iter(|| prioritize(dag));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
