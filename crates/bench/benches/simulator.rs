//! Throughput of the event-driven grid simulator — one run of AIRSN under
//! both policies at a PRIO-favourable cell and at an abundant-workers
//! cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_core::prio::prioritize;
use prio_sim::{simulate, GridModel, PolicySpec};
use prio_workloads::airsn::airsn;

fn bench_simulator(c: &mut Criterion) {
    let dag = airsn(50);
    let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
    let fifo = PolicySpec::Fifo;

    let cells = [
        ("sweet_spot", GridModel::paper(1.0, 16.0)),
        ("abundant", GridModel::paper(0.01, 4096.0)),
    ];
    let mut group = c.benchmark_group("simulate_airsn_w50");
    group.sample_size(20);
    for (cell, model) in cells {
        group.bench_with_input(BenchmarkId::new("PRIO", cell), &model, |b, m| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                simulate(&dag, &prio, m, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("FIFO", cell), &model, |b, m| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                simulate(&dag, &fifo, m, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
