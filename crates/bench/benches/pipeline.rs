//! End-to-end pipeline throughput on a Montage-like dag (~1k jobs):
//! single-shot runs (fresh scratch every call) vs context reuse
//! ([`Prioritizer::prioritize_in`] with a persistent [`PrioContext`]) vs
//! the threaded Step 3.

use criterion::{criterion_group, criterion_main, Criterion};
use prio_core::prio::{PrioOptions, Prioritizer};
use prio_core::PrioContext;
use prio_workloads::montage::{montage, MontageParams};

fn bench_pipeline(c: &mut Criterion) {
    let dag = montage(MontageParams::scaled(0.13));
    let mut group = c.benchmark_group(format!("pipeline_montage_{}", dag.num_nodes()));
    group.sample_size(20);

    let serial = Prioritizer::new();
    group.bench_function("single_shot", |b| {
        b.iter(|| serial.prioritize(&dag).unwrap())
    });

    let mut ctx = PrioContext::new();
    group.bench_function("context_reuse", |b| {
        b.iter(|| serial.prioritize_in(&dag, &mut ctx).unwrap())
    });

    let threaded = Prioritizer::with_options(PrioOptions {
        threads: 4,
        ..PrioOptions::default()
    });
    let mut tctx = PrioContext::new();
    group.bench_function("threaded_4", |b| {
        b.iter(|| threaded.prioritize_in(&dag, &mut tctx).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
