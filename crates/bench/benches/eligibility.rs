//! Microbenchmarks of the substrate operations on the pipeline's hot
//! path: eligibility-profile computation, FIFO schedule construction and
//! shortcut removal.

use criterion::{criterion_group, criterion_main, Criterion};
use prio_core::eligibility::eligibility_profile;
use prio_core::fifo::fifo_schedule;
use prio_graph::reduction::transitive_reduction;
use prio_workloads::montage::{montage, MontageParams};

fn bench_substrate(c: &mut Criterion) {
    let dag = montage(MontageParams::scaled(0.25));
    let fifo = fifo_schedule(&dag);

    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);
    group.bench_function("fifo_schedule_montage_quarter", |b| {
        b.iter(|| fifo_schedule(&dag));
    });
    group.bench_function("eligibility_profile_montage_quarter", |b| {
        b.iter(|| eligibility_profile(&dag, fifo.order()));
    });
    group.bench_function("transitive_reduction_montage_quarter", |b| {
        b.iter(|| transitive_reduction(&dag));
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
