//! §3.5 ablation: naive quadratic combine vs the engineered class-cached
//! engine. (Paper: replacing the naive quadratic selection with a B-tree
//! priority queue "reduced the running time by a substantial factor".)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_core::combine::{combine, CombineEngine};
use prio_graph::Dag;

/// A superdag shaped like a scientific dag's: many independent supernodes
/// drawn from a handful of profile classes.
fn synthetic(n: usize) -> (Dag, Vec<Vec<usize>>) {
    let superdag = Dag::from_arcs(n, &[]).expect("independent supernodes");
    let classes: Vec<Vec<usize>> = vec![vec![1, 1], vec![1, 2], vec![2, 2, 3], vec![3, 2, 1]];
    let profiles = (0..n).map(|i| classes[i % classes.len()].clone()).collect();
    (superdag, profiles)
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let (superdag, profiles) = synthetic(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| combine(&superdag, &profiles, CombineEngine::Naive));
        });
        group.bench_with_input(BenchmarkId::new("class_cached", n), &n, |b, _| {
            b.iter(|| combine(&superdag, &profiles, CombineEngine::ClassHeap));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_combine);
criterion_main!(benches);
