//! Recognizing catalog families in decomposed components (Recurse phase,
//! Step 3).
//!
//! "We check if each component Ci is (isomorphic to) a bipartite dag with a
//! known IC-optimal schedule. If so, we use an explicit IC-optimal
//! schedule." The recognizers here are exact — they verify the structural
//! characterization of each family — and return both the [`Family`] and the
//! concrete IC-optimal source order for the component at hand.

use crate::families::Family;
use prio_graph::bipartite::{bipartite_split, is_bipartite_dag, is_weakly_connected};
use prio_graph::{Dag, NodeId};

/// Attempts to recognize `dag` (a connected bipartite component) as a
/// catalog family, returning the family and an IC-optimal source order.
///
/// Returns `None` for non-bipartite or unrecognized shapes (the caller then
/// falls back to the out-degree heuristic).
pub fn recognize(dag: &Dag) -> Option<(Family, Vec<NodeId>)> {
    if dag.num_nodes() < 2 || !is_bipartite_dag(dag) || !is_weakly_connected(dag) {
        return None;
    }
    let (sources, sinks) = bipartite_split(dag)?;
    if sources.is_empty() || sinks.is_empty() {
        return None;
    }
    recognize_clique(dag, &sources, &sinks)
        .or_else(|| recognize_w(dag, &sources, &sinks))
        .or_else(|| recognize_m(dag, &sources, &sinks))
        .or_else(|| recognize_n(dag, &sources, &sinks))
        .or_else(|| recognize_cycle(dag, &sources, &sinks))
}

/// Complete bipartite `K_{s,t}`: every source adjacent to every sink.
fn recognize_clique(
    dag: &Dag,
    sources: &[NodeId],
    sinks: &[NodeId],
) -> Option<(Family, Vec<NodeId>)> {
    let t = sinks.len();
    if sources.iter().all(|&u| dag.out_degree(u) == t) && dag.num_arcs() == sources.len() * t {
        Some((
            Family::Clique {
                s: sources.len(),
                t,
            },
            sources.to_vec(),
        ))
    } else {
        None
    }
}

/// `(s,d)`-W-dag: common source out-degree `d ≥ 2`, `s(d−1)+1` sinks of
/// in-degree 1 or 2, and the "shares a sink" relation on sources forms a
/// simple spanning path.
fn recognize_w(dag: &Dag, sources: &[NodeId], sinks: &[NodeId]) -> Option<(Family, Vec<NodeId>)> {
    let s = sources.len();
    let d = dag.out_degree(sources[0]);
    if d < 2 || sources.iter().any(|&u| dag.out_degree(u) != d) {
        return None;
    }
    if sinks.len() != s * (d - 1) + 1 {
        return None;
    }
    if sinks
        .iter()
        .any(|&v| dag.in_degree(v) > 2 || dag.in_degree(v) == 0)
    {
        return None;
    }
    if s == 1 {
        // A star: the degenerate (1,d)-W.
        return Some((Family::W { s: 1, d }, sources.to_vec()));
    }
    // Build the sharing graph on source positions.
    let order = source_sharing_path(dag, sources, sinks)?;
    Some((Family::W { s, d }, order))
}

/// `(s,d)`-M-dag: the dual of the W-dag. Recognized by checking the W shape
/// on the arc-reversed component; the source order then emits each sink's
/// parent window in sink-path order.
fn recognize_m(dag: &Dag, sources: &[NodeId], sinks: &[NodeId]) -> Option<(Family, Vec<NodeId>)> {
    let s = sinks.len();
    let d = dag.in_degree(sinks[0]);
    if d < 2 || sinks.iter().any(|&v| dag.in_degree(v) != d) {
        return None;
    }
    if sources.len() != s * (d - 1) + 1 {
        return None;
    }
    if sources
        .iter()
        .any(|&u| dag.out_degree(u) > 2 || dag.out_degree(u) == 0)
    {
        return None;
    }
    let sink_order = if s == 1 {
        sinks.to_vec()
    } else {
        // The sharing path on sinks (two sinks adjacent iff they share a
        // parent) — exactly the W structure of the reversed dag.
        sink_sharing_path(dag, sources, sinks)?
    };
    // Emit each window's not-yet-emitted parents, window by window.
    let mut emitted = vec![false; dag.num_nodes()];
    let mut order = Vec::with_capacity(sources.len());
    for &w in &sink_order {
        for &p in dag.parents(w) {
            if !emitted[p.index()] {
                emitted[p.index()] = true;
                order.push(p);
            }
        }
    }
    if order.len() != sources.len() {
        return None;
    }
    Some((Family::M { s, d }, order))
}

/// `d`-N-dag: the underlying undirected graph is a simple path whose
/// endpoints are one source and one sink. The IC-optimal order lists the
/// sources starting from the sink endpoint's side.
fn recognize_n(dag: &Dag, sources: &[NodeId], sinks: &[NodeId]) -> Option<(Family, Vec<NodeId>)> {
    if sources.len() != sinks.len() {
        return None;
    }
    let d = sources.len();
    if d < 2 {
        return None;
    }
    let path = underlying_path(dag)?;
    let first = *path.first().expect("path non-empty");
    let last = *path.last().expect("path non-empty");
    let (start, _end) = match (dag.is_sink(first), dag.is_sink(last)) {
        (true, false) => (first, last),
        (false, true) => (last, first),
        _ => return None, // both same kind: that is a W or M, not an N
    };
    // Walk from the sink endpoint; sources appear in optimal order.
    let walk = walk_path(dag, start);
    let order: Vec<NodeId> = walk.into_iter().filter(|&u| !dag.is_sink(u)).collect();
    if order.len() != d {
        return None;
    }
    Some((Family::N { d }, order))
}

/// `d`-Cycle-dag: the underlying undirected graph is a single cycle of
/// length `2d`, alternating sources (out-degree 2) and sinks (in-degree 2).
fn recognize_cycle(
    dag: &Dag,
    sources: &[NodeId],
    sinks: &[NodeId],
) -> Option<(Family, Vec<NodeId>)> {
    let d = sources.len();
    if d < 3 || sinks.len() != d {
        return None;
    }
    if sources.iter().any(|&u| dag.out_degree(u) != 2)
        || sinks.iter().any(|&v| dag.in_degree(v) != 2)
    {
        return None;
    }
    if dag.num_arcs() != 2 * d {
        return None;
    }
    // Walk the ring starting at the smallest-index source.
    let start = sources[0];
    let mut order = Vec::with_capacity(d);
    let mut prev: Option<NodeId> = None;
    let mut cur = start;
    for _ in 0..2 * d {
        if !dag.is_sink(cur) {
            order.push(cur);
        }
        let next = neighbors(dag, cur).into_iter().find(|&w| Some(w) != prev)?;
        prev = Some(cur);
        cur = next;
    }
    if cur != start || order.len() != d {
        return None; // not a single ring
    }
    Some((Family::Cycle { d }, order))
}

/// Undirected neighbors of `u` (children + parents; disjoint in a DAG).
fn neighbors(dag: &Dag, u: NodeId) -> Vec<NodeId> {
    dag.children(u)
        .iter()
        .chain(dag.parents(u))
        .copied()
        .collect()
}

/// If the underlying undirected graph is a simple path, returns its nodes in
/// path order (from the endpoint with the smaller node index).
fn underlying_path(dag: &Dag) -> Option<Vec<NodeId>> {
    let n = dag.num_nodes();
    let mut endpoints = Vec::new();
    for u in dag.node_ids() {
        match neighbors(dag, u).len() {
            1 => endpoints.push(u),
            2 => {}
            _ => return None,
        }
    }
    if endpoints.len() != 2 || dag.num_arcs() != n - 1 {
        return None;
    }
    let walk = walk_path(dag, endpoints[0].min(endpoints[1]));
    if walk.len() == n {
        Some(walk)
    } else {
        None
    }
}

/// Walks a degree-≤2 graph from an endpoint, returning nodes in visit order.
fn walk_path(dag: &Dag, start: NodeId) -> Vec<NodeId> {
    let mut walk = vec![start];
    let mut prev: Option<NodeId> = None;
    let mut cur = start;
    loop {
        let next = neighbors(dag, cur).into_iter().find(|&w| Some(w) != prev);
        match next {
            Some(w) => {
                walk.push(w);
                prev = Some(cur);
                cur = w;
            }
            None => return walk,
        }
    }
}

/// Orders the sources of a W-shaped dag along their sharing path: two
/// sources are adjacent iff they share a sink; the relation must form a
/// simple spanning path, each adjacent pair sharing exactly one sink.
fn source_sharing_path(dag: &Dag, sources: &[NodeId], _sinks: &[NodeId]) -> Option<Vec<NodeId>> {
    sharing_path(sources, |u| dag.children(u), |v| dag.parents(v), dag)
}

/// Orders the sinks of an M-shaped dag along their sharing path (two sinks
/// adjacent iff they share a parent).
fn sink_sharing_path(dag: &Dag, _sources: &[NodeId], sinks: &[NodeId]) -> Option<Vec<NodeId>> {
    sharing_path(sinks, |v| dag.parents(v), |u| dag.children(u), dag)
}

/// Common path-builder over the "shares a middle node" relation.
///
/// `side` are the path candidates; `fwd(x)` lists each candidate's middle
/// nodes; `bwd(m)` lists the candidates incident to a middle node.
fn sharing_path<'a>(
    side: &[NodeId],
    fwd: impl Fn(NodeId) -> &'a [NodeId],
    bwd: impl Fn(NodeId) -> &'a [NodeId],
    dag: &Dag,
) -> Option<Vec<NodeId>> {
    let s = side.len();
    let mut pos = vec![usize::MAX; dag.num_nodes()];
    for (i, &u) in side.iter().enumerate() {
        pos[u.index()] = i;
    }
    // adj[i] = sharing-neighbors of side[i].
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); s];
    let mut shared_middles = 0usize;
    for &u in side {
        for &mid in fwd(u) {
            for &other in bwd(mid) {
                if other != u {
                    let (a, b) = (pos[u.index()], pos[other.index()]);
                    if a < b {
                        adj[a].push(b);
                        adj[b].push(a);
                        shared_middles += 1;
                    }
                }
            }
        }
    }
    // Exactly s−1 shared middles, each linking a distinct pair.
    if shared_middles != s - 1 {
        return None;
    }
    for list in adj.iter_mut() {
        list.sort_unstable();
        let before = list.len();
        list.dedup();
        if list.len() != before {
            return None; // two middles shared by the same pair
        }
        if list.len() > 2 {
            return None;
        }
    }
    let endpoints: Vec<usize> = (0..s).filter(|&i| adj[i].len() == 1).collect();
    if s == 1 {
        return Some(vec![side[0]]);
    }
    if endpoints.len() != 2 {
        return None;
    }
    // Walk from the endpoint whose node index is smaller (determinism).
    let start = if side[endpoints[0]] <= side[endpoints[1]] {
        endpoints[0]
    } else {
        endpoints[1]
    };
    let mut order = Vec::with_capacity(s);
    let mut prev = usize::MAX;
    let mut cur = start;
    for _ in 0..s {
        order.push(side[cur]);
        let next = adj[cur].iter().copied().find(|&w| w != prev);
        match next {
            Some(w) => {
                prev = cur;
                cur = w;
            }
            None => break,
        }
    }
    if order.len() == s {
        Some(order)
    } else {
        None // sharing graph was disconnected (path + cycle pieces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{clique_dag, cycle_dag, m_dag, n_dag, w_dag};
    use crate::optimal::is_source_order_ic_optimal;

    /// Relabel a dag's nodes by a rotation permutation to make sure the
    /// recognizers do not depend on construction order.
    fn rotate(dag: &Dag, by: usize) -> Dag {
        let n = dag.num_nodes();
        let perm: Vec<NodeId> = (0..n).map(|i| NodeId(((i + by) % n) as u32)).collect();
        dag.induced_subgraph(&perm).0
    }

    fn assert_recognized(dag: &Dag, expect: Family) {
        let (fam, order) =
            recognize(dag).unwrap_or_else(|| panic!("{} not recognized", expect.name()));
        assert_eq!(fam, expect);
        assert_eq!(
            is_source_order_ic_optimal(dag, &order),
            Some(true),
            "recognized order for {} must be IC-optimal",
            expect.name()
        );
    }

    #[test]
    fn recognizes_w_dags() {
        for (s, d) in [(1, 2), (2, 2), (3, 2), (4, 3), (2, 5)] {
            let (dag, _) = w_dag(s, d);
            // (1,d)-W is also a complete bipartite K_{1,d}; the clique
            // recognizer fires first there, which is equally optimal.
            if s == 1 {
                let (fam, order) = recognize(&dag).unwrap();
                assert!(matches!(fam, Family::Clique { s: 1, .. }));
                assert_eq!(is_source_order_ic_optimal(&dag, &order), Some(true));
            } else {
                assert_recognized(&dag, Family::W { s, d });
                assert_recognized(&rotate(&dag, 3), Family::W { s, d });
            }
        }
    }

    #[test]
    fn recognizes_m_dags() {
        for (s, d) in [(2, 5), (3, 2), (4, 3)] {
            let (dag, _) = m_dag(s, d);
            assert_recognized(&dag, Family::M { s, d });
            assert_recognized(&rotate(&dag, 2), Family::M { s, d });
        }
        // (1,d)-M is the complete bipartite K_{d,1}; the clique recognizer
        // fires first, which is equally IC-optimal.
        let (dag, _) = m_dag(1, 5);
        let (fam, order) = recognize(&dag).unwrap();
        assert_eq!(fam, Family::Clique { s: 5, t: 1 });
        assert_eq!(is_source_order_ic_optimal(&dag, &order), Some(true));
    }

    #[test]
    fn recognizes_n_dags() {
        for d in [2, 3, 5, 8] {
            let (dag, _) = n_dag(d);
            assert_recognized(&dag, Family::N { d });
            assert_recognized(&rotate(&dag, 1), Family::N { d });
        }
    }

    #[test]
    fn recognizes_cycles() {
        for d in [3, 4, 6] {
            let (dag, _) = cycle_dag(d);
            assert_recognized(&dag, Family::Cycle { d });
            assert_recognized(&rotate(&dag, 5), Family::Cycle { d });
        }
    }

    #[test]
    fn recognizes_cliques() {
        for (s, t) in [(1, 1), (3, 3), (2, 4), (4, 2)] {
            let (dag, _) = clique_dag(s, t);
            assert_recognized(&dag, Family::Clique { s, t });
        }
    }

    #[test]
    fn rejects_non_bipartite() {
        let chain = Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(recognize(&chain).is_none());
    }

    #[test]
    fn rejects_disconnected() {
        let two_arcs = Dag::from_arcs(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(recognize(&two_arcs).is_none());
    }

    #[test]
    fn rejects_irregular_bipartite() {
        // Bipartite but no family: source degrees 2 and 3 with a sink of
        // in-degree 3.
        let d = Dag::from_arcs(6, &[(0, 3), (0, 4), (1, 3), (1, 4), (1, 5), (2, 3)]).unwrap();
        assert!(recognize(&d).is_none());
    }

    #[test]
    fn rejects_single_node() {
        let d = Dag::from_arcs(1, &[]).unwrap();
        assert!(recognize(&d).is_none());
    }

    #[test]
    fn fig2_catalog_roundtrips_through_recognition() {
        for fam in Family::fig2_catalog() {
            let (dag, _) = fam.instantiate();
            let (got, order) = recognize(&dag).expect("catalog instance recognized");
            // (1,d)-W aliases K_{1,d} and (1,d)-M aliases K_{d,1}; all
            // others round-trip exactly.
            if !matches!(fam, Family::W { s: 1, .. } | Family::M { s: 1, .. }) {
                assert_eq!(got, fam, "family mismatch for {}", fam.name());
            }
            assert_eq!(is_source_order_ic_optimal(&dag, &order), Some(true));
        }
    }
}
