//! The FIFO baseline — the order DAGMan/Condor uses today (§3.4, §4.1).
//!
//! "A FIFO scheduling algorithm maintains a FIFO queue of eligible jobs …
//! a newly eligible job is put at the end of the queue." As an *oblivious*
//! total order this is: execute jobs in the order in which they become
//! eligible, where the initially eligible sources enter the queue in input
//! (node-index) order and children enter when their last parent executes,
//! in index order among simultaneously enabled jobs.

use crate::eligibility::EligibilityTracker;
use crate::schedule::Schedule;
use prio_graph::Dag;
use std::collections::VecDeque;

/// Builds the FIFO schedule of `dag`.
pub fn fifo_schedule(dag: &Dag) -> Schedule {
    let mut tracker = EligibilityTracker::new(dag);
    let mut queue: VecDeque<_> = dag.sources().collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while let Some(u) = queue.pop_front() {
        let newly = tracker.execute(u);
        order.push(u);
        queue.extend(newly);
    }
    Schedule::new(dag, order).expect("FIFO order is a linear extension")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::NodeId;

    #[test]
    fn fig3_fifo_is_input_order_breadth_first() {
        let dag = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let fifo = fifo_schedule(&dag);
        let order: Vec<u32> = fifo.order().iter().map(|u| u.0).collect();
        // a and c eligible initially (a first by input order); executing a
        // enables b, executing c enables d and e.
        assert_eq!(order, vec![0, 2, 1, 3, 4]);
    }

    #[test]
    fn fifo_is_breadth_first_on_chains_of_forks() {
        let dag = Dag::from_arcs(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let fifo = fifo_schedule(&dag);
        let order: Vec<u32> = fifo.order().iter().map(|u| u.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn fifo_defers_joins_until_enabled() {
        // 0 and 1 sources; 2 = join(0,1); 3 = child of 0.
        let dag = Dag::from_arcs(4, &[(0, 2), (1, 2), (0, 3)]).unwrap();
        let fifo = fifo_schedule(&dag);
        let order: Vec<u32> = fifo.order().iter().map(|u| u.0).collect();
        // After 0: nothing enabled except 3 (2 still waits for 1); after 1:
        // 2 becomes eligible and queues after 3.
        assert_eq!(order, vec![0, 1, 3, 2]);
    }

    #[test]
    fn fifo_covers_every_job_exactly_once() {
        let dag = Dag::from_arcs(
            9,
            &[
                (0, 3),
                (1, 3),
                (1, 4),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (6, 8),
            ],
        )
        .unwrap();
        let fifo = fifo_schedule(&dag);
        assert!(fifo.is_valid_for(&dag));
        let mut seen = [false; 9];
        for &u in fifo.order() {
            assert!(!seen[u.index()]);
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let _ = NodeId(0);
    }

    #[test]
    fn fifo_of_empty_dag() {
        let dag = prio_graph::DagBuilder::new().build().unwrap();
        assert!(fifo_schedule(&dag).is_empty());
    }
}
