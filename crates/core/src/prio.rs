//! The top-level PRIO scheduler — the heuristic of §3.1, end to end.
//!
//! ```text
//! G  --shortcut removal-->  G'  --decompose-->  components + superdag
//!    --recurse-->  per-component schedules + eligibility profiles
//!    --combine-->  greedy component order
//!    --emit-->     non-sinks component by component, then all sinks of G
//! ```
//!
//! The result is a total order of all jobs (a linear extension of `G`)
//! whose Condor-style priorities the `prio` tool writes back into the
//! DAGMan input file.

use crate::combine::{combine, CombineEngine};
use crate::component::{Component, ScheduleSource};
use crate::component_schedule::schedule_part;
use crate::decompose::{decompose, DecomposeOptions, Decomposition};
use crate::schedule::Schedule;
use prio_graph::reduction::{remove_arcs, shortcut_arcs};
use prio_graph::{Dag, NodeId};
use std::collections::BTreeMap;

/// Options for the PRIO pipeline. The defaults reproduce the paper's tool;
/// the alternative settings exist for the §3.5 engineering ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrioOptions {
    /// Decomposition options (bipartite fast path on by default).
    pub decompose: DecomposeOptions,
    /// Combine engine (class-cached by default).
    pub engine: CombineEngine,
    /// Extension beyond the paper: for unrecognized bipartite blocks with
    /// at most this many sources, search exhaustively for an IC-optimal
    /// order before falling back to the out-degree heuristic. 0 (the
    /// default) reproduces the paper's tool exactly.
    pub optimal_search_limit: usize,
}

/// Statistics collected along the pipeline (reported by the CLI and used by
/// the overhead experiments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrioStats {
    /// Number of shortcut arcs removed in Step 1.
    pub shortcuts_removed: usize,
    /// Number of components produced by the decomposition.
    pub num_components: usize,
    /// Components that are bipartite dags.
    pub num_bipartite: usize,
    /// Components scheduled from the catalog, by family name.
    pub recognized: BTreeMap<String, usize>,
    /// Components scheduled by the exhaustive IC-optimal-order search
    /// (only when [`PrioOptions::optimal_search_limit`] is nonzero).
    pub searched: usize,
    /// Components scheduled by the out-degree fallback.
    pub heuristic_scheduled: usize,
    /// Single-job components (nothing to schedule before the sinks).
    pub trivial: usize,
    /// Detach iterations that needed the general minimal-`C(s)` search.
    pub general_search_iterations: usize,
}

/// The output of the PRIO pipeline.
#[derive(Debug, Clone)]
pub struct PrioResult {
    /// The PRIO schedule — a linear extension of the input dag.
    pub schedule: Schedule,
    /// The components, in detach order, with their local schedules and
    /// eligibility profiles.
    pub components: Vec<Component>,
    /// The superdag over the components.
    pub superdag: Dag,
    /// The greedy execution order of component indices.
    pub component_order: Vec<usize>,
    /// Pipeline statistics.
    pub stats: PrioStats,
}

/// The PRIO scheduler with configurable engineering options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prioritizer {
    opts: PrioOptions,
}

impl Prioritizer {
    /// A prioritizer with the default (fully engineered) options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A prioritizer with explicit options.
    pub fn with_options(opts: PrioOptions) -> Self {
        Prioritizer { opts }
    }

    /// Runs the full pipeline on `dag`.
    pub fn prioritize(&self, dag: &Dag) -> PrioResult {
        // Step 1: shortcut removal. Node ids are preserved, so schedules on
        // the reduced dag are schedules on the original.
        let shortcuts = shortcut_arcs(dag);
        prio_obs::counter("graph.shortcut_arcs_removed").add(shortcuts.len() as u64);
        let reduced = if shortcuts.is_empty() {
            dag.clone()
        } else {
            remove_arcs(dag, &shortcuts)
        };

        // Step 2: decomposition.
        let Decomposition {
            parts,
            superdag,
            comp_removed: _,
            general_search_iterations,
        } = decompose(&reduced, self.opts.decompose);

        // Step 3: per-component schedules and profiles.
        let mut stats = PrioStats {
            shortcuts_removed: shortcuts.len(),
            num_components: parts.len(),
            general_search_iterations,
            ..PrioStats::default()
        };
        let mut components: Vec<Component> = Vec::with_capacity(parts.len());
        let schedule_span = prio_obs::span("schedule");
        for (i, part) in parts.into_iter().enumerate() {
            if part.bipartite {
                stats.num_bipartite += 1;
            }
            let (order, source, profile) =
                schedule_part(&reduced, &part, self.opts.optimal_search_limit);
            match &source {
                ScheduleSource::Catalog(f) => {
                    *stats.recognized.entry(f.name()).or_insert(0) += 1;
                }
                ScheduleSource::Searched => stats.searched += 1,
                ScheduleSource::OutDegreeHeuristic => stats.heuristic_scheduled += 1,
                ScheduleSource::Trivial => stats.trivial += 1,
            }
            components.push(part.into_component(i, order, source, profile));
        }
        drop(schedule_span);

        // Steps 4–6: greedy combine over the superdag.
        let profiles: Vec<Vec<usize>> = components.iter().map(|c| c.profile.clone()).collect();
        let component_order = combine(&superdag, &profiles, self.opts.engine);

        // Emit: non-sinks per component in greedy order, then every sink of
        // G in index order (the paper executes sinks "in arbitrary order";
        // index order matches the Fig. 3 output and is deterministic).
        let assign_span = prio_obs::span("assign");
        let mut order: Vec<NodeId> = Vec::with_capacity(dag.num_nodes());
        for &ci in &component_order {
            order.extend_from_slice(&components[ci].nonsink_schedule);
        }
        order.extend(dag.sinks());
        let schedule =
            Schedule::new(dag, order).expect("PRIO pipeline must produce a linear extension");
        drop(assign_span);

        PrioResult {
            schedule,
            components,
            superdag,
            component_order,
            stats,
        }
    }
}

/// Convenience: run the PRIO pipeline with default options.
pub fn prioritize(dag: &Dag) -> PrioResult {
    Prioritizer::new().prioritize(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eligibility::eligibility_profile;
    use crate::fifo::fifo_schedule;
    use crate::optimal::{is_ic_optimal, DEFAULT_STATE_LIMIT};

    #[test]
    fn fig3_schedule_matches_paper() {
        let dag = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let res = prioritize(&dag);
        let order: Vec<u32> = res.schedule.order().iter().map(|u| u.0).collect();
        assert_eq!(order, vec![2, 0, 1, 3, 4], "PRIO = c, a, b, d, e");
        // Priorities as in Fig. 3: c gets 5.
        let prio = res.schedule.priorities();
        assert_eq!(prio[2], 5);
        assert_eq!(res.stats.num_components, 2);
        assert!(res.stats.shortcuts_removed == 0);
    }

    #[test]
    fn fig3_schedule_is_ic_optimal() {
        let dag = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let res = prioritize(&dag);
        assert_eq!(
            is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true)
        );
    }

    #[test]
    fn catalog_families_schedule_ic_optimally_end_to_end() {
        for fam in crate::families::Family::fig2_catalog() {
            let (dag, _) = fam.instantiate();
            let res = prioritize(&dag);
            assert_eq!(
                is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT),
                Some(true),
                "PRIO on {} must be IC-optimal",
                fam.name()
            );
        }
    }

    #[test]
    fn series_composition_of_blocks_is_ic_optimal() {
        // Fork then join through shared middles: 0 -> {1,2}, {1,2} -> 3,
        // i.e. the diamond — decomposes into two blocks in series.
        let dag = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let res = prioritize(&dag);
        assert_eq!(
            is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true)
        );
    }

    #[test]
    fn shortcuts_are_removed_and_do_not_change_validity() {
        // Diamond plus the shortcut 0 -> 3.
        let dag = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]).unwrap();
        let res = prioritize(&dag);
        assert_eq!(res.stats.shortcuts_removed, 1);
        assert!(res.schedule.is_valid_for(&dag));
    }

    #[test]
    fn entangled_dag_still_gets_a_valid_schedule() {
        let dag = Dag::from_arcs(6, &[(0, 4), (2, 4), (1, 2), (1, 5), (3, 5), (0, 3)]).unwrap();
        let res = prioritize(&dag);
        assert!(res.schedule.is_valid_for(&dag));
        assert_eq!(res.stats.general_search_iterations, 1);
        assert_eq!(res.stats.heuristic_scheduled, 1);
    }

    #[test]
    fn both_engines_and_paths_agree() {
        let dag = Dag::from_arcs(
            7,
            &[
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap();
        let default = prioritize(&dag);
        let naive = Prioritizer::with_options(PrioOptions {
            decompose: DecomposeOptions { fast_path: false },
            engine: CombineEngine::Naive,
            optimal_search_limit: 0,
        })
        .prioritize(&dag);
        assert_eq!(default.schedule, naive.schedule);
    }

    #[test]
    fn prio_never_below_fifo_on_block_compositions() {
        let dag = Dag::from_arcs(
            9,
            &[
                (0, 3),
                (0, 4),
                (1, 4),
                (1, 5),
                (2, 5),
                (3, 6),
                (4, 6),
                (5, 7),
                (5, 8),
            ],
        )
        .unwrap();
        let prio = prioritize(&dag).schedule;
        let fifo = fifo_schedule(&dag);
        let ep = eligibility_profile(&dag, prio.order());
        let ef = eligibility_profile(&dag, fifo.order());
        let total_p: usize = ep.iter().sum();
        let total_f: usize = ef.iter().sum();
        assert!(
            total_p >= total_f,
            "PRIO cumulative eligibility {total_p} below FIFO {total_f}"
        );
    }

    #[test]
    fn stats_count_recognized_families() {
        let (dag, _) = crate::families::w_dag(3, 2);
        let res = prioritize(&dag);
        assert_eq!(res.stats.recognized.get("(3,2)-W"), Some(&1));
        assert_eq!(res.stats.num_bipartite, 1);
    }

    #[test]
    fn optimal_search_extension_beats_the_out_degree_heuristic() {
        // An irregular bipartite block where out-degree order is NOT
        // IC-optimal: 0->5, 1->{4,5}, 2->4, 3->5. The heuristic starts
        // with job 1 (degree 2) covering nothing; the searched order
        // starts {1,2} covering sink 4.
        let dag = Dag::from_arcs(6, &[(0, 5), (1, 4), (1, 5), (2, 4), (3, 5)]).unwrap();
        let paper = prioritize(&dag);
        assert_eq!(paper.stats.heuristic_scheduled, 1);
        assert_eq!(
            is_ic_optimal(&dag, paper.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(false),
            "the paper's heuristic is suboptimal here"
        );
        let searched = Prioritizer::with_options(PrioOptions {
            optimal_search_limit: 16,
            ..PrioOptions::default()
        })
        .prioritize(&dag);
        assert_eq!(searched.stats.searched, 1);
        assert_eq!(searched.stats.heuristic_scheduled, 0);
        assert_eq!(
            is_ic_optimal(&dag, searched.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true),
            "the search extension restores IC-optimality"
        );
    }

    #[test]
    fn empty_and_singleton_dags() {
        let empty = prio_graph::DagBuilder::new().build().unwrap();
        let res = prioritize(&empty);
        assert!(res.schedule.is_empty());
        let single = Dag::from_arcs(1, &[]).unwrap();
        let res = prioritize(&single);
        assert_eq!(res.schedule.order(), &[NodeId(0)]);
        assert_eq!(res.stats.trivial, 1);
    }
}
