//! The top-level PRIO scheduler — the heuristic of §3.1, end to end.
//!
//! ```text
//! G  --shortcut removal-->  G'  --decompose-->  components + superdag
//!    --recurse-->  per-component schedules + eligibility profiles
//!    --combine-->  greedy component order
//!    --emit-->     non-sinks component by component, then all sinks of G
//! ```
//!
//! The result is a total order of all jobs (a linear extension of `G`)
//! whose Condor-style priorities the `prio` tool writes back into the
//! DAGMan input file.

use crate::combine::{combine, CombineEngine};
use crate::component::{Component, ScheduleSource};
use crate::component_schedule::schedule_part;
use crate::context::PrioContext;
use crate::decompose::{decompose_in, DecomposeOptions, Decomposition, Part};
use crate::error::{PrioError, Stage};
use crate::schedule::Schedule;
use prio_graph::reduction::{remove_arcs, shortcut_arcs_par_into};
use prio_graph::topo::{linear_extension_violation, ExtensionViolation};
use prio_graph::{Dag, NodeId};
use prio_ir::{Priorities, Workflow};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Options for the PRIO pipeline. The defaults reproduce the paper's tool;
/// the alternative settings exist for the §3.5 engineering ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrioOptions {
    /// Decomposition options (bipartite fast path on by default).
    pub decompose: DecomposeOptions,
    /// Combine engine (class-cached by default).
    pub engine: CombineEngine,
    /// Extension beyond the paper: for unrecognized bipartite blocks with
    /// at most this many sources, search exhaustively for an IC-optimal
    /// order before falling back to the out-degree heuristic. 0 (the
    /// default) reproduces the paper's tool exactly.
    pub optimal_search_limit: usize,
    /// Worker threads for the per-component scheduling stage. `0` (the
    /// default) and `1` run serially, as the paper's tool does; `n > 1`
    /// schedules independent components across up to `n` scoped threads.
    /// Results are placed by component index, so every thread count
    /// produces bit-identical schedules and statistics.
    ///
    /// Requesting threads is adaptive, not unconditional: small dags fall
    /// back to the serial path below [`PARALLEL_WORK_THRESHOLD`].
    pub threads: usize,
}

/// Minimum Step 3 work (Σ over components of local nodes + arcs) before a
/// `threads > 1` request actually spawns the scoped thread pool.
///
/// Measured on Montage-like dags from ~170 to ~31k jobs (best of 9, 4
/// threads vs serial): the pool's spawn/channel overhead makes parallel
/// scheduling 1.2–2.3× *slower* below ~14k work, break-even lands between
/// ~14k and ~24k (the paper-scale 7,881-job Montage, work ≈ 23.6k, is the
/// first instance that no longer loses), and gains stay modest beyond.
/// 20,000 puts everything clearly below break-even on the serial path.
pub const PARALLEL_WORK_THRESHOLD: usize = 20_000;

/// Statistics collected along the pipeline (reported by the CLI and used by
/// the overhead experiments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrioStats {
    /// Number of shortcut arcs removed in Step 1.
    pub shortcuts_removed: usize,
    /// Number of components produced by the decomposition.
    pub num_components: usize,
    /// Components that are bipartite dags.
    pub num_bipartite: usize,
    /// Components scheduled from the catalog, by family name.
    pub recognized: BTreeMap<String, usize>,
    /// Components scheduled by the exhaustive IC-optimal-order search
    /// (only when [`PrioOptions::optimal_search_limit`] is nonzero).
    pub searched: usize,
    /// Components scheduled by the out-degree fallback.
    pub heuristic_scheduled: usize,
    /// Single-job components (nothing to schedule before the sinks).
    pub trivial: usize,
    /// Detach iterations that needed the general minimal-`C(s)` search.
    pub general_search_iterations: usize,
}

/// The output of the PRIO pipeline.
#[derive(Debug, Clone)]
pub struct PrioResult {
    /// The PRIO schedule — a linear extension of the input dag.
    pub schedule: Schedule,
    /// The components, in detach order, with their local schedules and
    /// eligibility profiles.
    pub components: Vec<Component>,
    /// The superdag over the components.
    pub superdag: Dag,
    /// The greedy execution order of component indices.
    pub component_order: Vec<usize>,
    /// Pipeline statistics.
    pub stats: PrioStats,
}

impl PrioResult {
    /// The schedule as IR priorities (Condor convention: the job executed
    /// first gets priority `n`, the last gets 1), ready for any
    /// frontend's `export`.
    pub fn priorities(&self) -> Priorities {
        Priorities::from_order(self.schedule.order(), self.schedule.len())
    }
}

/// The PRIO scheduler with configurable engineering options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prioritizer {
    opts: PrioOptions,
}

impl Prioritizer {
    /// A prioritizer with the default (fully engineered) options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A prioritizer with explicit options.
    pub fn with_options(opts: PrioOptions) -> Self {
        Prioritizer { opts }
    }

    /// Runs the full pipeline on `dag` with fresh scratch state.
    pub fn prioritize(&self, dag: &Dag) -> Result<PrioResult, PrioError> {
        self.prioritize_in(dag, &mut PrioContext::new())
    }

    /// Runs the full pipeline on `dag`, reusing the scratch buffers in
    /// `ctx`. Equivalent to [`Prioritizer::prioritize`] — same result for
    /// any context state — but amortizes working-memory allocations across
    /// calls, which matters when prioritizing many dags in a row.
    pub fn prioritize_in(&self, dag: &Dag, ctx: &mut PrioContext) -> Result<PrioResult, PrioError> {
        // Step 1: shortcut removal. Node ids are preserved, so schedules on
        // the reduced dag are schedules on the original. When there is
        // nothing to remove, the input dag is used as-is (no clone).
        // Sharded across threads only when the dag clears the adaptive
        // threshold; either way the result is bit-identical to serial.
        let reduce_threads = if dag.num_nodes() + dag.num_arcs() >= PARALLEL_WORK_THRESHOLD {
            self.opts.threads
        } else {
            0
        };
        shortcut_arcs_par_into(dag, &mut ctx.graph, reduce_threads, &mut ctx.shortcuts);
        prio_obs::counter("graph.reduce.shortcut_arcs_removed").add(ctx.shortcuts.len() as u64);
        let reduced_storage;
        let reduced: &Dag = if ctx.shortcuts.is_empty() {
            dag
        } else {
            reduced_storage = remove_arcs(dag, &ctx.shortcuts);
            &reduced_storage
        };

        // Step 2: decomposition.
        let Decomposition {
            parts,
            superdag,
            comp_removed: _,
            general_search_iterations,
        } = decompose_in(
            reduced,
            self.opts.decompose,
            self.opts.threads,
            &mut ctx.arena,
        );

        // Step 3: per-component schedules and profiles (serial or across a
        // scoped thread pool — bit-identical either way).
        let mut stats = PrioStats {
            shortcuts_removed: ctx.shortcuts.len(),
            num_components: parts.len(),
            general_search_iterations,
            ..PrioStats::default()
        };
        let components = self.schedule_components(reduced, parts, &mut stats);

        // Steps 4–6: greedy combine over the superdag, borrowing the
        // components' profiles.
        let profiles: Vec<&[usize]> = components.iter().map(|c| c.profile.as_slice()).collect();
        let component_order = combine(&superdag, &profiles, self.opts.engine);

        // Emit: non-sinks per component in greedy order, then every sink of
        // G in index order (the paper executes sinks "in arbitrary order";
        // index order matches the Fig. 3 output and is deterministic).
        let emit_span = prio_obs::span(prio_obs::stage::EMIT);
        let mut order: Vec<NodeId> = Vec::with_capacity(dag.num_nodes());
        for &ci in &component_order {
            order.extend_from_slice(&components[ci].nonsink_schedule);
        }
        order.extend(dag.sinks());
        let schedule = emit_schedule(dag, order)?;
        drop(emit_span);

        Ok(PrioResult {
            schedule,
            components,
            superdag,
            component_order,
            stats,
        })
    }

    /// Prioritizes a batch of dags, reusing one scratch context across the
    /// whole batch. Returns one result per input dag, in order; a failure
    /// on one dag does not affect the others.
    pub fn prioritize_many<'a, I>(&self, dags: I) -> Vec<Result<PrioResult, PrioError>>
    where
        I: IntoIterator<Item = &'a Dag>,
    {
        let mut ctx = PrioContext::new();
        dags.into_iter()
            .map(|dag| self.prioritize_in(dag, &mut ctx))
            .collect()
    }

    /// Runs the full pipeline on a workflow IR (any frontend's import).
    /// Identical to [`Prioritizer::prioritize`] on the workflow's dag.
    pub fn prioritize_workflow(&self, workflow: &Workflow) -> Result<PrioResult, PrioError> {
        self.prioritize(workflow.dag())
    }

    /// [`Prioritizer::prioritize_workflow`] with a reused scratch context.
    pub fn prioritize_workflow_in(
        &self,
        workflow: &Workflow,
        ctx: &mut PrioContext,
    ) -> Result<PrioResult, PrioError> {
        self.prioritize_in(workflow.dag(), ctx)
    }

    /// Prioritizes a batch of workflows with one shared scratch context
    /// (the IR-level [`Prioritizer::prioritize_many`]).
    pub fn prioritize_workflows<'a, I>(&self, workflows: I) -> Vec<Result<PrioResult, PrioError>>
    where
        I: IntoIterator<Item = &'a Workflow>,
    {
        self.prioritize_many(workflows.into_iter().map(Workflow::dag))
    }

    /// Step 3: schedules every component of `reduced` and tallies the
    /// per-source statistics. With `opts.threads > 1` the independent
    /// components are scheduled across scoped worker threads; results are
    /// placed by component index, so the output is identical to the serial
    /// path for every thread count.
    fn schedule_components(
        &self,
        reduced: &Dag,
        parts: Vec<Part>,
        stats: &mut PrioStats,
    ) -> Vec<Component> {
        let _span = prio_obs::span(prio_obs::stage::SCHEDULE);
        let limit = self.opts.optimal_search_limit;
        let mut workers = self.opts.threads.min(parts.len());
        if workers > 1 {
            // Adaptive fallback: below the measured crossover the scoped
            // thread pool costs more than it saves, so run the serial path
            // (which is bit-identical) and record the decision.
            let work: usize = parts
                .iter()
                .map(|p| p.local.num_nodes() + p.local.num_arcs())
                .sum();
            if work < PARALLEL_WORK_THRESHOLD {
                workers = 1;
                prio_obs::counter("core.schedule.serial_fallback_dags").add(1);
                prio_obs::counter("core.schedule.serial_fallback_components")
                    .add(parts.len() as u64);
            } else {
                prio_obs::counter("core.schedule.parallel_dags").add(1);
                prio_obs::counter("core.schedule.parallel_components").add(parts.len() as u64);
            }
        }
        let results: Vec<ScheduledPart> = if workers > 1 {
            schedule_parts_parallel(reduced, &parts, limit, workers)
        } else {
            parts
                .iter()
                .map(|part| schedule_part(reduced, part, limit))
                .collect()
        };

        let mut components: Vec<Component> = Vec::with_capacity(parts.len());
        for (i, (part, (order, source, profile))) in parts.into_iter().zip(results).enumerate() {
            if part.bipartite {
                stats.num_bipartite += 1;
            }
            match &source {
                ScheduleSource::Catalog(f) => {
                    *stats.recognized.entry(f.name()).or_insert(0) += 1;
                }
                ScheduleSource::Searched => stats.searched += 1,
                ScheduleSource::OutDegreeHeuristic => stats.heuristic_scheduled += 1,
                ScheduleSource::Trivial => stats.trivial += 1,
            }
            components.push(part.into_component(i, order, source, profile));
        }
        components
    }
}

/// One scheduled component before it is wrapped into a [`Component`]:
/// the order over original node ids, how it was obtained, and its
/// eligibility profile.
type ScheduledPart = (Vec<NodeId>, ScheduleSource, Vec<usize>);

/// Schedules `parts` across `workers` scoped threads pulling component
/// indices from a shared channel. Each result is placed back at its
/// component's index, so the returned vector is independent of thread
/// count, scheduling order and channel timing.
fn schedule_parts_parallel(
    reduced: &Dag,
    parts: &[Part],
    limit: usize,
    workers: usize,
) -> Vec<ScheduledPart> {
    let n = parts.len();
    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..n {
        let _ = tx.send(i);
    }
    drop(tx);

    let collected: Mutex<Vec<(usize, ScheduledPart)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let collected = &collected;
            scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(i) = rx.recv() {
                    local.push((i, schedule_part(reduced, &parts[i], limit)));
                }
                let mut sink = collected
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner());
                sink.extend(local);
            });
        }
    });

    // Every index was sent exactly once and every worker drained its
    // receipts into `collected`, so each slot is written exactly once.
    // Slots are pre-filled with trivial placeholders rather than unwrapped
    // options; a (impossible) miss would surface as an emit-stage
    // invariant error, not a panic.
    let mut results: Vec<ScheduledPart> =
        std::iter::repeat_with(|| (Vec::new(), ScheduleSource::Trivial, Vec::new()))
            .take(n)
            .collect();
    for (i, result) in collected
        .into_inner()
        .unwrap_or_else(|poison| poison.into_inner())
    {
        results[i] = result;
    }
    results
}

/// Validates the emitted global order and wraps it into a [`Schedule`].
/// A violation is a pipeline bug; it surfaces as
/// [`PrioError::InternalInvariant`] carrying the offending arc instead of
/// aborting the process.
fn emit_schedule(dag: &Dag, order: Vec<NodeId>) -> Result<Schedule, PrioError> {
    match linear_extension_violation(dag, &order) {
        None => Ok(Schedule::from_order_unchecked(order)),
        Some(violation) => {
            let arc = match violation {
                ExtensionViolation::ArcOutOfOrder { parent, child } => Some((parent, child)),
                _ => None,
            };
            Err(PrioError::InternalInvariant {
                stage: Stage::Emit,
                detail: format!("emitted order is not a linear extension: {violation}"),
                arc,
            })
        }
    }
}

/// Convenience: run the PRIO pipeline with default options.
pub fn prioritize(dag: &Dag) -> Result<PrioResult, PrioError> {
    Prioritizer::new().prioritize(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eligibility::eligibility_profile;
    use crate::fifo::fifo_schedule;
    use crate::optimal::{is_ic_optimal, DEFAULT_STATE_LIMIT};

    #[test]
    fn fig3_schedule_matches_paper() {
        let dag = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let res = prioritize(&dag).unwrap();
        let order: Vec<u32> = res.schedule.order().iter().map(|u| u.0).collect();
        assert_eq!(order, vec![2, 0, 1, 3, 4], "PRIO = c, a, b, d, e");
        // Priorities as in Fig. 3: c gets 5.
        let prio = res.schedule.priorities();
        assert_eq!(prio[2], 5);
        assert_eq!(res.stats.num_components, 2);
        assert!(res.stats.shortcuts_removed == 0);
    }

    #[test]
    fn fig3_schedule_is_ic_optimal() {
        let dag = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let res = prioritize(&dag).unwrap();
        assert_eq!(
            is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true)
        );
    }

    #[test]
    fn catalog_families_schedule_ic_optimally_end_to_end() {
        for fam in crate::families::Family::fig2_catalog() {
            let (dag, _) = fam.instantiate();
            let res = prioritize(&dag).unwrap();
            assert_eq!(
                is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT),
                Some(true),
                "PRIO on {} must be IC-optimal",
                fam.name()
            );
        }
    }

    #[test]
    fn series_composition_of_blocks_is_ic_optimal() {
        // Fork then join through shared middles: 0 -> {1,2}, {1,2} -> 3,
        // i.e. the diamond — decomposes into two blocks in series.
        let dag = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let res = prioritize(&dag).unwrap();
        assert_eq!(
            is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true)
        );
    }

    #[test]
    fn shortcuts_are_removed_and_do_not_change_validity() {
        // Diamond plus the shortcut 0 -> 3.
        let dag = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]).unwrap();
        let res = prioritize(&dag).unwrap();
        assert_eq!(res.stats.shortcuts_removed, 1);
        assert!(res.schedule.is_valid_for(&dag));
    }

    #[test]
    fn entangled_dag_still_gets_a_valid_schedule() {
        let dag = Dag::from_arcs(6, &[(0, 4), (2, 4), (1, 2), (1, 5), (3, 5), (0, 3)]).unwrap();
        let res = prioritize(&dag).unwrap();
        assert!(res.schedule.is_valid_for(&dag));
        assert_eq!(res.stats.general_search_iterations, 1);
        assert_eq!(res.stats.heuristic_scheduled, 1);
    }

    #[test]
    fn both_engines_and_paths_agree() {
        let dag = Dag::from_arcs(
            7,
            &[
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap();
        let default = prioritize(&dag).unwrap();
        let naive = Prioritizer::with_options(PrioOptions {
            decompose: DecomposeOptions { fast_path: false },
            engine: CombineEngine::Naive,
            optimal_search_limit: 0,
            threads: 0,
        })
        .prioritize(&dag)
        .unwrap();
        assert_eq!(default.schedule, naive.schedule);
    }

    #[test]
    fn prio_never_below_fifo_on_block_compositions() {
        let dag = Dag::from_arcs(
            9,
            &[
                (0, 3),
                (0, 4),
                (1, 4),
                (1, 5),
                (2, 5),
                (3, 6),
                (4, 6),
                (5, 7),
                (5, 8),
            ],
        )
        .unwrap();
        let prio = prioritize(&dag).unwrap().schedule;
        let fifo = fifo_schedule(&dag);
        let ep = eligibility_profile(&dag, prio.order());
        let ef = eligibility_profile(&dag, fifo.order());
        let total_p: usize = ep.iter().sum();
        let total_f: usize = ef.iter().sum();
        assert!(
            total_p >= total_f,
            "PRIO cumulative eligibility {total_p} below FIFO {total_f}"
        );
    }

    #[test]
    fn stats_count_recognized_families() {
        let (dag, _) = crate::families::w_dag(3, 2);
        let res = prioritize(&dag).unwrap();
        assert_eq!(res.stats.recognized.get("(3,2)-W"), Some(&1));
        assert_eq!(res.stats.num_bipartite, 1);
    }

    #[test]
    fn optimal_search_extension_beats_the_out_degree_heuristic() {
        // An irregular bipartite block where out-degree order is NOT
        // IC-optimal: 0->5, 1->{4,5}, 2->4, 3->5. The heuristic starts
        // with job 1 (degree 2) covering nothing; the searched order
        // starts {1,2} covering sink 4.
        let dag = Dag::from_arcs(6, &[(0, 5), (1, 4), (1, 5), (2, 4), (3, 5)]).unwrap();
        let paper = prioritize(&dag).unwrap();
        assert_eq!(paper.stats.heuristic_scheduled, 1);
        assert_eq!(
            is_ic_optimal(&dag, paper.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(false),
            "the paper's heuristic is suboptimal here"
        );
        let searched = Prioritizer::with_options(PrioOptions {
            optimal_search_limit: 16,
            ..PrioOptions::default()
        })
        .prioritize(&dag)
        .unwrap();
        assert_eq!(searched.stats.searched, 1);
        assert_eq!(searched.stats.heuristic_scheduled, 0);
        assert_eq!(
            is_ic_optimal(&dag, searched.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true),
            "the search extension restores IC-optimality"
        );
    }

    #[test]
    fn empty_and_singleton_dags() {
        let empty = prio_graph::DagBuilder::new().build().unwrap();
        let res = prioritize(&empty).unwrap();
        assert!(res.schedule.is_empty());
        let single = Dag::from_arcs(1, &[]).unwrap();
        let res = prioritize(&single).unwrap();
        assert_eq!(res.schedule.order(), &[NodeId(0)]);
        assert_eq!(res.stats.trivial, 1);
    }

    fn sample_dags() -> Vec<Dag> {
        vec![
            Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap(),
            Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]).unwrap(),
            Dag::from_arcs(6, &[(0, 4), (2, 4), (1, 2), (1, 5), (3, 5), (0, 3)]).unwrap(),
            Dag::from_arcs(1, &[]).unwrap(),
            Dag::from_arcs(9, &[(0, 3), (1, 4), (2, 5), (3, 6), (4, 7), (5, 8)]).unwrap(),
        ]
    }

    #[test]
    fn context_reuse_matches_fresh_runs() {
        let p = Prioritizer::new();
        let mut ctx = PrioContext::new();
        // Deliberately interleave dag sizes so stale scratch from a larger
        // dag is live when a smaller one is prioritized.
        for dag in sample_dags().iter().chain(sample_dags().iter().rev()) {
            let reused = p.prioritize_in(dag, &mut ctx).unwrap();
            let fresh = p.prioritize(dag).unwrap();
            assert_eq!(reused.schedule, fresh.schedule);
            assert_eq!(reused.stats, fresh.stats);
            assert_eq!(reused.component_order, fresh.component_order);
        }
    }

    #[test]
    fn prioritize_many_matches_individual_calls() {
        let dags = sample_dags();
        let p = Prioritizer::new();
        let batch = p.prioritize_many(&dags);
        assert_eq!(batch.len(), dags.len());
        for (dag, res) in dags.iter().zip(batch) {
            let single = p.prioritize(dag).unwrap();
            let res = res.unwrap();
            assert_eq!(res.schedule, single.schedule);
            assert_eq!(res.stats, single.stats);
        }
    }

    /// Enough diamond components that Σ (nodes + arcs) clears
    /// [`PARALLEL_WORK_THRESHOLD`], so `threads > 1` really runs the pool.
    fn above_threshold_dag() -> Dag {
        let diamonds = PARALLEL_WORK_THRESHOLD / 8 + 1;
        let mut arcs = Vec::with_capacity(diamonds * 4);
        for d in 0..diamonds as u32 {
            let b = 4 * d;
            arcs.extend_from_slice(&[(b, b + 1), (b, b + 2), (b + 1, b + 3), (b + 2, b + 3)]);
        }
        Dag::from_arcs(4 * diamonds, &arcs).unwrap()
    }

    #[test]
    fn threaded_scheduling_is_bit_identical_to_serial() {
        // The small sample dags all take the adaptive serial fallback; the
        // diamond swarm is above the work threshold and exercises the
        // scoped thread pool itself.
        let mut dags = sample_dags();
        dags.push(above_threshold_dag());
        for dag in dags {
            let serial = Prioritizer::with_options(PrioOptions {
                threads: 1,
                ..PrioOptions::default()
            })
            .prioritize(&dag)
            .unwrap();
            for threads in [2, 4, 7] {
                let parallel = Prioritizer::with_options(PrioOptions {
                    threads,
                    ..PrioOptions::default()
                })
                .prioritize(&dag)
                .unwrap();
                assert_eq!(parallel.schedule, serial.schedule, "threads={threads}");
                assert_eq!(parallel.stats, serial.stats, "threads={threads}");
                assert_eq!(parallel.component_order, serial.component_order);
            }
        }
    }

    #[test]
    fn adaptive_threshold_counters_record_the_decision() {
        let p = Prioritizer::with_options(PrioOptions {
            threads: 4,
            ..PrioOptions::default()
        });
        // Counters are process-global and other tests may also bump them,
        // so assert on deltas with `>=`.
        let fallback = prio_obs::counter("core.schedule.serial_fallback_dags").get();
        let small = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        p.prioritize(&small).unwrap();
        assert!(
            prio_obs::counter("core.schedule.serial_fallback_dags").get() > fallback,
            "a 4-node dag must fall back to serial scheduling"
        );

        let parallel = prio_obs::counter("core.schedule.parallel_dags").get();
        let components = prio_obs::counter("core.schedule.parallel_components").get();
        p.prioritize(&above_threshold_dag()).unwrap();
        assert!(
            prio_obs::counter("core.schedule.parallel_dags").get() > parallel,
            "an above-threshold dag must schedule on the pool"
        );
        assert!(prio_obs::counter("core.schedule.parallel_components").get() > components);

        // Serial requests are not a fallback and must not be counted.
        let fallback = prio_obs::counter("core.schedule.serial_fallback_dags").get();
        Prioritizer::new().prioritize(&small).unwrap();
        assert_eq!(
            prio_obs::counter("core.schedule.serial_fallback_dags").get(),
            fallback
        );
    }

    #[test]
    fn emit_invariant_violation_is_an_error_not_a_panic() {
        // Regression for the old `expect` on Schedule::new: an order that
        // breaks an arc must surface as a structured emit-stage error
        // naming the offending arc.
        let dag = Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        let err = emit_schedule(&dag, vec![NodeId(1), NodeId(0), NodeId(2)]).unwrap_err();
        assert!(err.is_internal());
        assert_eq!(err.stage(), crate::error::Stage::Emit);
        match &err {
            PrioError::InternalInvariant { arc, .. } => {
                assert_eq!(*arc, Some((NodeId(0), NodeId(1))));
            }
            other => panic!("expected InternalInvariant, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.starts_with("emit:"), "stage prefix missing: {msg}");
        assert!(msg.contains("0 -> 1"), "offending arc missing: {msg}");

        // A wrong-length order is also an error (no localized arc).
        let err = emit_schedule(&dag, vec![NodeId(0)]).unwrap_err();
        assert!(err.is_internal());
        assert!(err.to_string().contains("emit:"));
    }
}
