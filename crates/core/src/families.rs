//! The bipartite family catalog (the paper's Fig. 2).
//!
//! The theory exhibits explicit IC-optimal schedules for several families of
//! connected bipartite dags; Fig. 2 shows `(1,2)-W`, `(2,2)-W`, `(1,5)-M`,
//! `(2,5)-M`, `3-Clique`, `4-Cycle` and `4-N`, each scheduled by executing
//! sources "left to right", then all sinks in arbitrary order. This module
//! provides constructors for the families together with their canonical
//! IC-optimal source orders; the IC-optimality of every catalog schedule is
//! verified in tests against the exhaustive checker of [`crate::optimal`].
//!
//! Definitions (arcs drawn upward, sources at the bottom):
//!
//! * **(s,d)-W-dag** — `s` sources, each with `d` children; consecutive
//!   sources share exactly one sink, so there are `s(d−1)+1` sinks. The
//!   left-to-right source order is IC-optimal.
//! * **(s,d)-M-dag** — the dual (arc reversal) of the (s,d)-W-dag:
//!   `s(d−1)+1` sources and `s` sinks, each sink with `d` parents,
//!   consecutive sinks sharing one source. Left-to-right again.
//! * **d-N-dag** — `d` sources and `d` sinks with arcs `u_i → v_i` and
//!   `u_{i+1} → v_i`; the order `u_{d−1}, …, u_0` covers one new sink per
//!   step. (The paper's `4-N` is the 4-node instance, `d = 2`.)
//! * **d-Cycle-dag** — `d` sources and `d` sinks arranged in a ring:
//!   `u_i → v_i` and `u_i → v_{(i+1) mod d}`; any run of cyclically
//!   adjacent sources is IC-optimal.
//! * **(s,t)-Clique** — the complete bipartite dag `K_{s,t}`; all source
//!   orders are equivalent (the paper's `d-Clique` is `K_{d,d}`).

use prio_graph::{Dag, DagBuilder, NodeId};

/// A member of the bipartite family catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `(s, d)`-W-dag: `s` sources of out-degree `d`, consecutive sources
    /// sharing one sink.
    W {
        /// Number of sources (≥ 1).
        s: usize,
        /// Out-degree of each source (≥ 2).
        d: usize,
    },
    /// `(s, d)`-M-dag: dual of the W-dag; `s` sinks of in-degree `d`.
    M {
        /// Number of sinks (≥ 1).
        s: usize,
        /// In-degree of each sink (≥ 2).
        d: usize,
    },
    /// `d`-N-dag: `d` sources, `d` sinks, `u_i → v_i`, `u_{i+1} → v_i`.
    N {
        /// Number of sources = number of sinks (≥ 2).
        d: usize,
    },
    /// `d`-Cycle-dag: ring of `d` sources and `d` sinks.
    Cycle {
        /// Ring length (≥ 3).
        d: usize,
    },
    /// Complete bipartite dag `K_{s,t}`.
    Clique {
        /// Number of sources (≥ 1).
        s: usize,
        /// Number of sinks (≥ 1).
        t: usize,
    },
}

impl Family {
    /// A short display name, e.g. `"(2,2)-W"` or `"4-Cycle"`.
    pub fn name(&self) -> String {
        match *self {
            Family::W { s, d } => format!("({s},{d})-W"),
            Family::M { s, d } => format!("({s},{d})-M"),
            Family::N { d } => format!("{d}-N"),
            Family::Cycle { d } => format!("{d}-Cycle"),
            Family::Clique { s, t } => format!("({s},{t})-Clique"),
        }
    }

    /// Instantiates the family as a concrete dag plus its canonical
    /// IC-optimal source order. Sources are numbered before sinks.
    ///
    /// Panics if the parameters are out of range (see variant docs).
    pub fn instantiate(&self) -> (Dag, Vec<NodeId>) {
        match *self {
            Family::W { s, d } => w_dag(s, d),
            Family::M { s, d } => m_dag(s, d),
            Family::N { d } => n_dag(d),
            Family::Cycle { d } => cycle_dag(d),
            Family::Clique { s, t } => clique_dag(s, t),
        }
    }

    /// The catalog instances shown in the paper's Fig. 2, in figure order.
    /// (The `4-N` of the figure is read as the 4-node N-dag, `d = 2`.)
    pub fn fig2_catalog() -> Vec<Family> {
        vec![
            Family::W { s: 1, d: 2 },
            Family::W { s: 2, d: 2 },
            Family::M { s: 1, d: 5 },
            Family::M { s: 2, d: 5 },
            Family::Clique { s: 3, t: 3 },
            Family::Cycle { d: 4 },
            Family::N { d: 2 },
        ]
    }
}

/// Builds the `(s,d)`-W-dag. Sources are nodes `0..s`; sinks follow.
/// Source `u_i` has children `sink[i(d−1)] ..= sink[i(d−1)+d−1]`, so `u_i`
/// and `u_{i+1}` share sink `(i+1)(d−1)`.
///
/// Returns the dag and its IC-optimal left-to-right source order.
pub fn w_dag(s: usize, d: usize) -> (Dag, Vec<NodeId>) {
    assert!(s >= 1, "W-dag needs at least one source");
    assert!(d >= 2, "W-dag sources have out-degree >= 2");
    let num_sinks = s * (d - 1) + 1;
    let mut b = DagBuilder::with_capacity(s + num_sinks, s * d);
    let sources: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("u{i}"))).collect();
    let sinks: Vec<NodeId> = (0..num_sinks)
        .map(|i| b.add_node(format!("v{i}")))
        .collect();
    for (i, &u) in sources.iter().enumerate() {
        for j in 0..d {
            b.add_arc(u, sinks[i * (d - 1) + j]).expect("w-dag arc");
        }
    }
    (b.build().expect("w-dag is acyclic"), sources)
}

/// Builds the `(s,d)`-M-dag (dual of the W-dag). Sources are nodes
/// `0..s(d−1)+1`; sinks follow. Sink `w_i` has parents
/// `source[i(d−1)] ..= source[i(d−1)+d−1]`.
///
/// Returns the dag and its IC-optimal left-to-right source order (which
/// completes sink after sink with maximal overlap).
pub fn m_dag(s: usize, d: usize) -> (Dag, Vec<NodeId>) {
    assert!(s >= 1, "M-dag needs at least one sink");
    assert!(d >= 2, "M-dag sinks have in-degree >= 2");
    let num_sources = s * (d - 1) + 1;
    let mut b = DagBuilder::with_capacity(num_sources + s, s * d);
    let sources: Vec<NodeId> = (0..num_sources)
        .map(|i| b.add_node(format!("u{i}")))
        .collect();
    let sinks: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("w{i}"))).collect();
    for (i, &w) in sinks.iter().enumerate() {
        for j in 0..d {
            b.add_arc(sources[i * (d - 1) + j], w).expect("m-dag arc");
        }
    }
    (b.build().expect("m-dag is acyclic"), sources)
}

/// Builds the `d`-N-dag: sources `u_0..u_{d−1}`, sinks `v_0..v_{d−1}`, arcs
/// `u_i → v_i` and `u_{i+1} → v_i` (so `v_{d−1}` has a single parent).
///
/// Returns the dag and the IC-optimal order `u_{d−1}, u_{d−2}, …, u_0`,
/// which renders one new sink eligible at every step.
pub fn n_dag(d: usize) -> (Dag, Vec<NodeId>) {
    assert!(d >= 2, "N-dag needs at least two sources");
    let mut b = DagBuilder::with_capacity(2 * d, 2 * d - 1);
    let sources: Vec<NodeId> = (0..d).map(|i| b.add_node(format!("u{i}"))).collect();
    let sinks: Vec<NodeId> = (0..d).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 0..d {
        b.add_arc(sources[i], sinks[i]).expect("n-dag arc");
        if i + 1 < d {
            b.add_arc(sources[i + 1], sinks[i]).expect("n-dag arc");
        }
    }
    let order = sources.iter().rev().copied().collect();
    (b.build().expect("n-dag is acyclic"), order)
}

/// Builds the `d`-Cycle-dag: sources `u_0..u_{d−1}`, sinks `v_0..v_{d−1}`,
/// arcs `u_i → v_i` and `u_i → v_{(i+1) mod d}` (so `v_i` has parents
/// `u_{i−1}` and `u_i`).
///
/// Returns the dag and the IC-optimal cyclically-adjacent order
/// `u_0, u_1, …`.
pub fn cycle_dag(d: usize) -> (Dag, Vec<NodeId>) {
    assert!(d >= 3, "cycle-dag needs ring length >= 3");
    let mut b = DagBuilder::with_capacity(2 * d, 2 * d);
    let sources: Vec<NodeId> = (0..d).map(|i| b.add_node(format!("u{i}"))).collect();
    let sinks: Vec<NodeId> = (0..d).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 0..d {
        b.add_arc(sources[i], sinks[i]).expect("cycle arc");
        b.add_arc(sources[i], sinks[(i + 1) % d])
            .expect("cycle arc");
    }
    (b.build().expect("cycle-dag is acyclic"), sources)
}

/// Builds the complete bipartite dag `K_{s,t}`.
///
/// Returns the dag and the (trivially IC-optimal) index source order.
pub fn clique_dag(s: usize, t: usize) -> (Dag, Vec<NodeId>) {
    assert!(s >= 1 && t >= 1, "clique needs sources and sinks");
    let mut b = DagBuilder::with_capacity(s + t, s * t);
    let sources: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("u{i}"))).collect();
    let sinks: Vec<NodeId> = (0..t).map(|i| b.add_node(format!("v{i}"))).collect();
    for &u in &sources {
        for &v in &sinks {
            b.add_arc(u, v).expect("clique arc");
        }
    }
    (b.build().expect("clique is acyclic"), sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::is_source_order_ic_optimal;
    use prio_graph::bipartite::{is_bipartite_dag, is_weakly_connected};

    fn check_family(f: Family) {
        let (dag, order) = f.instantiate();
        assert!(is_bipartite_dag(&dag), "{} must be bipartite", f.name());
        assert!(is_weakly_connected(&dag), "{} must be connected", f.name());
        assert_eq!(
            is_source_order_ic_optimal(&dag, &order),
            Some(true),
            "{} canonical order must be IC-optimal",
            f.name()
        );
    }

    #[test]
    fn fig2_catalog_schedules_are_ic_optimal() {
        for f in Family::fig2_catalog() {
            check_family(f);
        }
    }

    #[test]
    fn larger_instances_are_ic_optimal() {
        for f in [
            Family::W { s: 5, d: 3 },
            Family::W { s: 1, d: 7 },
            Family::M { s: 4, d: 3 },
            Family::M { s: 3, d: 2 },
            Family::N { d: 6 },
            Family::Cycle { d: 7 },
            Family::Clique { s: 4, t: 2 },
        ] {
            check_family(f);
        }
    }

    #[test]
    fn w_dag_shape() {
        let (d, order) = w_dag(2, 2);
        assert_eq!(d.num_nodes(), 5); // 2 sources + 3 sinks
        assert_eq!(d.num_arcs(), 4);
        assert_eq!(order.len(), 2);
        // Shared middle sink has in-degree 2.
        let shared: Vec<_> = d.sinks().filter(|&v| d.in_degree(v) == 2).collect();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn m_dag_is_reverse_of_w_dag() {
        let (m, _) = m_dag(3, 4);
        let (w, _) = w_dag(3, 4);
        assert_eq!(m.num_nodes(), w.num_nodes());
        assert_eq!(m.num_arcs(), w.num_arcs());
        assert_eq!(m.sources().count(), w.sinks().count());
        assert_eq!(m.sinks().count(), w.sources().count());
    }

    #[test]
    fn n_dag_shape() {
        let (d, order) = n_dag(2);
        assert_eq!(d.num_nodes(), 4); // the paper's "4-N"
        assert_eq!(d.num_arcs(), 3);
        // Optimal order starts with the source that solely owns a sink.
        assert_eq!(order[0], NodeId(1));
    }

    #[test]
    fn cycle_dag_shape() {
        let (d, _) = cycle_dag(4);
        assert_eq!(d.num_nodes(), 8);
        assert_eq!(d.num_arcs(), 8);
        assert!(d.sinks().all(|v| d.in_degree(v) == 2));
        assert!(d.sources().all(|u| d.out_degree(u) == 2));
    }

    #[test]
    fn clique_shape() {
        let (d, _) = clique_dag(3, 3);
        assert_eq!(d.num_arcs(), 9);
        // Sinks become eligible only after all sources execute: E is flat.
        let curve = crate::optimal::max_eligibility_curve_bipartite(&d).unwrap();
        assert_eq!(curve, vec![3, 2, 1, 3, 2, 1, 0]);
    }

    #[test]
    fn wrong_source_order_is_caught() {
        // For a (3,2)-W, starting from the middle source is still optimal,
        // but the N-dag is order-sensitive: forward order is suboptimal.
        let (d, _) = n_dag(3);
        let forward = vec![NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(is_source_order_ic_optimal(&d, &forward), Some(false));
    }

    #[test]
    fn family_names() {
        assert_eq!(Family::W { s: 1, d: 2 }.name(), "(1,2)-W");
        assert_eq!(Family::Cycle { d: 4 }.name(), "4-Cycle");
        assert_eq!(Family::Clique { s: 3, t: 3 }.name(), "(3,3)-Clique");
    }
}
