//! The *theoretical* scheduling algorithm of §2.2 — the idealized
//! six-step procedure the heuristic generalizes.
//!
//! Unlike the heuristic, the theoretical algorithm is allowed to **fail**:
//!
//! * Step 2 fails when the remnant of `G'` has no connected bipartite
//!   building block whose sources are remnant sources;
//! * Step 3 fails when a building block admits no (findable) IC-optimal
//!   schedule;
//! * Steps 4–5 fail when some pair of blocks is `⊵`-incomparable or the
//!   superdag's dependencies contradict the priorities.
//!
//! When it succeeds, its output is IC-optimal (the theory's theorem — the
//! test-suite re-verifies this against the exhaustive lattice oracle), and
//! the heuristic "agrees with the theory's algorithm when it works": tests
//! assert the heuristic's schedule is IC-optimal whenever the theoretical
//! algorithm succeeds.
//!
//! Step 3 here uses the explicit family catalog first and falls back to an
//! exhaustive IC-optimal-order search for small unrecognized bipartite
//! blocks, mirroring "there exist explicit IC-optimal schedules for large
//! families of bipartite dags" while keeping the algorithm total on the
//! blocks it can analyze.

use crate::decompose::{decompose, DecomposeOptions};
use crate::eligibility::partial_eligibility_profile;
use crate::optimal::find_ic_optimal_source_order;
use crate::priority::has_priority_over;
use crate::recognize::recognize;
use crate::schedule::Schedule;
use prio_graph::reduction::{remove_arcs, shortcut_arcs};
use prio_graph::topo::topo_order;
use prio_graph::{Dag, NodeId};

/// Why the theoretical algorithm gave up on a dag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoreticalFailure {
    /// Step 2: the decomposition needed the generalized (non-bipartite)
    /// detach — no building-block decomposition exists.
    DecompositionFailed {
        /// Index of the first non-building-block component.
        component: usize,
    },
    /// Step 3: a building block has no findable IC-optimal schedule.
    NoOptimalSchedule {
        /// Index of the offending component.
        component: usize,
    },
    /// Step 4: two blocks are incomparable under `⊵` in both directions.
    Incomparable {
        /// One block.
        i: usize,
        /// The other.
        j: usize,
    },
    /// Step 5: the superdag demands executing `parent` before `child`,
    /// but `parent ⊵ child` does not hold.
    PriorityViolation {
        /// The earlier (parent) block.
        parent: usize,
        /// The later (child) block.
        child: usize,
    },
}

impl std::fmt::Display for TheoreticalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TheoreticalFailure::DecompositionFailed { component } => {
                write!(
                    f,
                    "decomposition failed: component {component} is not a bipartite building block"
                )
            }
            TheoreticalFailure::NoOptimalSchedule { component } => {
                write!(
                    f,
                    "no IC-optimal schedule found for building block {component}"
                )
            }
            TheoreticalFailure::Incomparable { i, j } => {
                write!(f, "building blocks {i} and {j} are ⊵-incomparable")
            }
            TheoreticalFailure::PriorityViolation { parent, child } => {
                write!(
                    f,
                    "superdag requires block {parent} before {child} but {parent} ⊵ {child} fails"
                )
            }
        }
    }
}

impl std::error::Error for TheoreticalFailure {}

/// The theoretical algorithm's successful output.
#[derive(Debug, Clone)]
pub struct TheoreticalResult {
    /// The (IC-optimal, when the theory's hypotheses hold) schedule.
    pub schedule: Schedule,
    /// Block execution order (indices into the decomposition).
    pub block_order: Vec<usize>,
}

/// Runs the theoretical algorithm of §2.2 on `dag`.
pub fn theoretical_schedule(dag: &Dag) -> Result<TheoreticalResult, TheoreticalFailure> {
    // Step 1: shortcut removal.
    let shortcuts = shortcut_arcs(dag);
    let reduced = if shortcuts.is_empty() {
        dag.clone()
    } else {
        remove_arcs(dag, &shortcuts)
    };

    // Step 2: building-block decomposition. The shared decomposer's fast
    // path is exactly the building-block detach; any component that needed
    // the general search is a Step-2 failure.
    let dec = decompose(&reduced, DecomposeOptions { fast_path: true });
    for (i, part) in dec.parts.iter().enumerate() {
        // A single isolated job is a degenerate (and harmless) block.
        if !part.bipartite || (!part.via_fast_path && part.local.num_nodes() > 1) {
            return Err(TheoreticalFailure::DecompositionFailed { component: i });
        }
    }

    // Step 3: explicit IC-optimal schedule per block.
    let mut block_orders: Vec<Vec<NodeId>> = Vec::with_capacity(dec.parts.len());
    let mut profiles: Vec<Vec<usize>> = Vec::with_capacity(dec.parts.len());
    for (i, part) in dec.parts.iter().enumerate() {
        let local_order = if part.local.num_nodes() == 1 {
            Vec::new() // isolated job: no non-sinks to schedule
        } else if let Some((_, order)) = recognize(&part.local) {
            order
        } else if let Some(order) = find_ic_optimal_source_order(&part.local) {
            order
        } else {
            return Err(TheoreticalFailure::NoOptimalSchedule { component: i });
        };
        profiles.push(partial_eligibility_profile(&part.local, &local_order));
        block_orders.push(local_order.iter().map(|&l| part.map.to_super(l)).collect());
    }

    // Step 4: pairwise ⊵ comparability.
    let n = dec.parts.len();
    let mut prior = vec![vec![false; n]; n];
    for (i, row) in prior.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if i != j {
                *cell = has_priority_over(&profiles[i], &profiles[j]);
            }
        }
    }
    for (i, row) in prior.iter().enumerate() {
        for (j, &i_over_j) in row.iter().enumerate().skip(i + 1) {
            if !i_over_j && !prior[j][i] {
                return Err(TheoreticalFailure::Incomparable { i, j });
            }
        }
    }

    // Step 5: the superdag must respect the priorities.
    for (u, v) in dec.superdag.arcs() {
        let (p, c) = (u.index(), v.index());
        if !prior[p][c] {
            return Err(TheoreticalFailure::PriorityViolation {
                parent: p,
                child: c,
            });
        }
    }

    // Step 6: stable-sort a topological order of the superdag by ⊵.
    //
    // Blocks with no non-sinks (isolated jobs, removed as sinks of G) are
    // excluded from the sort: they contribute nothing to the emitted order
    // but are mutually-⊵ with *everything*, and such universal ties break
    // the transitivity of the comparator's Equal (C ≺ A with C ∼ B ∼ A),
    // which a stable sort needs to honor C ≺ A.
    let mut block_order: Vec<usize> = topo_order(&dec.superdag)
        .into_iter()
        .map(|u| u.index())
        .filter(|&b| !block_orders[b].is_empty())
        .collect();
    block_order.sort_by(|&i, &j| {
        use std::cmp::Ordering;
        match (prior[i][j], prior[j][i]) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => Ordering::Equal, // mutual (⊵ is transitive per the theory)
        }
    });
    // Re-append the trivial blocks so block_order stays a complete record.
    block_order.extend((0..n).filter(|&b| block_orders[b].is_empty()));

    // Emit: block source-schedules in order, then all sinks of G.
    let mut order: Vec<NodeId> = Vec::with_capacity(dag.num_nodes());
    for &b in &block_order {
        order.extend_from_slice(&block_orders[b]);
    }
    order.extend(dag.sinks());
    let schedule =
        Schedule::new(dag, order).expect("theoretical composition is a linear extension");
    Ok(TheoreticalResult {
        schedule,
        block_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{is_ic_optimal, DEFAULT_STATE_LIMIT};
    use crate::prio::prioritize;

    #[test]
    fn fig3_succeeds_and_matches_heuristic() {
        let dag = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let theo = theoretical_schedule(&dag).expect("fig3 is theory-schedulable");
        assert_eq!(
            is_ic_optimal(&dag, theo.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true)
        );
        let heur = prioritize(&dag).unwrap();
        assert_eq!(
            theo.schedule, heur.schedule,
            "heuristic agrees when theory works"
        );
    }

    #[test]
    fn catalog_families_succeed() {
        for fam in crate::families::Family::fig2_catalog() {
            let (dag, _) = fam.instantiate();
            let theo = theoretical_schedule(&dag).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert_eq!(
                is_ic_optimal(&dag, theo.schedule.order(), DEFAULT_STATE_LIMIT),
                Some(true),
                "{} theoretical schedule must be IC-optimal",
                fam.name()
            );
        }
    }

    #[test]
    fn diamond_composition_succeeds_and_is_optimal() {
        let dag = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let theo = theoretical_schedule(&dag).expect("diamond decomposes into blocks");
        assert_eq!(
            is_ic_optimal(&dag, theo.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true)
        );
    }

    #[test]
    fn entangled_ring_fails_step_2() {
        let dag = Dag::from_arcs(6, &[(0, 4), (2, 4), (1, 2), (1, 5), (3, 5), (0, 3)]).unwrap();
        match theoretical_schedule(&dag) {
            Err(TheoreticalFailure::DecompositionFailed { .. }) => {}
            other => panic!("expected decomposition failure, got {other:?}"),
        }
        // The heuristic still handles it — the whole point of the paper.
        assert!(prioritize(&dag).unwrap().schedule.is_valid_for(&dag));
    }

    #[test]
    fn shortcuts_are_removed_first() {
        // Triangle: chain + shortcut; after reduction it is a chain of
        // 2-blocks.
        let dag = Dag::from_arcs(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let theo = theoretical_schedule(&dag).expect("chain after reduction");
        assert!(theo.schedule.is_valid_for(&dag));
        assert_eq!(
            is_ic_optimal(&dag, theo.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true)
        );
    }

    #[test]
    fn failure_messages_render() {
        let msgs = [
            TheoreticalFailure::DecompositionFailed { component: 1 }.to_string(),
            TheoreticalFailure::NoOptimalSchedule { component: 2 }.to_string(),
            TheoreticalFailure::Incomparable { i: 0, j: 1 }.to_string(),
            TheoreticalFailure::PriorityViolation {
                parent: 0,
                child: 1,
            }
            .to_string(),
        ];
        assert!(msgs.iter().all(|m| !m.is_empty()));
    }
}
