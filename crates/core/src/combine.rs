//! The greedy Combine phase (Step 6).
//!
//! Repeatedly pick, among the *sources* of the remnant superdag, a
//! supernode `C'i` maximizing
//! `p_i = min_{j ≠ i} (priority of C'i over C'j)` — intuitively the
//! supernode whose immediate execution forfeits the least eligibility in
//! the worst case — then remove it and expose its superdag children.
//!
//! Two engines implement the same selection rule:
//!
//! * [`CombineEngine::Naive`] recomputes every pairwise priority from the
//!   raw profiles at every step — the quadratic algorithm the paper first
//!   tried.
//! * [`CombineEngine::ClassHeap`] interns profiles into classes, caches
//!   pairwise priorities per class pair, groups current sources by class
//!   (keyed in ordered maps), and recomputes the per-class minima only when
//!   the *set of distinct classes* present changes — the engineered
//!   replacement (the paper used a B-tree priority queue; the win comes
//!   from the same observation that scientific dags contain very few
//!   distinct component shapes).
//!
//! Both engines break ties toward the smallest component index, so they
//! produce identical orders (asserted by tests), and the order is always a
//! linear extension of the superdag.

use crate::priority::{priority_over, PriorityCache};
use crate::profile::{ProfileClass, ProfileInterner};
use prio_graph::{Dag, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Selects the implementation of the greedy combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineEngine {
    /// Recompute all pairwise priorities every step (paper's first,
    /// quadratic implementation).
    Naive,
    /// Profile-class interning + priority caching + ordered class index
    /// (paper's engineered implementation).
    #[default]
    ClassHeap,
}

/// Greedily orders the supernodes of `superdag`, whose node `i` carries
/// eligibility profile `profiles[i]`. Returns the execution order of
/// component indices (a linear extension of `superdag`).
///
/// Profiles are taken by reference (`&[usize]`, `Vec<usize>`, … all work),
/// so the pipeline can pass the components' own profile vectors without
/// cloning them per call.
pub fn combine<P: AsRef<[usize]>>(
    superdag: &Dag,
    profiles: &[P],
    engine: CombineEngine,
) -> Vec<usize> {
    assert_eq!(
        superdag.num_nodes(),
        profiles.len(),
        "one profile per supernode"
    );
    let _span = prio_obs::span(prio_obs::stage::COMBINE);
    match engine {
        CombineEngine::Naive => combine_naive(superdag, profiles),
        CombineEngine::ClassHeap => combine_class_heap(superdag, profiles),
    }
}

fn combine_naive<P: AsRef<[usize]>>(superdag: &Dag, profiles: &[P]) -> Vec<usize> {
    let n = superdag.num_nodes();
    let mut indeg: Vec<usize> = superdag.node_ids().map(|u| superdag.in_degree(u)).collect();
    let mut sources: BTreeSet<usize> = superdag.sources().map(|u| u.index()).collect();
    let mut order = Vec::with_capacity(n);
    while !sources.is_empty() {
        // p_i = min over other sources j of priority(i over j); a lone
        // source has worst-case priority 1.
        let mut best: Option<(f64, usize)> = None;
        for &i in &sources {
            let mut p_i = 1.0f64;
            for &j in &sources {
                if i != j {
                    let p = priority_over(profiles[i].as_ref(), profiles[j].as_ref());
                    if p < p_i {
                        p_i = p;
                    }
                }
            }
            let better = match best {
                None => true,
                Some((bp, bi)) => p_i > bp || (p_i == bp && i < bi),
            };
            if better {
                best = Some((p_i, i));
            }
        }
        let (_, chosen) = best.expect("sources non-empty");
        sources.remove(&chosen);
        order.push(chosen);
        for &v in superdag.children(NodeId(chosen as u32)) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                sources.insert(v.index());
            }
        }
    }
    debug_assert_eq!(order.len(), n, "superdag is acyclic");
    order
}

fn combine_class_heap<P: AsRef<[usize]>>(superdag: &Dag, profiles: &[P]) -> Vec<usize> {
    let n = superdag.num_nodes();
    let mut interner = ProfileInterner::new();
    let class_of: Vec<ProfileClass> = profiles
        .iter()
        .map(|p| interner.intern(p.as_ref()))
        .collect();
    let mut cache = PriorityCache::new();

    let mut indeg: Vec<usize> = superdag.node_ids().map(|u| superdag.in_degree(u)).collect();
    // Current sources grouped by class; BTreeMap/BTreeSet keep everything
    // deterministic.
    let mut members: BTreeMap<ProfileClass, BTreeSet<usize>> = BTreeMap::new();
    for u in superdag.sources() {
        members
            .entry(class_of[u.index()])
            .or_default()
            .insert(u.index());
    }
    // Cached per-class worst-case priorities, valid as long as the set of
    // distinct classes present (with count-1 vs count-many distinction)
    // is unchanged.
    let mut cached_p: BTreeMap<ProfileClass, f64> = BTreeMap::new();
    let mut cache_valid = false;

    let mut order = Vec::with_capacity(n);
    while !members.is_empty() {
        if !cache_valid {
            cached_p.clear();
            let classes: Vec<(ProfileClass, usize)> =
                members.iter().map(|(&c, set)| (c, set.len())).collect();
            for &(c, count_c) in &classes {
                let mut p = 1.0f64;
                for &(c2, _) in &classes {
                    if c2 == c && count_c < 2 {
                        continue; // no *other* source of the same class
                    }
                    let pr = cache.priority(&interner, c, c2);
                    if pr < p {
                        p = pr;
                    }
                }
                cached_p.insert(c, p);
            }
            cache_valid = true;
        }
        // Pick the class with maximal p; among argmax classes, the source
        // with the smallest component index (matching the naive engine).
        let mut best: Option<(f64, usize, ProfileClass)> = None;
        for (&c, &p) in &cached_p {
            let &lowest = members[&c].first().expect("class sets are non-empty");
            let better = match best {
                None => true,
                Some((bp, bi, _)) => p > bp || (p == bp && lowest < bi),
            };
            if better {
                best = Some((p, lowest, c));
            }
        }
        let (_, chosen, chosen_class) = best.expect("members non-empty");
        let set = members
            .get_mut(&chosen_class)
            .expect("chosen class present");
        set.remove(&chosen);
        let class_vanished = set.is_empty();
        if class_vanished {
            members.remove(&chosen_class);
            cache_valid = false;
        } else if set.len() == 1 {
            // Count dropped to 1: the class no longer competes with itself.
            cache_valid = false;
        }
        order.push(chosen);
        for &v in superdag.children(NodeId(chosen as u32)) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                let c = class_of[v.index()];
                let entry = members.entry(c).or_default();
                entry.insert(v.index());
                if entry.len() <= 2 {
                    // New class appeared, or a lone class regained a rival.
                    cache_valid = false;
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n, "superdag is acyclic");
    prio_obs::counter("core.combine.profile_classes").add(interner.num_classes() as u64);
    prio_obs::counter("core.combine.priority_cache_hits").add(cache.hits as u64);
    prio_obs::counter("core.combine.priority_cache_misses").add(cache.misses as u64);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::topo::is_linear_extension;

    fn check_both(superdag: &Dag, profiles: &[Vec<usize>]) -> Vec<usize> {
        let naive = combine(superdag, profiles, CombineEngine::Naive);
        let heap = combine(superdag, profiles, CombineEngine::ClassHeap);
        assert_eq!(naive, heap, "engines must agree");
        let as_nodes: Vec<NodeId> = naive.iter().map(|&i| NodeId(i as u32)).collect();
        assert!(is_linear_extension(superdag, &as_nodes));
        naive
    }

    #[test]
    fn fig3_combine_picks_cde_first() {
        // Two independent components: {a,b} profile [1,1], {c,d,e} [1,2].
        let superdag = Dag::from_arcs(2, &[]).unwrap();
        let profiles = vec![vec![1, 1], vec![1, 2]];
        assert_eq!(check_both(&superdag, &profiles), vec![1, 0]);
    }

    #[test]
    fn respects_superdag_precedence() {
        // Component 1 has the attractive profile but depends on 0.
        let superdag = Dag::from_arcs(2, &[(0, 1)]).unwrap();
        let profiles = vec![vec![1, 1], vec![1, 5]];
        assert_eq!(check_both(&superdag, &profiles), vec![0, 1]);
    }

    #[test]
    fn identical_profiles_fall_back_to_index_order() {
        let superdag = Dag::from_arcs(4, &[]).unwrap();
        let profiles = vec![vec![1, 2]; 4];
        assert_eq!(check_both(&superdag, &profiles), vec![0, 1, 2, 3]);
    }

    #[test]
    fn mixed_classes_and_dependencies() {
        // 0 -> 2, 1 -> 3; profiles make 1 (expansive) beat 0 (flat).
        let superdag = Dag::from_arcs(4, &[(0, 2), (1, 3)]).unwrap();
        let profiles = vec![vec![1, 1], vec![1, 3], vec![1, 2], vec![1, 1]];
        let order = check_both(&superdag, &profiles);
        assert_eq!(order[0], 1, "expansive root first");
        // All four appear exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_superdag() {
        let superdag = prio_graph::DagBuilder::new().build().unwrap();
        assert!(check_both(&superdag, &[]).is_empty());
    }

    #[test]
    fn single_supernode() {
        let superdag = Dag::from_arcs(1, &[]).unwrap();
        assert_eq!(check_both(&superdag, &[vec![2, 1]]), vec![0]);
    }

    #[test]
    fn many_identical_components_cache_effectively() {
        // 64 components of two alternating classes, no dependencies; the
        // class engine must produce the same order as naive.
        let superdag = Dag::from_arcs(64, &[]).unwrap();
        let profiles: Vec<Vec<usize>> = (0..64)
            .map(|i| if i % 2 == 0 { vec![1, 2] } else { vec![1, 1] })
            .collect();
        let order = check_both(&superdag, &profiles);
        // All the expansive (even) components come first.
        let first_half: Vec<usize> = order[..32].to_vec();
        assert!(first_half.iter().all(|i| i % 2 == 0));
    }
}
