//! The [`Schedule`] type: a total order on the jobs of a DAG.
//!
//! A schedule is valid for a dag iff it is a *linear extension*: every job
//! appears exactly once and after all of its parents. Schedules convert to
//! and from Condor-style job priorities: the job at schedule position 1
//! (executed first) gets the largest priority value `n`, the last job gets
//! `1` — exactly the `jobpriority` numbering the `prio` tool writes into
//! DAGMan files (Fig. 3: first job `c` of a 5-job dag gets priority 5).

use crate::eligibility::eligibility_profile;
use prio_graph::topo::is_linear_extension;
use prio_graph::{Dag, NodeId};

/// A total order on the jobs of some DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    order: Vec<NodeId>,
}

impl Schedule {
    /// Wraps an order, validating it against `dag`.
    ///
    /// Returns `None` if `order` is not a linear extension of `dag`.
    pub fn new(dag: &Dag, order: Vec<NodeId>) -> Option<Schedule> {
        if is_linear_extension(dag, &order) {
            Some(Schedule { order })
        } else {
            None
        }
    }

    /// Wraps an order without validation (for callers that construct orders
    /// guaranteed valid; debug builds still assert nothing — use
    /// [`Schedule::is_valid_for`] to check explicitly).
    pub fn from_order_unchecked(order: Vec<NodeId>) -> Schedule {
        Schedule { order }
    }

    /// The jobs in execution order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether the schedule is a linear extension of `dag`.
    pub fn is_valid_for(&self, dag: &Dag) -> bool {
        is_linear_extension(dag, &self.order)
    }

    /// `positions()[u] = t` iff job `u` is the `(t+1)`-th executed
    /// (0-based schedule position).
    pub fn positions(&self) -> Vec<usize> {
        let mut pos = vec![usize::MAX; self.order.len()];
        for (i, u) in self.order.iter().enumerate() {
            pos[u.index()] = i;
        }
        pos
    }

    /// Condor-style priorities: `priorities()[u] = n - position(u)`, so the
    /// first-scheduled job has priority `n` and the last has 1 — larger
    /// priority value means "assign to a worker earlier", as in Condor.
    pub fn priorities(&self) -> Vec<u32> {
        let n = self.order.len();
        let mut prio = vec![0u32; n];
        for (i, u) in self.order.iter().enumerate() {
            prio[u.index()] = (n - i) as u32;
        }
        prio
    }

    /// Reconstructs a schedule from Condor-style priorities (larger value =
    /// earlier). Ties are broken by node index, mirroring a stable queue.
    pub fn from_priorities(priorities: &[u32]) -> Schedule {
        let mut order: Vec<NodeId> = (0..priorities.len() as u32).map(NodeId).collect();
        order.sort_by_key(|u| (std::cmp::Reverse(priorities[u.index()]), u.0));
        Schedule { order }
    }

    /// The eligibility profile `E(0) ..= E(n)` of this schedule on `dag`.
    pub fn eligibility_profile(&self, dag: &Dag) -> Vec<usize> {
        eligibility_profile(dag, &self.order)
    }
}

/// The pointwise difference `E_a(t) − E_b(t)` between two schedules'
/// eligibility profiles on the same dag — the quantity plotted in the
/// paper's Fig. 4 (with `a` = PRIO, `b` = FIFO).
pub fn profile_difference(dag: &Dag, a: &Schedule, b: &Schedule) -> Vec<i64> {
    let pa = a.eligibility_profile(dag);
    let pb = b.eligibility_profile(dag);
    pa.iter()
        .zip(&pb)
        .map(|(&x, &y)| x as i64 - y as i64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_dag() -> Dag {
        Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap()
    }

    #[test]
    fn validation() {
        let d = fig3_dag();
        let ok = vec![NodeId(2), NodeId(0), NodeId(1), NodeId(3), NodeId(4)];
        assert!(Schedule::new(&d, ok).is_some());
        let bad = vec![NodeId(1), NodeId(0), NodeId(2), NodeId(3), NodeId(4)];
        assert!(Schedule::new(&d, bad).is_none());
    }

    #[test]
    fn positions_and_priorities_roundtrip() {
        let d = fig3_dag();
        let s = Schedule::new(
            &d,
            vec![NodeId(2), NodeId(0), NodeId(1), NodeId(3), NodeId(4)],
        )
        .unwrap();
        let pos = s.positions();
        assert_eq!(pos[2], 0);
        assert_eq!(pos[4], 4);
        let prio = s.priorities();
        // Fig. 3: job c (index 2) has the highest priority, 5.
        assert_eq!(prio[2], 5);
        assert_eq!(prio[0], 4);
        assert_eq!(prio[4], 1);
        let back = Schedule::from_priorities(&prio);
        assert_eq!(back, s);
    }

    #[test]
    fn from_priorities_breaks_ties_by_index() {
        let s = Schedule::from_priorities(&[3, 3, 7]);
        let order: Vec<u32> = s.order().iter().map(|u| u.0).collect();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn profile_difference_matches_fig3_shape() {
        let d = fig3_dag();
        let prio = Schedule::new(
            &d,
            vec![NodeId(2), NodeId(0), NodeId(1), NodeId(3), NodeId(4)],
        )
        .unwrap();
        let fifo = Schedule::new(
            &d,
            vec![NodeId(0), NodeId(2), NodeId(1), NodeId(3), NodeId(4)],
        )
        .unwrap();
        // PRIO gains one eligible job at step 1 and never loses.
        assert_eq!(profile_difference(&d, &prio, &fifo), vec![0, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn empty_schedule() {
        let d = prio_graph::DagBuilder::new().build().unwrap();
        let s = Schedule::new(&d, vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.eligibility_profile(&d), vec![0]);
    }
}
