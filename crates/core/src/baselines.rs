//! Additional baseline schedulers (extensions beyond the paper's FIFO
//! comparison).
//!
//! The paper evaluates PRIO only against FIFO, the order DAGMan uses. Two
//! extra baselines are provided for the extension experiments:
//!
//! * [`random_schedule`] — a random linear extension (sampled by repeatedly
//!   drawing uniformly among the currently eligible jobs), to quantify how
//!   much of PRIO's gain is real structure vs. FIFO's specific weakness;
//! * [`critical_path_schedule`] — classic HEFT-style upward-rank priority
//!   under unit job weights (largest height first), the standard
//!   makespan-oriented heuristic PRIO implicitly competes with.

use crate::eligibility::EligibilityTracker;
use crate::schedule::Schedule;
use prio_graph::topo::heights;
use prio_graph::{Dag, NodeId};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Samples a random linear extension of `dag`: at every step one of the
/// currently eligible jobs is chosen uniformly at random.
///
/// (This is *not* uniform over linear extensions — neither is any cheap
/// sampler — but it is the natural "no-information" scheduling baseline.)
pub fn random_schedule<R: Rng + ?Sized>(dag: &Dag, rng: &mut R) -> Schedule {
    let mut tracker = EligibilityTracker::new(dag);
    let mut eligible: Vec<NodeId> = dag.sources().collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while !eligible.is_empty() {
        let i = rng.gen_range(0..eligible.len());
        let u = eligible.swap_remove(i);
        let newly = tracker.execute(u);
        order.push(u);
        eligible.extend(newly);
    }
    Schedule::new(dag, order).expect("random order is a linear extension")
}

/// Critical-path (upward-rank) schedule: among eligible jobs always pick
/// one with the largest height (longest path to a sink, unit weights),
/// breaking ties toward the smaller node index.
pub fn critical_path_schedule(dag: &Dag) -> Schedule {
    let height = heights(dag);
    let mut tracker = EligibilityTracker::new(dag);
    let mut heap: BinaryHeap<(usize, Reverse<NodeId>)> = dag
        .sources()
        .map(|u| (height[u.index()], Reverse(u)))
        .collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while let Some((_, Reverse(u))) = heap.pop() {
        let newly = tracker.execute(u);
        order.push(u);
        for v in newly {
            heap.push((height[v.index()], Reverse(v)));
        }
    }
    Schedule::new(dag, order).expect("critical-path order is a linear extension")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_dag() -> Dag {
        Dag::from_arcs(8, &[(0, 2), (1, 2), (2, 3), (3, 4), (1, 5), (5, 6), (0, 7)]).unwrap()
    }

    #[test]
    fn random_schedules_are_valid_and_seeded() {
        let dag = test_dag();
        let mut rng = SmallRng::seed_from_u64(7);
        let s1 = random_schedule(&dag, &mut rng);
        assert!(s1.is_valid_for(&dag));
        let mut rng = SmallRng::seed_from_u64(7);
        let s2 = random_schedule(&dag, &mut rng);
        assert_eq!(s1, s2, "same seed, same schedule");
        let mut rng = SmallRng::seed_from_u64(8);
        let s3 = random_schedule(&dag, &mut rng);
        assert!(s3.is_valid_for(&dag));
    }

    #[test]
    fn critical_path_prefers_deep_chains() {
        let dag = test_dag();
        let s = critical_path_schedule(&dag);
        assert!(s.is_valid_for(&dag));
        // Node 0 and 1 are sources; 0 heads the longest chain 0-2-3-4.
        assert_eq!(s.order()[0], NodeId(0));
        let pos = s.positions();
        // The depth-3 chain job 2 runs before the depth-1 job 7.
        assert!(pos[2] < pos[7]);
    }

    #[test]
    fn critical_path_on_flat_dag_is_index_order() {
        let dag = Dag::from_arcs(4, &[]).unwrap();
        let s = critical_path_schedule(&dag);
        let order: Vec<u32> = s.order().iter().map(|u| u.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
