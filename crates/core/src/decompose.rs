//! The generalized decomposition (Divide phase, Step 2).
//!
//! The theoretical algorithm repeatedly detaches a maximal connected
//! *bipartite* building block whose sources are sources of the remnant of
//! `G'` — and fails when none exists. The heuristic generalizes the
//! decomposition so it never fails: for a source `s` of the remnant, `C(s)`
//! is the smallest subgraph containing `s` that is closed under
//! *children-of-contained-sources* and *parents-of-contained-jobs*; a
//! containment-minimal `C(s)` is detached instead. When the remnant does
//! have bipartite blocks the two notions coincide.
//!
//! §3.5 engineering: identifying a bipartite block first and falling back
//! to the general (and much more expensive) minimal-`C(s)` search only when
//! no bipartite block exists reduced the SDSS decomposition "from over
//! 2 days to a few minutes". Both paths are implemented here;
//! [`DecomposeOptions::fast_path`] toggles the optimization so the ablation
//! benchmark can quantify it.
//!
//! Detaching removes the block's non-sinks plus those of its sinks that are
//! sinks of `G'`; a sink with surviving children stays and becomes a source
//! of a later component. The **superdag** is the quotient of `G'` by the
//! "removed in component i" map: an arc `i → j` records that some job
//! removed with component `i` has a child removed with component `j`, i.e.
//! component `j` cannot start before `i` contributes.

use crate::component::{Component, ScheduleSource};
use crate::prio::PARALLEL_WORK_THRESHOLD;
use prio_graph::bipartite::is_bipartite_dag;
use prio_graph::{Dag, Label, NodeId, ScratchArena, SubgraphMap, SubgraphScratch};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Options controlling the decomposition.
#[derive(Debug, Clone, Copy)]
pub struct DecomposeOptions {
    /// Try to detach a connected bipartite block first, invoking the
    /// general minimal-`C(s)` search only when none exists (§3.5). Turning
    /// this off forces the general search every iteration — the "naive"
    /// arm of the decomposition ablation.
    pub fast_path: bool,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions { fast_path: true }
    }
}

/// A detached block before the Recurse phase assigns it a schedule.
#[derive(Debug, Clone)]
pub struct Part {
    /// Global ids of the block's nodes, sorted.
    pub nodes: Vec<NodeId>,
    /// The induced local dag on `nodes` (remnant view: arcs between two
    /// alive nodes always survive, so inducing on the original `G'` is
    /// exact).
    pub local: Dag,
    /// Local ↔ global id mapping.
    pub map: SubgraphMap,
    /// Whether the block is bipartite.
    pub bipartite: bool,
    /// Whether the block came from the bipartite fast path.
    pub via_fast_path: bool,
    /// Global ids of the nodes *removed* by this detach (non-sinks plus
    /// sinks of `G'`), sorted.
    pub removed: Vec<NodeId>,
}

impl Part {
    /// The block's non-sinks (global ids, sorted) — the jobs this component
    /// contributes to the global schedule.
    pub fn nonsinks(&self) -> Vec<NodeId> {
        self.local
            .node_ids()
            .filter(|&l| !self.local.is_sink(l))
            .map(|l| self.map.to_super(l))
            .collect()
    }

    /// Converts this part into a [`Component`] once the Recurse phase has
    /// chosen a non-sink schedule and computed the local eligibility
    /// profile.
    pub fn into_component(
        self,
        index: usize,
        nonsink_schedule: Vec<NodeId>,
        schedule_source: ScheduleSource,
        profile: Vec<usize>,
    ) -> Component {
        Component {
            index,
            nodes: self.nodes,
            local: self.local,
            map: self.map,
            bipartite: self.bipartite,
            nonsink_schedule,
            schedule_source,
            profile,
        }
    }
}

/// The result of decomposing `G'`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The detached blocks, in detach order.
    pub parts: Vec<Part>,
    /// The superdag: node `i` is `parts[i]`; an arc `i → j` means some job
    /// removed with part `i` has a child in part `j`.
    pub superdag: Dag,
    /// `comp_removed[u]` = index of the part whose detach removed job `u`.
    pub comp_removed: Vec<usize>,
    /// How many detach iterations used the general minimal-`C(s)` search.
    pub general_search_iterations: usize,
}

/// Decomposes `g` (assumed shortcut-free; the caller runs the transitive
/// reduction first) into components plus a superdag. One-shot entry point:
/// fresh scratch arena, serial part materialization.
pub fn decompose(g: &Dag, opts: DecomposeOptions) -> Decomposition {
    decompose_in(g, opts, 0, &mut ScratchArena::new())
}

/// [`decompose`] with explicit worker `threads` for the part-materialization
/// phase and a caller-owned scratch `arena` for the peel loop's worklists.
///
/// The decomposition runs in three phases:
///
/// 1. **Peel** (inherently serial — each detach changes what the next
///    iteration sees): the block/closure searches over the shrinking
///    remnant, producing per-part node and removed sets only.
/// 2. **Superdag**: quotient of `g` by the removed-in-part map. Each node
///    of `g` appears in exactly one part's `removed` list, so walking those
///    lists part by part visits every arc of `g` exactly once, already
///    grouped by source part — the quotient arcs come out globally sorted
///    without a quotient-wide sort, and the detach order is its own
///    topological witness, so no re-validation pass is needed either.
/// 3. **Materialize** (independent per part, parallelized when the total
///    node count clears [`PARALLEL_WORK_THRESHOLD`]): induce each part's
///    local dag and classify bipartiteness. Results are placed by part
///    index, so every thread count is bit-identical.
pub fn decompose_in(
    g: &Dag,
    opts: DecomposeOptions,
    threads: usize,
    arena: &mut ScratchArena,
) -> Decomposition {
    let _span = prio_obs::span(prio_obs::stage::DECOMPOSE);
    let (seeds, comp_removed, general_search_iterations) = peel(g, opts, arena);
    let superdag = build_superdag(g, &seeds, &comp_removed, threads);
    let parts = materialize_parts(g, seeds, threads);

    prio_obs::counter("core.decompose.components_detached").add(parts.len() as u64);
    prio_obs::counter("core.decompose.general_search_iterations")
        .add(general_search_iterations as u64);
    Decomposition {
        parts,
        superdag,
        comp_removed,
        general_search_iterations,
    }
}

/// A detached block before materialization: the node/removed sets the peel
/// loop decided on, with the local dag still unbuilt.
#[derive(Debug, Default)]
struct PartSeed {
    nodes: Vec<NodeId>,
    removed: Vec<NodeId>,
    via_fast_path: bool,
}

/// The peel loop: repeatedly picks a block (bipartite fast path, general
/// minimal-`C(s)` search as fallback) and detaches it from the remnant.
/// Returns the part seeds in detach order, the removed-in-part map and the
/// general-search iteration count.
fn peel(
    g: &Dag,
    opts: DecomposeOptions,
    arena: &mut ScratchArena,
) -> (Vec<PartSeed>, Vec<usize>, usize) {
    let _span = prio_obs::span("decompose.peel");
    let n = g.num_nodes();
    let mut alive = arena.take_bools();
    alive.resize(n, true);
    let mut alive_indeg = arena.take_u32s();
    alive_indeg.extend(g.node_ids().map(|u| g.in_degree(u) as u32));
    // Candidate remnant sources as a lazy min-heap: entries may be stale
    // (node removed, deferred, or duplicated) and are validated on pop.
    // The heap replaces an ordered source *set* — membership deletions
    // were ~2 ordered-set operations per job on a pointer-chasing tree —
    // with O(1)-amortized pushes into a dense array; ascending pops keep
    // the detach order bit-identical to the ordered-set iteration.
    let mut candidates: BinaryHeap<Reverse<NodeId>> = g.sources().map(Reverse).collect();
    let mut comp_removed = vec![usize::MAX; n];
    let mut remaining = n;
    let mut seeds: Vec<PartSeed> = Vec::new();
    let mut general_search_iterations = 0usize;

    // Scratch for the closure searches (stamped visited marks).
    let mut stamp_of = arena.take_u32s();
    stamp_of.resize(n, 0);
    let mut stamp = 0u32;

    // Failure deferral for the fast path. A failed seed attempt visits a
    // set of sources and fails at one internal "blocker" parent; the
    // attempt's outcome cannot change until one of those visited nodes is
    // removed or the blocker becomes a source, so all visited sources are
    // deferred as a group and re-enabled only when a watched node fires.
    // Without this, dags in which a wide join's parents become ready one
    // by one (e.g. SDSS's 14k per-target chains feeding one collector)
    // re-scan every dead-end seed on every detach — a cubic blowup.
    // All three structures are dense (indexed by node / group id) — the
    // hash-set variant paid a SipHash probe per membership test on the
    // hottest peel-loop branch.
    let mut deferred = arena.take_bools();
    deferred.resize(n, false);
    let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut groups: Vec<Option<Vec<NodeId>>> = Vec::new();
    macro_rules! fire_watch {
        ($node:expr) => {
            for gid in std::mem::take(&mut watchers[$node.index()]) {
                if let Some(members) = groups[gid as usize].take() {
                    for &m in &members {
                        deferred[m.index()] = false;
                        // An un-deferred member that is still a remnant
                        // source becomes a candidate again.
                        if alive[m.index()] && alive_indeg[m.index()] == 0 {
                            candidates.push(Reverse(m));
                        }
                    }
                    arena.put_nodes(members);
                }
            }
        };
    }

    while remaining > 0 {
        let mut via_fast_path = false;
        let mut block: Option<Vec<NodeId>> = None;

        if opts.fast_path {
            // Pop candidates in ascending order, validating lazily: an
            // entry may be dead, no longer minimal (duplicate) or deferred.
            // The first candidate whose block attempt succeeds is the same
            // source an ordered ascending scan would have picked.
            while let Some(&Reverse(s)) = candidates.peek() {
                if !alive[s.index()] || alive_indeg[s.index()] != 0 || deferred[s.index()] {
                    candidates.pop();
                    continue;
                }
                stamp += 1;
                match bipartite_block(g, &alive, &alive_indeg, s, &mut stamp_of, stamp, arena) {
                    Ok(nodes) => {
                        // `s` stays in the heap; the detach below kills it
                        // (block sources are always removed), so the entry
                        // goes stale and is skipped on a later pop.
                        block = Some(nodes);
                        via_fast_path = true;
                        break;
                    }
                    Err(failure) => {
                        candidates.pop();
                        let gid = groups.len() as u32;
                        for &src in &failure.visited_sources {
                            deferred[src.index()] = true;
                            watchers[src.index()].push(gid);
                        }
                        watchers[failure.blocker.index()].push(gid);
                        groups.push(Some(failure.visited_sources));
                    }
                }
            }
        }

        let nodes = match block {
            Some(nodes) => nodes,
            None => {
                // General search: compute C(s) for every remnant source and
                // take a containment-minimal one (smallest size; minimal
                // closures are equal or disjoint, so smallest size suffices).
                general_search_iterations += 1;
                // Current remnant sources, ascending. With the fast path
                // on, the candidate heap is exhausted here (every source is
                // deferred), so recover them by scanning; with it off, the
                // heap still holds them all (plus stale entries, filtered
                // out) and survivors are pushed back for later iterations.
                let srcs: Vec<NodeId> = if opts.fast_path {
                    (0..n)
                        .map(|i| NodeId(i as u32))
                        .filter(|u| alive[u.index()] && alive_indeg[u.index()] == 0)
                        .collect()
                } else {
                    let mut v: Vec<NodeId> = candidates
                        .drain()
                        .map(|Reverse(u)| u)
                        .filter(|u| alive[u.index()] && alive_indeg[u.index()] == 0)
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    candidates.extend(v.iter().copied().map(Reverse));
                    v
                };
                let mut best: Option<(usize, NodeId, Vec<NodeId>)> = None;
                for &s in srcs.iter() {
                    stamp += 1;
                    let c = closure(g, &alive, &alive_indeg, s, &mut stamp_of, stamp, arena);
                    let better = match &best {
                        None => true,
                        Some((size, seed, _)) => c.len() < *size || (c.len() == *size && s < *seed),
                    };
                    if better {
                        if let Some((_, _, old)) = best.replace((c.len(), s, c)) {
                            arena.put_nodes(old);
                        }
                    } else {
                        arena.put_nodes(c);
                    }
                }
                best.expect("at least one source exists").2
            }
        };

        // Detach: remove non-sinks of the block and block sinks that are
        // sinks of G' (= have no children at all, since children of alive
        // nodes are always alive). Block membership is tested via a fresh
        // stamp, so no local dag is needed here — materialization happens
        // later, outside the serial loop.
        stamp += 1;
        for &u in &nodes {
            stamp_of[u.index()] = stamp;
        }
        let mut removed: Vec<NodeId> = Vec::new();
        for &u in &nodes {
            let has_block_child = g.children(u).iter().any(|v| stamp_of[v.index()] == stamp);
            if has_block_child || g.is_sink(u) {
                removed.push(u);
            }
        }
        assert!(
            !removed.is_empty(),
            "detach must make progress (block of {} nodes)",
            nodes.len()
        );
        let part_index = seeds.len();
        for &u in &removed {
            debug_assert!(alive[u.index()], "removing a dead node");
            alive[u.index()] = false;
            comp_removed[u.index()] = part_index;
            deferred[u.index()] = false;
            fire_watch!(u);
            remaining -= 1;
            for &v in g.children(u) {
                // Children of an alive node are always alive; u was alive.
                let vi = v.index();
                alive_indeg[vi] -= 1;
                if alive_indeg[vi] == 0 && alive[vi] {
                    candidates.push(Reverse(v));
                    fire_watch!(v);
                }
            }
        }
        seeds.push(PartSeed {
            nodes,
            removed,
            via_fast_path,
        });
    }

    arena.put_bools(alive);
    arena.put_bools(deferred);
    arena.put_u32s(alive_indeg);
    arena.put_u32s(stamp_of);
    (seeds, comp_removed, general_search_iterations)
}

/// Builds each seed's local induced dag and bipartiteness flag — the
/// per-part work the peel loop deferred. Independent across parts; runs on
/// scoped worker threads over contiguous seed ranges when `threads > 1`
/// and the total node count clears [`PARALLEL_WORK_THRESHOLD`]. Each
/// worker writes a disjoint slice of the output, placed by part index, so
/// the result is bit-identical for every thread count.
fn materialize_parts(g: &Dag, seeds: Vec<PartSeed>, threads: usize) -> Vec<Part> {
    let _span = prio_obs::span("decompose.materialize");
    let k = seeds.len();
    let work: usize = seeds.iter().map(|s| s.nodes.len()).sum();
    let t = threads.min(k);
    if t <= 1 || work < PARALLEL_WORK_THRESHOLD {
        prio_obs::counter("core.decompose.serial_materialize").add(1);
        let mut scratch = SubgraphScratch::new();
        return seeds
            .into_iter()
            .map(|s| materialize_one(g, s, &mut scratch))
            .collect();
    }
    prio_obs::counter("core.decompose.parallel_materialize").add(1);
    let mut seeds = seeds;
    let mut out: Vec<Option<Part>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut seeds_rest = seeds.as_mut_slice();
        let mut out_rest = out.as_mut_slice();
        for i in 0..t {
            let (lo, hi) = (k * i / t, k * (i + 1) / t);
            let (s_chunk, s_tail) = seeds_rest.split_at_mut(hi - lo);
            let (o_chunk, o_tail) = out_rest.split_at_mut(hi - lo);
            seeds_rest = s_tail;
            out_rest = o_tail;
            scope.spawn(move || {
                let mut scratch = SubgraphScratch::new();
                for (seed, slot) in s_chunk.iter_mut().zip(o_chunk.iter_mut()) {
                    *slot = Some(materialize_one(g, std::mem::take(seed), &mut scratch));
                }
            });
        }
    });
    out.into_iter()
        .map(|p| p.expect("every slot filled"))
        .collect()
}

/// Materializes one part: induces the local dag (stamped membership plus a
/// dense local-id table — no per-arc searches) and classifies
/// bipartiteness. The scratch lives across parts, so the dense tables are
/// grown once per worker, not once per part.
fn materialize_one(g: &Dag, seed: PartSeed, scratch: &mut SubgraphScratch) -> Part {
    let (local, map) = g.induced_subgraph_in(&seed.nodes, scratch);
    let bipartite = is_bipartite_dag(&local);
    Part {
        nodes: seed.nodes,
        local,
        map,
        bipartite,
        via_fast_path: seed.via_fast_path,
        removed: seed.removed,
    }
}

/// Builds the superdag — the quotient of `g` by `comp_removed` — from the
/// seeds' `removed` lists. Each job is removed by exactly one part, so
/// scanning the lists part by part covers every arc of `g` exactly once,
/// already grouped by source part: deduping against a `k`-sized stamp table
/// and sorting only each part's (typically tiny) target list yields a
/// globally sorted quotient arc list with no quotient-wide sort. Every arc
/// points forward in detach order (a parent is never removed after its
/// child), so detach order is a topological witness and the acyclicity
/// re-check is skipped too.
fn build_superdag(g: &Dag, seeds: &[PartSeed], comp_removed: &[usize], threads: usize) -> Dag {
    let _span = prio_obs::span("decompose.superdag");
    let k = seeds.len();
    let labels: Vec<Label> = (0..k).map(|i| format!("C{i}").into()).collect();
    let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut seen: Vec<u32> = vec![u32::MAX; k];
    let mut buf: Vec<u32> = Vec::new();
    for (i, seed) in seeds.iter().enumerate() {
        buf.clear();
        for &u in &seed.removed {
            for &v in g.children(u) {
                let j = comp_removed[v.index()];
                if j != i && seen[j] != i as u32 {
                    seen[j] = i as u32;
                    debug_assert!(i < j, "a parent is never removed after its child");
                    buf.push(j as u32);
                }
            }
        }
        buf.sort_unstable();
        arcs.extend(buf.iter().map(|&j| (NodeId(i as u32), NodeId(j))));
    }
    Dag::from_sorted_arcs_unchecked(labels, &arcs, threads)
}

/// Why a bipartite-block attempt failed: the sources visited before the
/// failure (they would all fail identically) and the internal parent that
/// forced the closure past bipartiteness. The attempt's outcome cannot
/// change while every visited source stays a live source and the blocker
/// stays a live non-source, which is what the deferral machinery watches.
struct BlockFailure {
    visited_sources: Vec<NodeId>,
    blocker: NodeId,
}

/// Tries to grow a connected bipartite block from remnant source `s`:
/// sources `S`, sinks `T`, closed under children-of-`S` and
/// parents-of-`T`, where every parent of a `T` node must itself be a
/// remnant source (otherwise no bipartite block containing `s` exists).
///
/// Returns the sorted node set on success, or the failure witness.
#[allow(clippy::too_many_arguments)]
fn bipartite_block(
    g: &Dag,
    alive: &[bool],
    alive_indeg: &[u32],
    s: NodeId,
    stamp_of: &mut [u32],
    stamp: u32,
    arena: &mut ScratchArena,
) -> Result<Vec<NodeId>, BlockFailure> {
    let mut nodes = arena.take_nodes();
    let mut visited_sources = arena.take_nodes();
    let mut src_queue = arena.take_nodes();
    nodes.push(s);
    visited_sources.push(s);
    src_queue.push(s);
    stamp_of[s.index()] = stamp;
    while let Some(u) = src_queue.pop() {
        for &w in g.children(u) {
            if stamp_of[w.index()] == stamp {
                continue;
            }
            stamp_of[w.index()] = stamp;
            nodes.push(w);
            // Every alive parent of a block sink must itself be a remnant
            // source (otherwise the closure is forced past bipartiteness).
            for &p in g.parents(w) {
                if alive[p.index()] {
                    if alive_indeg[p.index()] != 0 {
                        arena.put_nodes(nodes);
                        arena.put_nodes(src_queue);
                        return Err(BlockFailure {
                            visited_sources,
                            blocker: p,
                        });
                    }
                    if stamp_of[p.index()] != stamp {
                        stamp_of[p.index()] = stamp;
                        nodes.push(p);
                        visited_sources.push(p);
                        src_queue.push(p);
                    }
                }
            }
        }
    }
    nodes.sort_unstable();
    arena.put_nodes(visited_sources);
    arena.put_nodes(src_queue);
    Ok(nodes)
}

/// The general closure `C(s)`: smallest set containing `s`, closed under
/// children-of-contained-remnant-sources and alive-parents-of-contained
/// jobs. Returns the sorted node set.
fn closure(
    g: &Dag,
    alive: &[bool],
    alive_indeg: &[u32],
    s: NodeId,
    stamp_of: &mut [u32],
    stamp: u32,
    arena: &mut ScratchArena,
) -> Vec<NodeId> {
    let mut nodes = arena.take_nodes();
    let mut queue = arena.take_nodes();
    nodes.push(s);
    queue.push(s);
    stamp_of[s.index()] = stamp;
    while let Some(u) = queue.pop() {
        if alive_indeg[u.index()] == 0 {
            // u is a remnant source: include all its (alive) children.
            for &w in g.children(u) {
                if stamp_of[w.index()] != stamp {
                    stamp_of[w.index()] = stamp;
                    nodes.push(w);
                    queue.push(w);
                }
            }
        }
        // Include all alive parents of u.
        for &p in g.parents(u) {
            if alive[p.index()] && stamp_of[p.index()] != stamp {
                stamp_of[p.index()] = stamp;
                nodes.push(p);
                queue.push(p);
            }
        }
    }
    nodes.sort_unstable();
    arena.put_nodes(queue);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decompose_default(g: &Dag) -> Decomposition {
        decompose(g, DecomposeOptions::default())
    }

    /// Every non-sink of `g` must be scheduled by exactly one part, and
    /// every node removed exactly once.
    fn check_invariants(g: &Dag, dec: &Decomposition) {
        let mut removed_by = vec![usize::MAX; g.num_nodes()];
        let mut nonsink_owner = vec![usize::MAX; g.num_nodes()];
        for (i, part) in dec.parts.iter().enumerate() {
            for &u in &part.removed {
                assert_eq!(removed_by[u.index()], usize::MAX, "{u:?} removed twice");
                removed_by[u.index()] = i;
            }
            for u in part.nonsinks() {
                assert_eq!(
                    nonsink_owner[u.index()],
                    usize::MAX,
                    "{u:?} scheduled twice"
                );
                nonsink_owner[u.index()] = i;
            }
        }
        for u in g.node_ids() {
            assert_ne!(removed_by[u.index()], usize::MAX, "{u:?} never removed");
            assert_eq!(removed_by[u.index()], dec.comp_removed[u.index()]);
            if !g.is_sink(u) {
                assert_ne!(
                    nonsink_owner[u.index()],
                    usize::MAX,
                    "non-sink {u:?} unscheduled"
                );
            } else {
                assert_eq!(
                    nonsink_owner[u.index()],
                    usize::MAX,
                    "sink {u:?} scheduled early"
                );
            }
        }
        // Superdag arcs all point forward in detach order.
        for (a, b) in dec.superdag.arcs() {
            assert!(a < b);
        }
        assert_eq!(dec.superdag.num_nodes(), dec.parts.len());
    }

    #[test]
    fn fig3_decomposes_into_two_bipartite_parts() {
        let g = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 2);
        assert!(dec.parts.iter().all(|p| p.bipartite && p.via_fast_path));
        assert_eq!(dec.superdag.num_arcs(), 0);
        assert_eq!(dec.general_search_iterations, 0);
        let sizes: Vec<usize> = dec.parts.iter().map(|p| p.nodes.len()).collect();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn chain_peels_one_link_at_a_time() {
        let g = Dag::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 3);
        // Superdag is itself a chain.
        assert_eq!(dec.superdag.num_arcs(), 2);
        assert!(dec.superdag.has_arc(NodeId(0), NodeId(1)));
        assert!(dec.superdag.has_arc(NodeId(1), NodeId(2)));
    }

    #[test]
    fn diamond_becomes_fork_then_join() {
        let g = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 2);
        assert_eq!(dec.parts[0].nodes.len(), 3); // {0,1,2}: the fork
        assert_eq!(dec.parts[1].nodes.len(), 3); // {1,2,3}: the join
        assert!(dec.superdag.has_arc(NodeId(0), NodeId(1)));
    }

    #[test]
    fn shared_sink_survives_and_reappears_as_source() {
        // 0 -> 1 -> 2: part 0 = {0,1} detaches only node 0; node 1
        // reappears as the source of part 1.
        let g = Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        let dec = decompose_default(&g);
        assert_eq!(dec.parts[0].removed, vec![NodeId(0)]);
        assert!(dec.parts[0].nodes.contains(&NodeId(1)));
        assert!(dec.parts[1].nodes.contains(&NodeId(1)));
        assert_eq!(dec.comp_removed[1], 1);
    }

    #[test]
    fn entangled_dag_falls_back_to_general_search() {
        // Both sources' closures include internal nodes, so no bipartite
        // block exists: 0->4, 2->4, 1->2, 1->5, 3->5, 0->3.
        let g = Dag::from_arcs(6, &[(0, 4), (2, 4), (1, 2), (1, 5), (3, 5), (0, 3)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 1);
        assert!(!dec.parts[0].bipartite);
        assert!(!dec.parts[0].via_fast_path);
        assert_eq!(dec.general_search_iterations, 1);
        assert_eq!(dec.parts[0].nodes.len(), 6);
    }

    #[test]
    fn fast_path_off_matches_fast_path_on_for_bipartite_compositions() {
        // A dag assembled from bipartite blocks: both paths must produce
        // the same parts (the generalized decomposition coincides with the
        // block decomposition there).
        let g = Dag::from_arcs(
            7,
            &[
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap();
        let with = decompose(&g, DecomposeOptions { fast_path: true });
        let without = decompose(&g, DecomposeOptions { fast_path: false });
        check_invariants(&g, &with);
        check_invariants(&g, &without);
        let nodes = |d: &Decomposition| -> Vec<Vec<NodeId>> {
            d.parts.iter().map(|p| p.nodes.clone()).collect()
        };
        assert_eq!(nodes(&with), nodes(&without));
        assert!(without.general_search_iterations > 0);
        assert_eq!(with.general_search_iterations, 0);
    }

    #[test]
    fn isolated_nodes_are_their_own_parts() {
        let g = Dag::from_arcs(3, &[]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 3);
        assert!(dec.parts.iter().all(|p| p.nodes.len() == 1));
        assert!(dec.parts.iter().all(|p| p.nonsinks().is_empty()));
    }

    #[test]
    fn empty_dag() {
        let g = prio_graph::DagBuilder::new().build().unwrap();
        let dec = decompose_default(&g);
        assert!(dec.parts.is_empty());
        assert_eq!(dec.superdag.num_nodes(), 0);
    }

    #[test]
    fn w_dag_is_a_single_block() {
        let (g, _) = crate::families::w_dag(4, 3);
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 1);
        assert!(dec.parts[0].bipartite);
        assert_eq!(dec.parts[0].nonsinks().len(), 4);
    }
}
