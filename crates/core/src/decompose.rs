//! The generalized decomposition (Divide phase, Step 2).
//!
//! The theoretical algorithm repeatedly detaches a maximal connected
//! *bipartite* building block whose sources are sources of the remnant of
//! `G'` — and fails when none exists. The heuristic generalizes the
//! decomposition so it never fails: for a source `s` of the remnant, `C(s)`
//! is the smallest subgraph containing `s` that is closed under
//! *children-of-contained-sources* and *parents-of-contained-jobs*; a
//! containment-minimal `C(s)` is detached instead. When the remnant does
//! have bipartite blocks the two notions coincide.
//!
//! §3.5 engineering: identifying a bipartite block first and falling back
//! to the general (and much more expensive) minimal-`C(s)` search only when
//! no bipartite block exists reduced the SDSS decomposition "from over
//! 2 days to a few minutes". Both paths are implemented here;
//! [`DecomposeOptions::fast_path`] toggles the optimization so the ablation
//! benchmark can quantify it.
//!
//! Detaching removes the block's non-sinks plus those of its sinks that are
//! sinks of `G'`; a sink with surviving children stays and becomes a source
//! of a later component. The **superdag** is the quotient of `G'` by the
//! "removed in component i" map: an arc `i → j` records that some job
//! removed with component `i` has a child removed with component `j`, i.e.
//! component `j` cannot start before `i` contributes.

use crate::component::{Component, ScheduleSource};
use prio_graph::bipartite::is_bipartite_dag;
use prio_graph::{Dag, DagBuilder, NodeId, SubgraphMap};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Options controlling the decomposition.
#[derive(Debug, Clone, Copy)]
pub struct DecomposeOptions {
    /// Try to detach a connected bipartite block first, invoking the
    /// general minimal-`C(s)` search only when none exists (§3.5). Turning
    /// this off forces the general search every iteration — the "naive"
    /// arm of the decomposition ablation.
    pub fast_path: bool,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions { fast_path: true }
    }
}

/// A detached block before the Recurse phase assigns it a schedule.
#[derive(Debug, Clone)]
pub struct Part {
    /// Global ids of the block's nodes, sorted.
    pub nodes: Vec<NodeId>,
    /// The induced local dag on `nodes` (remnant view: arcs between two
    /// alive nodes always survive, so inducing on the original `G'` is
    /// exact).
    pub local: Dag,
    /// Local ↔ global id mapping.
    pub map: SubgraphMap,
    /// Whether the block is bipartite.
    pub bipartite: bool,
    /// Whether the block came from the bipartite fast path.
    pub via_fast_path: bool,
    /// Global ids of the nodes *removed* by this detach (non-sinks plus
    /// sinks of `G'`), sorted.
    pub removed: Vec<NodeId>,
}

impl Part {
    /// The block's non-sinks (global ids, sorted) — the jobs this component
    /// contributes to the global schedule.
    pub fn nonsinks(&self) -> Vec<NodeId> {
        self.local
            .node_ids()
            .filter(|&l| !self.local.is_sink(l))
            .map(|l| self.map.to_super(l))
            .collect()
    }

    /// Converts this part into a [`Component`] once the Recurse phase has
    /// chosen a non-sink schedule and computed the local eligibility
    /// profile.
    pub fn into_component(
        self,
        index: usize,
        nonsink_schedule: Vec<NodeId>,
        schedule_source: ScheduleSource,
        profile: Vec<usize>,
    ) -> Component {
        Component {
            index,
            nodes: self.nodes,
            local: self.local,
            map: self.map,
            bipartite: self.bipartite,
            nonsink_schedule,
            schedule_source,
            profile,
        }
    }
}

/// The result of decomposing `G'`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The detached blocks, in detach order.
    pub parts: Vec<Part>,
    /// The superdag: node `i` is `parts[i]`; an arc `i → j` means some job
    /// removed with part `i` has a child in part `j`.
    pub superdag: Dag,
    /// `comp_removed[u]` = index of the part whose detach removed job `u`.
    pub comp_removed: Vec<usize>,
    /// How many detach iterations used the general minimal-`C(s)` search.
    pub general_search_iterations: usize,
}

/// Decomposes `g` (assumed shortcut-free; the caller runs the transitive
/// reduction first) into components plus a superdag.
pub fn decompose(g: &Dag, opts: DecomposeOptions) -> Decomposition {
    let _span = prio_obs::span(prio_obs::stage::DECOMPOSE);
    let n = g.num_nodes();
    let mut alive = vec![true; n];
    let mut alive_indeg: Vec<usize> = g.node_ids().map(|u| g.in_degree(u)).collect();
    let mut source_set: BTreeSet<NodeId> = g.sources().collect();
    let mut comp_removed = vec![usize::MAX; n];
    let mut remaining = n;
    let mut parts: Vec<Part> = Vec::new();
    let mut general_search_iterations = 0usize;

    // Scratch for the closure searches (stamped visited marks).
    let mut stamp_of = vec![0u32; n];
    let mut stamp = 0u32;

    // Failure deferral for the fast path. A failed seed attempt visits a
    // set of sources and fails at one internal "blocker" parent; the
    // attempt's outcome cannot change until one of those visited nodes is
    // removed or the blocker becomes a source, so all visited sources are
    // deferred as a group and re-enabled only when a watched node fires.
    // Without this, dags in which a wide join's parents become ready one
    // by one (e.g. SDSS's 14k per-target chains feeding one collector)
    // re-scan every dead-end seed on every detach — a cubic blowup.
    let mut deferred: HashSet<NodeId> = HashSet::new();
    let mut watchers: HashMap<NodeId, Vec<usize>> = HashMap::new();
    let mut groups: Vec<Option<Vec<NodeId>>> = Vec::new();
    macro_rules! fire_watch {
        ($node:expr, $deferred:ident, $watchers:ident, $groups:ident) => {
            if let Some(gids) = $watchers.remove(&$node) {
                for gid in gids {
                    if let Some(members) = $groups[gid].take() {
                        for m in members {
                            $deferred.remove(&m);
                        }
                    }
                }
            }
        };
    }

    while remaining > 0 {
        debug_assert!(
            !source_set.is_empty(),
            "non-empty remnant must have a source"
        );
        let mut via_fast_path = false;
        let mut block: Option<Vec<NodeId>> = None;

        if opts.fast_path {
            for &s in source_set.iter() {
                if deferred.contains(&s) {
                    continue; // known to fail until a watched node fires
                }
                stamp += 1;
                match bipartite_block(g, &alive, &alive_indeg, s, &mut stamp_of, stamp) {
                    Ok(nodes) => {
                        block = Some(nodes);
                        via_fast_path = true;
                        break;
                    }
                    Err(failure) => {
                        let gid = groups.len();
                        for &src in &failure.visited_sources {
                            deferred.insert(src);
                            watchers.entry(src).or_default().push(gid);
                        }
                        watchers.entry(failure.blocker).or_default().push(gid);
                        groups.push(Some(failure.visited_sources));
                    }
                }
            }
        }

        let nodes = match block {
            Some(nodes) => nodes,
            None => {
                // General search: compute C(s) for every remnant source and
                // take a containment-minimal one (smallest size; minimal
                // closures are equal or disjoint, so smallest size suffices).
                general_search_iterations += 1;
                let mut best: Option<(usize, NodeId, Vec<NodeId>)> = None;
                for &s in source_set.iter() {
                    stamp += 1;
                    let c = closure(g, &alive, &alive_indeg, s, &mut stamp_of, stamp);
                    let better = match &best {
                        None => true,
                        Some((size, seed, _)) => c.len() < *size || (c.len() == *size && s < *seed),
                    };
                    if better {
                        best = Some((c.len(), s, c));
                    }
                }
                best.expect("at least one source exists").2
            }
        };

        // Detach: remove non-sinks of the block and block sinks that are
        // sinks of G' (= have no children at all, since children of alive
        // nodes are always alive).
        let (local, map) = g.induced_subgraph(&nodes);
        let mut removed: Vec<NodeId> = Vec::new();
        for l in local.node_ids() {
            let u = map.to_super(l);
            let is_block_sink = local.is_sink(l);
            if !is_block_sink || g.is_sink(u) {
                removed.push(u);
            }
        }
        assert!(
            !removed.is_empty(),
            "detach must make progress (block of {} nodes)",
            nodes.len()
        );
        let part_index = parts.len();
        for &u in &removed {
            debug_assert!(alive[u.index()], "removing a dead node");
            alive[u.index()] = false;
            comp_removed[u.index()] = part_index;
            source_set.remove(&u);
            deferred.remove(&u);
            fire_watch!(u, deferred, watchers, groups);
            remaining -= 1;
            for &v in g.children(u) {
                // Children of an alive node are always alive; u was alive.
                alive_indeg[v.index()] -= 1;
                if alive_indeg[v.index()] == 0 && alive[v.index()] {
                    source_set.insert(v);
                    fire_watch!(v, deferred, watchers, groups);
                }
            }
        }
        let bipartite = is_bipartite_dag(&local);
        parts.push(Part {
            nodes,
            local,
            map,
            bipartite,
            via_fast_path,
            removed,
        });
    }

    // Build the superdag as the quotient of g by comp_removed.
    let mut sb = DagBuilder::with_capacity(parts.len(), parts.len() * 2);
    for i in 0..parts.len() {
        sb.add_node(format!("C{i}"));
    }
    for (u, v) in g.arcs() {
        let (i, j) = (comp_removed[u.index()], comp_removed[v.index()]);
        if i != j {
            debug_assert!(i < j, "a parent is never removed after its child");
            sb.add_arc(NodeId(i as u32), NodeId(j as u32))
                .expect("part indices valid");
        }
    }
    let superdag = sb.build().expect("detach order is a topological witness");

    prio_obs::counter("core.decompose.components_detached").add(parts.len() as u64);
    prio_obs::counter("core.decompose.general_search_iterations")
        .add(general_search_iterations as u64);
    Decomposition {
        parts,
        superdag,
        comp_removed,
        general_search_iterations,
    }
}

/// Why a bipartite-block attempt failed: the sources visited before the
/// failure (they would all fail identically) and the internal parent that
/// forced the closure past bipartiteness. The attempt's outcome cannot
/// change while every visited source stays a live source and the blocker
/// stays a live non-source, which is what the deferral machinery watches.
struct BlockFailure {
    visited_sources: Vec<NodeId>,
    blocker: NodeId,
}

/// Tries to grow a connected bipartite block from remnant source `s`:
/// sources `S`, sinks `T`, closed under children-of-`S` and
/// parents-of-`T`, where every parent of a `T` node must itself be a
/// remnant source (otherwise no bipartite block containing `s` exists).
///
/// Returns the sorted node set on success, or the failure witness.
fn bipartite_block(
    g: &Dag,
    alive: &[bool],
    alive_indeg: &[usize],
    s: NodeId,
    stamp_of: &mut [u32],
    stamp: u32,
) -> Result<Vec<NodeId>, BlockFailure> {
    let mut nodes = vec![s];
    let mut visited_sources = vec![s];
    stamp_of[s.index()] = stamp;
    let mut src_queue = vec![s];
    while let Some(u) = src_queue.pop() {
        for &w in g.children(u) {
            if stamp_of[w.index()] == stamp {
                continue;
            }
            stamp_of[w.index()] = stamp;
            nodes.push(w);
            // Every alive parent of a block sink must itself be a remnant
            // source (otherwise the closure is forced past bipartiteness).
            for &p in g.parents(w) {
                if alive[p.index()] {
                    if alive_indeg[p.index()] != 0 {
                        return Err(BlockFailure {
                            visited_sources,
                            blocker: p,
                        });
                    }
                    if stamp_of[p.index()] != stamp {
                        stamp_of[p.index()] = stamp;
                        nodes.push(p);
                        visited_sources.push(p);
                        src_queue.push(p);
                    }
                }
            }
        }
    }
    nodes.sort_unstable();
    Ok(nodes)
}

/// The general closure `C(s)`: smallest set containing `s`, closed under
/// children-of-contained-remnant-sources and alive-parents-of-contained
/// jobs. Returns the sorted node set.
fn closure(
    g: &Dag,
    alive: &[bool],
    alive_indeg: &[usize],
    s: NodeId,
    stamp_of: &mut [u32],
    stamp: u32,
) -> Vec<NodeId> {
    let mut nodes = vec![s];
    stamp_of[s.index()] = stamp;
    let mut queue = vec![s];
    while let Some(u) = queue.pop() {
        if alive_indeg[u.index()] == 0 {
            // u is a remnant source: include all its (alive) children.
            for &w in g.children(u) {
                if stamp_of[w.index()] != stamp {
                    stamp_of[w.index()] = stamp;
                    nodes.push(w);
                    queue.push(w);
                }
            }
        }
        // Include all alive parents of u.
        for &p in g.parents(u) {
            if alive[p.index()] && stamp_of[p.index()] != stamp {
                stamp_of[p.index()] = stamp;
                nodes.push(p);
                queue.push(p);
            }
        }
    }
    nodes.sort_unstable();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decompose_default(g: &Dag) -> Decomposition {
        decompose(g, DecomposeOptions::default())
    }

    /// Every non-sink of `g` must be scheduled by exactly one part, and
    /// every node removed exactly once.
    fn check_invariants(g: &Dag, dec: &Decomposition) {
        let mut removed_by = vec![usize::MAX; g.num_nodes()];
        let mut nonsink_owner = vec![usize::MAX; g.num_nodes()];
        for (i, part) in dec.parts.iter().enumerate() {
            for &u in &part.removed {
                assert_eq!(removed_by[u.index()], usize::MAX, "{u:?} removed twice");
                removed_by[u.index()] = i;
            }
            for u in part.nonsinks() {
                assert_eq!(
                    nonsink_owner[u.index()],
                    usize::MAX,
                    "{u:?} scheduled twice"
                );
                nonsink_owner[u.index()] = i;
            }
        }
        for u in g.node_ids() {
            assert_ne!(removed_by[u.index()], usize::MAX, "{u:?} never removed");
            assert_eq!(removed_by[u.index()], dec.comp_removed[u.index()]);
            if !g.is_sink(u) {
                assert_ne!(
                    nonsink_owner[u.index()],
                    usize::MAX,
                    "non-sink {u:?} unscheduled"
                );
            } else {
                assert_eq!(
                    nonsink_owner[u.index()],
                    usize::MAX,
                    "sink {u:?} scheduled early"
                );
            }
        }
        // Superdag arcs all point forward in detach order.
        for (a, b) in dec.superdag.arcs() {
            assert!(a < b);
        }
        assert_eq!(dec.superdag.num_nodes(), dec.parts.len());
    }

    #[test]
    fn fig3_decomposes_into_two_bipartite_parts() {
        let g = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 2);
        assert!(dec.parts.iter().all(|p| p.bipartite && p.via_fast_path));
        assert_eq!(dec.superdag.num_arcs(), 0);
        assert_eq!(dec.general_search_iterations, 0);
        let sizes: Vec<usize> = dec.parts.iter().map(|p| p.nodes.len()).collect();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn chain_peels_one_link_at_a_time() {
        let g = Dag::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 3);
        // Superdag is itself a chain.
        assert_eq!(dec.superdag.num_arcs(), 2);
        assert!(dec.superdag.has_arc(NodeId(0), NodeId(1)));
        assert!(dec.superdag.has_arc(NodeId(1), NodeId(2)));
    }

    #[test]
    fn diamond_becomes_fork_then_join() {
        let g = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 2);
        assert_eq!(dec.parts[0].nodes.len(), 3); // {0,1,2}: the fork
        assert_eq!(dec.parts[1].nodes.len(), 3); // {1,2,3}: the join
        assert!(dec.superdag.has_arc(NodeId(0), NodeId(1)));
    }

    #[test]
    fn shared_sink_survives_and_reappears_as_source() {
        // 0 -> 1 -> 2: part 0 = {0,1} detaches only node 0; node 1
        // reappears as the source of part 1.
        let g = Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        let dec = decompose_default(&g);
        assert_eq!(dec.parts[0].removed, vec![NodeId(0)]);
        assert!(dec.parts[0].nodes.contains(&NodeId(1)));
        assert!(dec.parts[1].nodes.contains(&NodeId(1)));
        assert_eq!(dec.comp_removed[1], 1);
    }

    #[test]
    fn entangled_dag_falls_back_to_general_search() {
        // Both sources' closures include internal nodes, so no bipartite
        // block exists: 0->4, 2->4, 1->2, 1->5, 3->5, 0->3.
        let g = Dag::from_arcs(6, &[(0, 4), (2, 4), (1, 2), (1, 5), (3, 5), (0, 3)]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 1);
        assert!(!dec.parts[0].bipartite);
        assert!(!dec.parts[0].via_fast_path);
        assert_eq!(dec.general_search_iterations, 1);
        assert_eq!(dec.parts[0].nodes.len(), 6);
    }

    #[test]
    fn fast_path_off_matches_fast_path_on_for_bipartite_compositions() {
        // A dag assembled from bipartite blocks: both paths must produce
        // the same parts (the generalized decomposition coincides with the
        // block decomposition there).
        let g = Dag::from_arcs(
            7,
            &[
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap();
        let with = decompose(&g, DecomposeOptions { fast_path: true });
        let without = decompose(&g, DecomposeOptions { fast_path: false });
        check_invariants(&g, &with);
        check_invariants(&g, &without);
        let nodes = |d: &Decomposition| -> Vec<Vec<NodeId>> {
            d.parts.iter().map(|p| p.nodes.clone()).collect()
        };
        assert_eq!(nodes(&with), nodes(&without));
        assert!(without.general_search_iterations > 0);
        assert_eq!(with.general_search_iterations, 0);
    }

    #[test]
    fn isolated_nodes_are_their_own_parts() {
        let g = Dag::from_arcs(3, &[]).unwrap();
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 3);
        assert!(dec.parts.iter().all(|p| p.nodes.len() == 1));
        assert!(dec.parts.iter().all(|p| p.nonsinks().is_empty()));
    }

    #[test]
    fn empty_dag() {
        let g = prio_graph::DagBuilder::new().build().unwrap();
        let dec = decompose_default(&g);
        assert!(dec.parts.is_empty());
        assert_eq!(dec.superdag.num_nodes(), 0);
    }

    #[test]
    fn w_dag_is_a_single_block() {
        let (g, _) = crate::families::w_dag(4, 3);
        let dec = decompose_default(&g);
        check_invariants(&g, &dec);
        assert_eq!(dec.parts.len(), 1);
        assert!(dec.parts[0].bipartite);
        assert_eq!(dec.parts[0].nonsinks().len(), 4);
    }
}
