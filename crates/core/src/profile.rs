//! Eligibility-profile interning.
//!
//! The scientific dags of §3.3 decompose into thousands of components, but
//! only a handful of *distinct* eligibility profiles (e.g. SDSS's bipartite
//! stage yields many structurally identical blocks). Since the `⊵_r`
//! priority of one component over another depends only on the two profiles,
//! interning profiles into dense class ids lets the Combine phase cache
//! pairwise priorities per class pair instead of per component pair — one of
//! the two engineering levers behind §3.5's speedups.

use std::collections::HashMap;

/// Dense identifier of a distinct eligibility profile.
pub type ProfileClass = usize;

/// Interns eligibility profiles into dense class ids.
#[derive(Debug, Default, Clone)]
pub struct ProfileInterner {
    by_profile: HashMap<Vec<usize>, ProfileClass>,
    profiles: Vec<Vec<usize>>,
}

impl ProfileInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `profile`, returning its class (allocating a new class for a
    /// first-seen profile).
    pub fn intern(&mut self, profile: &[usize]) -> ProfileClass {
        if let Some(&c) = self.by_profile.get(profile) {
            return c;
        }
        let c = self.profiles.len();
        self.profiles.push(profile.to_vec());
        self.by_profile.insert(profile.to_vec(), c);
        c
    }

    /// The profile of a class.
    pub fn profile(&self, class: ProfileClass) -> &[usize] {
        &self.profiles[class]
    }

    /// Number of distinct classes seen.
    pub fn num_classes(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut i = ProfileInterner::new();
        let a = i.intern(&[1, 2, 3]);
        let b = i.intern(&[1, 2]);
        let c = i.intern(&[1, 2, 3]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.num_classes(), 2);
        assert_eq!(i.profile(a), &[1, 2, 3]);
        assert_eq!(i.profile(b), &[1, 2]);
    }
}
