//! Components produced by the Divide phase.
//!
//! Detaching a component `C` from the remnant of `G'` removes all of `C`'s
//! *non-sinks* (they are scheduled with the component) and those of `C`'s
//! sinks that are sinks of `G'` (they are scheduled at the very end, with
//! all the other sinks of `G`). A sink of `C` that still has children in
//! the remnant survives the detach and reappears as a *source* of a later
//! component — that sharing is what the superdag's arcs record.

use prio_graph::{Dag, NodeId, SubgraphMap};

/// How a component's non-sink schedule was obtained (Recurse phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleSource {
    /// The component matched a catalog family with an explicit IC-optimal
    /// schedule.
    Catalog(crate::families::Family),
    /// The component is a single job (nothing to schedule before sinks).
    Trivial,
    /// An IC-optimal order found by exhaustive search (extension beyond
    /// the paper, enabled by
    /// [`crate::prio::PrioOptions::optimal_search_limit`]).
    Searched,
    /// Fallback: largest-out-degree-first among locally eligible non-sinks.
    OutDegreeHeuristic,
}

/// One component of the decomposition of `G'`.
#[derive(Debug, Clone)]
pub struct Component {
    /// Index of this component in detach order.
    pub index: usize,
    /// All nodes of the component, as ids of the *original* dag, in local
    /// index order.
    pub nodes: Vec<NodeId>,
    /// The induced local dag on `nodes` (a component source may have had
    /// parents in earlier components; locally it is a source).
    pub local: Dag,
    /// Mapping between local and original node ids.
    pub map: SubgraphMap,
    /// Whether the component is a bipartite dag (arcs only source → sink).
    pub bipartite: bool,
    /// The component's non-sinks (original ids) in the order assigned by
    /// the Recurse phase — this is the slice of the global schedule this
    /// component contributes.
    pub nonsink_schedule: Vec<NodeId>,
    /// How the schedule was obtained.
    pub schedule_source: ScheduleSource,
    /// The component's local eligibility profile: `E(x)` for
    /// `x = 0 ..= nonsinks`, counting eligible jobs *within the component*
    /// after executing the first `x` scheduled non-sinks.
    pub profile: Vec<usize>,
}

impl Component {
    /// Number of nodes in the component.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the component is empty (never produced by the decomposer).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of non-sinks (= scheduled jobs) of the component.
    pub fn num_nonsinks(&self) -> usize {
        self.nonsink_schedule.len()
    }

    /// The component's sinks (original ids, local index order).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.local.sinks().map(|s| self.map.to_super(s)).collect()
    }
}
