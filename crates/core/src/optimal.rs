//! Exhaustive IC-optimality checking.
//!
//! A schedule Σ is **IC optimal** when for every step `t`, `E_Σ(t)` attains
//! the maximum of the eligible-job count over *all* sets of `t` executed
//! jobs that honor the precedence constraints — i.e. over all order ideals
//! (down-sets) of size `t` (§2.1). Deciding this in general requires
//! exploring the ideal lattice, which is exponential; these routines are
//! verification oracles for the test-suite and for small components, not
//! part of the production scheduling path.
//!
//! For bipartite dags the problem collapses to a *maximum-coverage* curve:
//! an ideal consists of `x` sources plus `e` already-covered sinks, and the
//! eligible count of an ideal of size `t` simplifies to
//! `s + covered(S) − t`, so `maxE(t) = s + maxcov(min(t, s)) − t` where
//! `maxcov(x)` is the largest number of sinks fully covered by `x` sources.
//! [`max_eligibility_curve_bipartite`] exploits this; the equivalence with
//! the general lattice search is property-tested.

use prio_graph::bipartite::bipartite_split;
use prio_graph::{Dag, FixedBitSet, NodeId};
use std::collections::HashSet;

/// Default cap on the number of distinct ideals explored per level before
/// giving up.
pub const DEFAULT_STATE_LIMIT: usize = 2_000_000;

/// Computes `maxE(t)` for `t = 0 ..= n` by breadth-first search over the
/// ideal lattice.
///
/// Returns `None` if the number of ideals at some level exceeds
/// `state_limit` (the dag is too wide for exhaustive search).
pub fn max_eligibility_curve(dag: &Dag, state_limit: usize) -> Option<Vec<usize>> {
    let n = dag.num_nodes();
    let mut curve = Vec::with_capacity(n + 1);
    let mut level: HashSet<FixedBitSet> = HashSet::new();
    level.insert(FixedBitSet::new(n));
    for _t in 0..=n {
        if level.len() > state_limit {
            return None;
        }
        let mut best = 0usize;
        let mut next: HashSet<FixedBitSet> = HashSet::with_capacity(level.len());
        for ideal in &level {
            let eligible = eligible_of_ideal(dag, ideal);
            best = best.max(eligible.len());
            for &u in &eligible {
                let mut bigger = ideal.clone();
                bigger.insert(u.index());
                next.insert(bigger);
            }
        }
        curve.push(best);
        level = next;
    }
    Some(curve)
}

/// The eligible jobs of an executed set (which must be an ideal).
fn eligible_of_ideal(dag: &Dag, executed: &FixedBitSet) -> Vec<NodeId> {
    dag.node_ids()
        .filter(|&u| {
            !executed.contains(u.index())
                && dag.parents(u).iter().all(|p| executed.contains(p.index()))
        })
        .collect()
}

/// Whether `order` is an IC-optimal schedule of `dag`, by comparing its
/// eligibility profile to the exhaustive maximum curve.
///
/// Returns `None` if the lattice search exceeds `state_limit`.
pub fn is_ic_optimal(dag: &Dag, order: &[NodeId], state_limit: usize) -> Option<bool> {
    let max_curve = max_eligibility_curve(dag, state_limit)?;
    let profile = crate::eligibility::eligibility_profile(dag, order);
    Some(profile == max_curve)
}

/// The maximum-coverage curve of a bipartite dag: `maxcov(x)` for
/// `x = 0 ..= s` is the largest number of sinks whose parent sets are fully
/// contained in some `x`-subset of sources.
///
/// Enumerates all `2^s` source subsets; returns `None` when `s > 25` or the
/// dag is not bipartite.
pub fn max_coverage_curve(dag: &Dag) -> Option<Vec<usize>> {
    let (sources, sinks) = bipartite_split(dag)?;
    let s = sources.len();
    if s > 25 {
        return None;
    }
    // Map each sink to the bitmask of its parents (over source positions).
    let mut src_pos = vec![usize::MAX; dag.num_nodes()];
    for (i, &u) in sources.iter().enumerate() {
        src_pos[u.index()] = i;
    }
    let sink_masks: Vec<u32> = sinks
        .iter()
        .map(|&v| {
            dag.parents(v)
                .iter()
                .fold(0u32, |m, p| m | (1 << src_pos[p.index()]))
        })
        .collect();
    let mut maxcov = vec![0usize; s + 1];
    for subset in 0u32..(1u32 << s) {
        let x = subset.count_ones() as usize;
        let covered = sink_masks.iter().filter(|&&m| m & !subset == 0).count();
        maxcov[x] = maxcov[x].max(covered);
    }
    Some(maxcov)
}

/// `maxE(t)` for a bipartite dag via the coverage reduction
/// (`maxE(t) = s + maxcov(min(t, s)) − t`).
pub fn max_eligibility_curve_bipartite(dag: &Dag) -> Option<Vec<usize>> {
    let (sources, _) = bipartite_split(dag)?;
    let s = sources.len();
    let maxcov = max_coverage_curve(dag)?;
    let n = dag.num_nodes();
    Some(
        (0..=n)
            .map(|t| s + maxcov[t.min(s)] - t.min(s) - (t - t.min(s)))
            .collect(),
    )
}

/// Whether a *source order* of a bipartite dag (sinks executed last in any
/// order) is IC-optimal: every prefix of the order must achieve the maximum
/// coverage for its size.
///
/// Returns `None` if the dag is not bipartite or too wide to verify.
pub fn is_source_order_ic_optimal(dag: &Dag, source_order: &[NodeId]) -> Option<bool> {
    let (sources, sinks) = bipartite_split(dag)?;
    if source_order.len() != sources.len() {
        return Some(false);
    }
    let maxcov = max_coverage_curve(dag)?;
    // Walk the order, counting covered sinks incrementally.
    let mut executed = vec![false; dag.num_nodes()];
    let mut covered = 0usize;
    let mut missing: Vec<usize> = vec![0; dag.num_nodes()];
    for &v in &sinks {
        missing[v.index()] = dag.in_degree(v);
        if missing[v.index()] == 0 {
            covered += 1; // parentless "sink" is trivially covered
        }
    }
    if covered != maxcov[0] {
        return Some(false);
    }
    for (x, &u) in source_order.iter().enumerate() {
        if executed[u.index()] {
            return Some(false); // duplicate
        }
        executed[u.index()] = true;
        for &v in dag.children(u) {
            missing[v.index()] -= 1;
            if missing[v.index()] == 0 {
                covered += 1;
            }
        }
        if covered != maxcov[x + 1] {
            return Some(false);
        }
    }
    Some(true)
}

/// Searches for an IC-optimal *source order* of a bipartite dag: an order
/// of the sources every prefix of which attains the maximum coverage for
/// its size. Returns `None` if the dag is not bipartite, is too wide to
/// verify (`> 25` sources), or no IC-optimal schedule exists.
///
/// Depth-first search over prefixes with coverage pruning; used as the
/// theoretical algorithm's Step-3 fallback for bipartite blocks outside
/// the explicit catalog.
pub fn find_ic_optimal_source_order(dag: &Dag) -> Option<Vec<NodeId>> {
    let (sources, sinks) = bipartite_split(dag)?;
    let maxcov = max_coverage_curve(dag)?;
    let s = sources.len();
    // Map sinks to parent masks over source positions.
    let mut src_pos = vec![usize::MAX; dag.num_nodes()];
    for (i, &u) in sources.iter().enumerate() {
        src_pos[u.index()] = i;
    }
    let sink_masks: Vec<u32> = sinks
        .iter()
        .map(|&v| {
            dag.parents(v)
                .iter()
                .fold(0u32, |m, p| m | (1 << src_pos[p.index()]))
        })
        .collect();
    // covered(subset) helper — O(#sinks) per call; fine at this size.
    let covered =
        |subset: u32| -> usize { sink_masks.iter().filter(|&&m| m & !subset == 0).count() };
    // DFS over prefixes; memoize failed subsets (a subset that cannot be
    // extended to a full IC-optimal order fails regardless of its order).
    let mut dead: HashSet<u32> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(s);
    fn dfs(
        subset: u32,
        depth: usize,
        s: usize,
        covered: &dyn Fn(u32) -> usize,
        maxcov: &[usize],
        dead: &mut HashSet<u32>,
        order: &mut Vec<usize>,
    ) -> bool {
        if depth == s {
            return true;
        }
        if dead.contains(&subset) {
            return false;
        }
        for i in 0..s {
            let bit = 1u32 << i;
            if subset & bit != 0 {
                continue;
            }
            let next = subset | bit;
            if covered(next) == maxcov[depth + 1] {
                order.push(i);
                if dfs(next, depth + 1, s, covered, maxcov, dead, order) {
                    return true;
                }
                order.pop();
            }
        }
        dead.insert(subset);
        false
    }
    if dfs(0, 0, s, &covered, &maxcov, &mut dead, &mut order) {
        Some(order.into_iter().map(|i| sources[i]).collect())
    } else {
        None
    }
}

/// Whether a bipartite dag admits *any* IC-optimal schedule (searchable
/// sizes only).
pub fn bipartite_admits_ic_optimal(dag: &Dag) -> Option<bool> {
    bipartite_split(dag)?;
    max_coverage_curve(dag)?;
    Some(find_ic_optimal_source_order(dag).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_of_fork() {
        // one source, three sinks: maxE = [1, 3, 2, 1, 0]
        let d = Dag::from_arcs(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let curve = max_eligibility_curve(&d, DEFAULT_STATE_LIMIT).unwrap();
        assert_eq!(curve, vec![1, 3, 2, 1, 0]);
        assert_eq!(max_eligibility_curve_bipartite(&d).unwrap(), curve);
    }

    #[test]
    fn curve_of_join() {
        // three sources, one sink: executing sources loses eligibility.
        let d = Dag::from_arcs(4, &[(0, 3), (1, 3), (2, 3)]).unwrap();
        let curve = max_eligibility_curve(&d, DEFAULT_STATE_LIMIT).unwrap();
        assert_eq!(curve, vec![3, 2, 1, 1, 0]);
        assert_eq!(max_eligibility_curve_bipartite(&d).unwrap(), curve);
    }

    #[test]
    fn fig3_prio_schedule_is_ic_optimal() {
        let d = Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap();
        let prio = [NodeId(2), NodeId(0), NodeId(1), NodeId(3), NodeId(4)];
        assert_eq!(is_ic_optimal(&d, &prio, DEFAULT_STATE_LIMIT), Some(true));
        // FIFO (a before c) is NOT IC-optimal on this dag.
        let fifo = [NodeId(0), NodeId(2), NodeId(1), NodeId(3), NodeId(4)];
        assert_eq!(is_ic_optimal(&d, &fifo, DEFAULT_STATE_LIMIT), Some(false));
    }

    #[test]
    fn state_limit_aborts() {
        // An antichain of 24 nodes has C(24, 12) ≈ 2.7M ideals mid-lattice.
        let d = Dag::from_arcs(24, &[]).unwrap();
        assert_eq!(max_eligibility_curve(&d, 1000), None);
    }

    #[test]
    fn coverage_curve_of_shared_sink() {
        // two sources sharing one sink plus one private sink each:
        // u0 -> {v0, v1}, u1 -> {v1, v2}  (this is the (2,2)-W dag)
        let d = Dag::from_arcs(5, &[(0, 2), (0, 3), (1, 3), (1, 4)]).unwrap();
        let maxcov = max_coverage_curve(&d).unwrap();
        assert_eq!(maxcov, vec![0, 1, 3]);
    }

    #[test]
    fn source_order_checker_agrees_with_lattice() {
        // (2,2)-W: left-to-right is optimal; either single-source start is
        // symmetric so both orders are optimal here.
        let d = Dag::from_arcs(5, &[(0, 2), (0, 3), (1, 3), (1, 4)]).unwrap();
        assert_eq!(
            is_source_order_ic_optimal(&d, &[NodeId(0), NodeId(1)]),
            Some(true)
        );
        // Full-order check via the lattice.
        let order = [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        assert_eq!(is_ic_optimal(&d, &order, DEFAULT_STATE_LIMIT), Some(true));
    }

    #[test]
    fn source_order_checker_rejects_bad_order() {
        // Sources: u0 covers 2 private sinks, u1 covers 1 private sink.
        // Starting with u1 is suboptimal.
        let d = Dag::from_arcs(5, &[(0, 2), (0, 3), (1, 4)]).unwrap();
        assert_eq!(
            is_source_order_ic_optimal(&d, &[NodeId(1), NodeId(0)]),
            Some(false)
        );
        assert_eq!(
            is_source_order_ic_optimal(&d, &[NodeId(0), NodeId(1)]),
            Some(true)
        );
    }

    #[test]
    fn non_bipartite_returns_none() {
        let d = Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(max_coverage_curve(&d).is_none());
        assert!(is_source_order_ic_optimal(&d, &[NodeId(0)]).is_none());
    }

    #[test]
    fn search_finds_ic_optimal_orders_for_catalog_families() {
        use crate::families::Family;
        for fam in Family::fig2_catalog() {
            let (dag, _) = fam.instantiate();
            let order = find_ic_optimal_source_order(&dag)
                .unwrap_or_else(|| panic!("{} should admit an IC-optimal order", fam.name()));
            assert_eq!(is_source_order_ic_optimal(&dag, &order), Some(true));
            assert_eq!(bipartite_admits_ic_optimal(&dag), Some(true));
        }
    }

    #[test]
    fn search_handles_irregular_bipartite_dags() {
        // The irregular block that defeats the out-degree heuristic:
        // 0 -> {4,8}, 1 -> {4,6,7}, 2 -> {4,5,7,9}, 3 -> {5,9}.
        let d = Dag::from_arcs(
            10,
            &[
                (0, 4),
                (0, 8),
                (1, 4),
                (1, 6),
                (1, 7),
                (2, 4),
                (2, 5),
                (2, 7),
                (2, 9),
                (3, 5),
                (3, 9),
            ],
        )
        .unwrap();
        let order = find_ic_optimal_source_order(&d).expect("an optimal order exists");
        assert_eq!(is_source_order_ic_optimal(&d, &order), Some(true));
    }

    #[test]
    fn search_returns_none_on_non_bipartite() {
        let d = Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(find_ic_optimal_source_order(&d).is_none());
        assert!(bipartite_admits_ic_optimal(&d).is_none());
    }

    #[test]
    fn bipartite_and_lattice_curves_agree_on_small_dags() {
        let cases: Vec<Dag> = vec![
            Dag::from_arcs(5, &[(0, 2), (0, 3), (1, 3), (1, 4)]).unwrap(),
            Dag::from_arcs(6, &[(0, 3), (1, 3), (1, 4), (2, 4), (2, 5)]).unwrap(),
            Dag::from_arcs(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap(),
            Dag::from_arcs(3, &[]).unwrap(),
        ];
        for d in cases {
            assert_eq!(
                max_eligibility_curve(&d, DEFAULT_STATE_LIMIT).unwrap(),
                max_eligibility_curve_bipartite(&d).unwrap(),
                "mismatch on {d:?}"
            );
        }
    }
}
