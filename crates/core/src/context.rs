//! [`PrioContext`]: reusable scratch state for repeated pipeline runs.
//!
//! One-shot prioritization allocates its working memory — visited stamps,
//! topological worklists, reachability bitsets, the shortcut-arc buffer —
//! afresh every call. Callers that prioritize many dags in a row (the
//! `prio batch` subcommand, the simulator's sweeps, the benchmark harness)
//! can instead hold a `PrioContext` and pass it to
//! [`crate::Prioritizer::prioritize_in`]: buffers grow to the largest dag
//! seen and are then reused, so steady-state runs allocate only for the
//! result itself.
//!
//! The context is deliberately *not* shared between threads: it is cheap
//! (one per worker) and keeping it thread-local keeps the pipeline free of
//! synchronization on the hot path. Reuse never changes results — the
//! property tests cross-check context-reuse runs against fresh runs.

use prio_graph::{GraphScratch, NodeId, ScratchArena};

/// Reusable scratch buffers for the PRIO pipeline.
///
/// Functionally equivalent to allocating fresh state per run; exists purely
/// to amortize allocations across [`crate::Prioritizer::prioritize_in`] /
/// [`crate::Prioritizer::prioritize_many`] calls.
#[derive(Debug, Default)]
pub struct PrioContext {
    /// Graph-layer scratch: timestamped visited marks, Kahn worklists,
    /// rank buffers and the shared reachability bitset.
    pub(crate) graph: GraphScratch,
    /// Shortcut arcs found by the reduce stage (cleared and refilled each
    /// run).
    pub(crate) shortcuts: Vec<(NodeId, NodeId)>,
    /// Pool of recycled worklist buffers for the decomposition's peel loop
    /// (failed block attempts, closure searches). See
    /// [`prio_graph::ScratchArena`].
    pub(crate) arena: ScratchArena,
}

impl PrioContext {
    /// An empty context; buffers grow on first use.
    pub fn new() -> PrioContext {
        PrioContext::default()
    }

    /// Number of shortcut arcs found by the most recent run through this
    /// context (diagnostic; mirrors `PrioStats::shortcuts_removed`).
    pub fn last_shortcut_count(&self) -> usize {
        self.shortcuts.len()
    }
}
