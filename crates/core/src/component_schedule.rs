//! Per-component scheduling (Recurse phase, Step 3).
//!
//! Each detached block gets a schedule of its non-sinks: a recognized
//! catalog family uses its explicit IC-optimal order; anything else falls
//! back to the paper's heuristic — "execute jobs in the order of
//! job-outdegree (and thus execute sinks last), breaking ties arbitrarily"
//! — implemented as *largest out-degree first among locally eligible
//! non-sinks*, with out-degrees taken in the full reduced dag `G'` (a
//! child outside the component still profits from an early parent), and
//! ties broken toward the smaller node index for determinism.

use crate::component::ScheduleSource;
use crate::decompose::Part;
use crate::eligibility::{partial_eligibility_profile, EligibilityTracker};
use crate::recognize::recognize;
use prio_graph::{Dag, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Chooses a non-sink schedule for `part`, returning the order (global
/// ids), its provenance, and the component-local eligibility profile
/// `E(0) ..= E(#non-sinks)`.
///
/// `optimal_search_limit` enables the extension beyond the paper: for an
/// unrecognized *bipartite* block with at most that many sources, run the
/// exhaustive IC-optimal-order search before falling back to the
/// out-degree heuristic (0 disables the search, reproducing the paper).
pub fn schedule_part(
    g: &Dag,
    part: &Part,
    optimal_search_limit: usize,
) -> (Vec<NodeId>, ScheduleSource, Vec<usize>) {
    let local = &part.local;
    let num_nonsinks = local.node_ids().filter(|&l| !local.is_sink(l)).count();
    if num_nonsinks == 0 {
        // Pure-sink block (isolated jobs): nothing to schedule; profile is
        // just E(0) = all nodes eligible.
        let profile = vec![local.num_nodes()];
        return (Vec::new(), ScheduleSource::Trivial, profile);
    }

    if let Some((family, local_order)) = recognize(local) {
        let profile = partial_eligibility_profile(local, &local_order);
        let global_order = local_order.iter().map(|&l| part.map.to_super(l)).collect();
        return (global_order, ScheduleSource::Catalog(family), profile);
    }

    if part.bipartite && num_nonsinks <= optimal_search_limit {
        if let Some(local_order) = crate::optimal::find_ic_optimal_source_order(local) {
            let profile = partial_eligibility_profile(local, &local_order);
            let global_order = local_order.iter().map(|&l| part.map.to_super(l)).collect();
            return (global_order, ScheduleSource::Searched, profile);
        }
    }

    // Out-degree heuristic over locally eligible non-sinks.
    let local_order = out_degree_order(g, part);
    let profile = partial_eligibility_profile(local, &local_order);
    let global_order = local_order.iter().map(|&l| part.map.to_super(l)).collect();
    (global_order, ScheduleSource::OutDegreeHeuristic, profile)
}

/// Largest-global-out-degree-first order of the component's non-sinks,
/// respecting component-local precedence.
fn out_degree_order(g: &Dag, part: &Part) -> Vec<NodeId> {
    let local = &part.local;
    let mut tracker = EligibilityTracker::new(local);
    // Max-heap on (global out-degree, Reverse(global id)).
    let mut heap: BinaryHeap<(usize, Reverse<NodeId>, NodeId)> = BinaryHeap::new();
    let push = |heap: &mut BinaryHeap<(usize, Reverse<NodeId>, NodeId)>, l: NodeId, part: &Part| {
        let global = part.map.to_super(l);
        heap.push((g.out_degree(global), Reverse(global), l));
    };
    for l in local.node_ids() {
        if !local.is_sink(l) && tracker.is_eligible(l) {
            push(&mut heap, l, part);
        }
    }
    let mut order = Vec::new();
    while let Some((_, _, l)) = heap.pop() {
        order.push(l);
        for newly in tracker.execute(l) {
            if !local.is_sink(newly) {
                push(&mut heap, newly, part);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, DecomposeOptions};
    use crate::families::Family;
    use prio_graph::Dag;

    fn single_part(dag: &Dag) -> Part {
        let dec = decompose(dag, DecomposeOptions::default());
        assert_eq!(dec.parts.len(), 1, "expected one component: {dag:?}");
        dec.parts.into_iter().next().unwrap()
    }

    #[test]
    fn catalog_component_uses_explicit_schedule() {
        let (dag, _) = crate::families::w_dag(3, 2);
        let part = single_part(&dag);
        let (order, source, profile) = schedule_part(&dag, &part, 0);
        assert!(matches!(
            source,
            ScheduleSource::Catalog(Family::W { s: 3, d: 2 })
        ));
        assert_eq!(order.len(), 3);
        // (3,2)-W profile: 3 sources, then +1 net per source executed.
        assert_eq!(profile, vec![3, 3, 3, 4]);
    }

    #[test]
    fn pure_sink_block_is_trivial() {
        let dag = Dag::from_arcs(1, &[]).unwrap();
        let part = single_part(&dag);
        let (order, source, profile) = schedule_part(&dag, &part, 0);
        assert!(order.is_empty());
        assert_eq!(source, ScheduleSource::Trivial);
        assert_eq!(profile, vec![1]);
    }

    #[test]
    fn heuristic_prefers_large_out_degree() {
        // Bipartite but irregular: u0 with 3 children, u1 with 1, u2 with
        // 2; u0 shares a child with u1 and u2 so the block is connected
        // and unrecognized.
        let dag = Dag::from_arcs(7, &[(0, 3), (0, 4), (0, 5), (1, 4), (2, 5), (2, 6)]).unwrap();
        let part = single_part(&dag);
        let (order, source, _) = schedule_part(&dag, &part, 0);
        assert_eq!(source, ScheduleSource::OutDegreeHeuristic);
        let order: Vec<u32> = order.iter().map(|u| u.0).collect();
        assert_eq!(order, vec![0, 2, 1], "descending out-degree: 3, 2, 1");
    }

    #[test]
    fn heuristic_respects_internal_precedence() {
        // Non-bipartite component forced via the general path: internal
        // node 2 must come after its parent 1 despite a big out-degree.
        // (See decompose tests for why this dag defeats the fast path.)
        let dag = Dag::from_arcs(6, &[(0, 4), (2, 4), (1, 2), (1, 5), (3, 5), (0, 3)]).unwrap();
        let dec = decompose(&dag, DecomposeOptions::default());
        assert_eq!(dec.parts.len(), 1, "entangled dag collapses to one part");
        let part = dec.parts.into_iter().next().unwrap();
        let (order, source, _) = schedule_part(&dag, &part, 0);
        assert_eq!(source, ScheduleSource::OutDegreeHeuristic);
        let pos: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, u)| (u.0, i)).collect();
        assert!(pos[&1] < pos[&2], "parent 1 before internal child 2");
        assert!(pos[&0] < pos[&3], "parent 0 before internal child 3");
        assert_eq!(order.len(), 4, "non-sinks only");
    }

    #[test]
    fn profile_counts_local_eligibility() {
        // Fig. 3's {c, d, e} component.
        let dag = Dag::from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let part = single_part(&dag);
        let (_, _, profile) = schedule_part(&dag, &part, 0);
        assert_eq!(profile, vec![1, 2]);
    }
}
