//! The pipeline error taxonomy, re-exported from `prio-ir`.
//!
//! The types themselves live in [`prio_ir::error`] so that `prio-core`
//! has no dependency on any concrete frontend: a parse failure arrives as
//! an [`ImportError`] carrying the rejecting frontend's
//! [`prio_ir::FormatId`], and the frontends (e.g. `prio-dagman`) convert
//! their native errors into it. Everything downstream of parsing —
//! [`PrioError::Graph`], [`PrioError::InternalInvariant`] — originates
//! here in the core.
//!
//! Stage names are shared with the observability spans
//! ([`prio_obs::stage`]), keeping error messages, `--timings` footers and
//! the §3.6 overhead table vocabulary identical.

pub use prio_ir::error::{ImportError, PrioError, Stage};

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::NodeId;

    #[test]
    fn stage_names_match_span_vocabulary() {
        for (stage, name) in [
            (Stage::Parse, "parse"),
            (Stage::Reduce, "reduce"),
            (Stage::Decompose, "decompose"),
            (Stage::Schedule, "schedule"),
            (Stage::Combine, "combine"),
            (Stage::Emit, "emit"),
        ] {
            assert_eq!(stage.name(), name);
            assert!(prio_obs::stage::PIPELINE.contains(&stage.name()));
        }
    }

    #[test]
    fn parse_errors_render_with_stage_prefix() {
        let e: PrioError = ImportError::at(prio_ir::FormatId::Dagman, 4, "JOB needs a file").into();
        assert_eq!(e.stage(), Stage::Parse);
        assert!(!e.is_internal());
        assert!(e.to_string().starts_with("parse:"));
    }

    #[test]
    fn internal_invariants_are_distinguished_from_input_errors() {
        let e = PrioError::InternalInvariant {
            stage: Stage::Emit,
            detail: "order is not a linear extension".into(),
            arc: Some((NodeId(3), NodeId(7))),
        };
        assert!(e.is_internal());
        let e: PrioError = prio_graph::GraphError::Cycle { on_cycle: 2 }.into();
        assert!(!e.is_internal());
        assert_eq!(e.stage(), Stage::Parse);
    }
}
