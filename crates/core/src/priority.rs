//! The quantitative `⊵_r` priority relation (Combine phase, Steps 4–5).
//!
//! Let components `Ci`, `Cj` have `si`, `sj` non-sinks and local
//! eligibility profiles `E_Σi`, `E_Σj` (sinks executed only after all
//! non-sinks). `Ci ⊵_r Cj` holds when for every split `(x, y)`:
//!
//! ```text
//! r · (E_Σi(x) + E_Σj(y))
//!     ≤ E_Σi(min{si, x+y}) + E_Σj((x+y) − min{si, x+y})
//! ```
//!
//! i.e. serving `Ci` first (to completion, then `Cj`) yields at least the
//! fraction `r` of the eligible jobs that *any* split of the same total
//! effort could have produced. The **priority of `Ci` over `Cj`** is the
//! largest such `r`, which always lies in `[0, 1]`; for bipartite dags with
//! IC-optimal schedules `⊵₁` coincides with the theory's exact `⊵`
//! relation.

use crate::profile::{ProfileClass, ProfileInterner};
use std::collections::HashMap;

/// Computes the priority of a component with profile `ei` over one with
/// profile `ej`: the largest `r` such that `Ci ⊵_r Cj`.
///
/// Profiles have length `si + 1` and `sj + 1` respectively. Runs in
/// `O(si · sj)`.
pub fn priority_over(ei: &[usize], ej: &[usize]) -> f64 {
    assert!(!ei.is_empty() && !ej.is_empty(), "profiles include E(0)");
    let si = ei.len() - 1;
    let mut r = 1.0f64;
    for x in 0..ei.len() {
        for y in 0..ej.len() {
            let lhs = (ei[x] + ej[y]) as f64;
            if lhs == 0.0 {
                continue; // constraint vacuous
            }
            let z = x + y;
            let xp = z.min(si);
            let yp = z - xp; // ≤ sj because z ≤ si + sj
            let rhs = (ei[xp] + ej[yp]) as f64;
            let ratio = rhs / lhs;
            if ratio < r {
                r = ratio;
            }
        }
    }
    r
}

/// Whether `Ci ⊵ Cj` in the exact (r = 1) sense — inequality (1) of the
/// paper, with profiles in place of the schedules.
pub fn has_priority_over(ei: &[usize], ej: &[usize]) -> bool {
    priority_over(ei, ej) >= 1.0
}

/// A cache of pairwise priorities keyed by profile class, so that the
/// thousands of identical components in a scientific dag cost one profile
/// comparison per *distinct* pair (§3.5 engineering).
#[derive(Debug, Default)]
pub struct PriorityCache {
    cache: HashMap<(ProfileClass, ProfileClass), f64>,
    /// Number of `priority_over` evaluations actually performed.
    pub misses: usize,
    /// Number of lookups served from the cache.
    pub hits: usize,
}

impl PriorityCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The priority of class `a` over class `b`, computing and caching on
    /// first use.
    pub fn priority(
        &mut self,
        interner: &ProfileInterner,
        a: ProfileClass,
        b: ProfileClass,
    ) -> f64 {
        if let Some(&p) = self.cache.get(&(a, b)) {
            self.hits += 1;
            return p;
        }
        self.misses += 1;
        let p = priority_over(interner.profile(a), interner.profile(b));
        self.cache.insert((a, b), p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_component_priorities() {
        // Component {a,b}: profile [1, 1]; component {c,d,e}: [1, 2].
        let ab = [1usize, 1];
        let cde = [1usize, 2];
        // Serving {c,d,e} first never loses eligibility: priority 1.
        assert!((priority_over(&cde, &ab) - 1.0).abs() < 1e-12);
        // Serving {a,b} first can lose a third: at (x,y) = (0,1) the best
        // split yields 3 eligible but a-first yields 2.
        assert!((priority_over(&ab, &cde) - 2.0 / 3.0).abs() < 1e-12);
        assert!(has_priority_over(&cde, &ab));
        assert!(!has_priority_over(&ab, &cde));
    }

    #[test]
    fn priority_is_at_most_one_and_nonnegative() {
        let profiles: Vec<Vec<usize>> = vec![
            vec![1, 1],
            vec![1, 2],
            vec![3, 2, 1, 3],
            vec![2, 4, 6, 3],
            vec![5],
        ];
        for a in &profiles {
            for b in &profiles {
                let p = priority_over(a, b);
                assert!((0.0..=1.0).contains(&p), "priority {p} out of range");
            }
        }
    }

    #[test]
    fn flat_profile_has_self_priority_one() {
        let e = [3usize, 3, 3, 3];
        assert!((priority_over(&e, &e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hump_shaped_profile_has_self_priority_below_one() {
        // Serving a hump-shaped component to completion before its twin is
        // worse than interleaving near both humps: at the split (1, 2) of
        // E = [2,3,4,2], finishing Ci first yields E(3)+E(0) = 4 while the
        // split itself yields 3+4 = 7, so the priority is 4/7.
        let e = [2usize, 3, 4, 2];
        let p = priority_over(&e, &e);
        assert!((p - 4.0 / 7.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn expansive_beats_reductive() {
        // An expansive profile (eligibility grows) vs a reductive one
        // (eligibility shrinks): the expansive component must be served
        // first, so its priority over the other is 1 and the reverse is < 1.
        let expansive = [1usize, 3, 5];
        let reductive = [3usize, 2, 1];
        assert!((priority_over(&expansive, &reductive) - 1.0).abs() < 1e-12);
        assert!(priority_over(&reductive, &expansive) < 1.0);
    }

    #[test]
    fn zero_profiles_are_vacuous() {
        // All-zero profiles produce no constraint; priority stays 1.
        assert_eq!(priority_over(&[0, 0], &[0]), 1.0);
    }

    #[test]
    fn cache_hits_and_misses() {
        let mut interner = ProfileInterner::new();
        let a = interner.intern(&[1, 2]);
        let b = interner.intern(&[1, 1]);
        let mut cache = PriorityCache::new();
        let p1 = cache.priority(&interner, a, b);
        let p2 = cache.priority(&interner, a, b);
        assert_eq!(p1, p2);
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.hits, 1);
        // Reverse direction is a distinct entry.
        let _ = cache.priority(&interner, b, a);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn transitivity_on_exact_priorities() {
        // ⊵ is transitive (per the theory); spot-check on a chain of
        // profiles where each dominates the next.
        let p1 = [1usize, 4];
        let p2 = [1usize, 2];
        let p3 = [1usize, 1];
        assert!(has_priority_over(&p1, &p2));
        assert!(has_priority_over(&p2, &p3));
        assert!(has_priority_over(&p1, &p3));
    }
}
