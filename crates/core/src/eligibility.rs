//! The eligibility engine.
//!
//! A job is **eligible** when it has not been executed and every one of its
//! parents has been executed (§2.1). `E_Σ(t)` — the number of eligible jobs
//! after the first `t` jobs of a schedule Σ have executed — is the quantity
//! the whole paper optimizes; this module computes it incrementally in
//! `O(arcs)` total over a full execution.

use prio_graph::{Dag, NodeId};

/// Incremental eligibility tracker over a fixed [`Dag`].
///
/// Starts with every source eligible; [`EligibilityTracker::execute`] marks
/// one job executed and promotes any children whose last missing parent it
/// was. Executing an ineligible or already-executed job is a logic error and
/// panics — schedules are supposed to be linear extensions.
#[derive(Debug, Clone)]
pub struct EligibilityTracker<'a> {
    dag: &'a Dag,
    /// Number of not-yet-executed parents per job.
    missing_parents: Vec<u32>,
    executed: Vec<bool>,
    eligible_count: usize,
    executed_count: usize,
}

impl<'a> EligibilityTracker<'a> {
    /// Creates a tracker with no job executed; every source is eligible.
    pub fn new(dag: &'a Dag) -> Self {
        let missing_parents: Vec<u32> = dag.node_ids().map(|u| dag.in_degree(u) as u32).collect();
        let eligible_count = missing_parents.iter().filter(|&&m| m == 0).count();
        EligibilityTracker {
            dag,
            missing_parents,
            executed: vec![false; dag.num_nodes()],
            eligible_count,
            executed_count: 0,
        }
    }

    /// The underlying dag.
    pub fn dag(&self) -> &Dag {
        self.dag
    }

    /// Whether `u` is currently eligible.
    #[inline]
    pub fn is_eligible(&self, u: NodeId) -> bool {
        !self.executed[u.index()] && self.missing_parents[u.index()] == 0
    }

    /// Whether `u` has been executed.
    #[inline]
    pub fn is_executed(&self, u: NodeId) -> bool {
        self.executed[u.index()]
    }

    /// The current number of eligible jobs — `E(t)` after `t` executions.
    #[inline]
    pub fn eligible_count(&self) -> usize {
        self.eligible_count
    }

    /// The number of jobs executed so far.
    #[inline]
    pub fn executed_count(&self) -> usize {
        self.executed_count
    }

    /// Whether every job has been executed.
    pub fn is_complete(&self) -> bool {
        self.executed_count == self.dag.num_nodes()
    }

    /// The currently eligible jobs, in index order.
    pub fn eligible_jobs(&self) -> Vec<NodeId> {
        self.dag
            .node_ids()
            .filter(|&u| self.is_eligible(u))
            .collect()
    }

    /// Executes `u`, returning the children that became eligible (in index
    /// order). Panics if `u` is not eligible.
    pub fn execute(&mut self, u: NodeId) -> Vec<NodeId> {
        assert!(
            self.is_eligible(u),
            "job {u:?} is not eligible (executed: {}, missing parents: {})",
            self.executed[u.index()],
            self.missing_parents[u.index()]
        );
        self.executed[u.index()] = true;
        self.executed_count += 1;
        self.eligible_count -= 1;
        let mut newly = Vec::new();
        for &v in self.dag.children(u) {
            let m = &mut self.missing_parents[v.index()];
            *m -= 1;
            if *m == 0 {
                self.eligible_count += 1;
                newly.push(v);
            }
        }
        newly
    }
}

/// Computes the full eligibility profile `E(0), E(1), …, E(n)` of executing
/// `order` on `dag`.
///
/// `order` must be a linear extension of `dag` (panics otherwise). The
/// returned vector has length `n + 1`; `E(0)` is the number of sources and
/// `E(n) = 0`.
pub fn eligibility_profile(dag: &Dag, order: &[NodeId]) -> Vec<usize> {
    assert_eq!(order.len(), dag.num_nodes(), "order must cover every job");
    let mut tracker = EligibilityTracker::new(dag);
    let mut profile = Vec::with_capacity(order.len() + 1);
    profile.push(tracker.eligible_count());
    for &u in order {
        tracker.execute(u);
        profile.push(tracker.eligible_count());
    }
    profile
}

/// Computes the eligibility profile of executing only a *prefix* of jobs
/// (used for component-local profiles over non-sinks): returns
/// `E(0) ..= E(prefix.len())`.
///
/// Jobs in `prefix` must each be eligible when reached.
pub fn partial_eligibility_profile(dag: &Dag, prefix: &[NodeId]) -> Vec<usize> {
    let mut tracker = EligibilityTracker::new(dag);
    let mut profile = Vec::with_capacity(prefix.len() + 1);
    profile.push(tracker.eligible_count());
    for &u in prefix {
        tracker.execute(u);
        profile.push(tracker.eligible_count());
    }
    profile
}

/// Naive recomputation of the eligible-job count for a given executed set —
/// the O(n + arcs)-per-call oracle used to cross-check the tracker in tests.
pub fn eligible_count_naive(dag: &Dag, executed: &[bool]) -> usize {
    dag.node_ids()
        .filter(|&u| !executed[u.index()] && dag.parents(u).iter().all(|p| executed[p.index()]))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_dag() -> Dag {
        // a(0) -> b(1), c(2) -> d(3), c(2) -> e(4)
        Dag::from_arcs(5, &[(0, 1), (2, 3), (2, 4)]).unwrap()
    }

    #[test]
    fn initial_state_has_sources_eligible() {
        let d = fig3_dag();
        let t = EligibilityTracker::new(&d);
        assert_eq!(t.eligible_count(), 2);
        assert_eq!(t.eligible_jobs(), vec![NodeId(0), NodeId(2)]);
        assert!(!t.is_complete());
    }

    #[test]
    fn execute_promotes_children() {
        let d = fig3_dag();
        let mut t = EligibilityTracker::new(&d);
        let newly = t.execute(NodeId(2));
        assert_eq!(newly, vec![NodeId(3), NodeId(4)]);
        assert_eq!(t.eligible_count(), 3); // a, d, e
        assert!(t.is_executed(NodeId(2)));
        assert!(!t.is_eligible(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "not eligible")]
    fn executing_ineligible_job_panics() {
        let d = fig3_dag();
        let mut t = EligibilityTracker::new(&d);
        t.execute(NodeId(1)); // b's parent a not executed
    }

    #[test]
    #[should_panic(expected = "not eligible")]
    fn double_execute_panics() {
        let d = fig3_dag();
        let mut t = EligibilityTracker::new(&d);
        t.execute(NodeId(0));
        t.execute(NodeId(0));
    }

    #[test]
    fn profile_of_fig3_prio_schedule() {
        let d = fig3_dag();
        // PRIO schedule of Fig. 3: c, a, b, d, e.
        let order = [NodeId(2), NodeId(0), NodeId(1), NodeId(3), NodeId(4)];
        assert_eq!(eligibility_profile(&d, &order), vec![2, 3, 3, 2, 1, 0]);
        // FIFO order: a, c, b, d, e.
        let order = [NodeId(0), NodeId(2), NodeId(1), NodeId(3), NodeId(4)];
        assert_eq!(eligibility_profile(&d, &order), vec![2, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn profile_ends_at_zero_and_starts_at_sources() {
        let d = Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let order = prio_graph::topo::topo_order(&d);
        let prof = eligibility_profile(&d, &order);
        assert_eq!(prof.len(), 7);
        assert_eq!(prof[0], d.sources().count());
        assert_eq!(*prof.last().unwrap(), 0);
    }

    #[test]
    fn tracker_matches_naive_oracle() {
        let d = Dag::from_arcs(
            8,
            &[
                (0, 3),
                (1, 3),
                (1, 4),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let order = prio_graph::topo::topo_order(&d);
        let mut tracker = EligibilityTracker::new(&d);
        let mut executed = vec![false; d.num_nodes()];
        assert_eq!(
            tracker.eligible_count(),
            eligible_count_naive(&d, &executed)
        );
        for &u in &order {
            tracker.execute(u);
            executed[u.index()] = true;
            assert_eq!(
                tracker.eligible_count(),
                eligible_count_naive(&d, &executed)
            );
        }
        assert!(tracker.is_complete());
    }

    #[test]
    fn partial_profile_stops_early() {
        let d = fig3_dag();
        let prof = partial_eligibility_profile(&d, &[NodeId(2)]);
        assert_eq!(prof, vec![2, 3]);
    }
}
