//! # prio-core — the paper's contribution: IC-optimality-inspired DAG
//! scheduling
//!
//! This crate implements the scheduling heuristic of Malewicz, Foster,
//! Rosenberg and Wilde (*"A Tool for Prioritizing DAGMan Jobs and Its
//! Evaluation"*, 2006): given any job DAG it produces a total order (the
//! **PRIO schedule**) that tries to keep the number of *eligible* jobs as
//! large as possible at every step of the computation, so that a grid server
//! rarely runs out of work to hand to arriving workers.
//!
//! The pipeline mirrors the paper's §3.1 exactly:
//!
//! 1. **Divide, Step 1** — remove shortcut arcs (transitive reduction,
//!    provided by `prio-graph`).
//! 2. **Divide, Step 2** — decompose the reduced dag `G'` into components:
//!    connected bipartite *building blocks* whose sources are sources of the
//!    remnant when possible (the engineered fast path of §3.5), otherwise
//!    containment-minimal closures `C(s)` ([`decompose`]).
//! 3. **Recurse, Step 3** — schedule each component: recognized bipartite
//!    families get their explicit IC-optimal schedules ([`families`],
//!    [`recognize`]); everything else gets the largest-out-degree-first
//!    heuristic ([`component_schedule`]).
//! 4. **Combine, Steps 4–6** — compute the quantitative `⊵_r` priority
//!    relation between component eligibility profiles ([`priority`]) and
//!    greedily execute the superdag source with the largest worst-case
//!    priority ([`combine`]), then emit all sinks of `G` last.
//!
//! The top-level entry point is [`prio::Prioritizer`] (or the convenience
//! function [`prio::prioritize`]). The FIFO baseline that DAGMan uses today
//! lives in [`fifo`], extra baselines in [`baselines`], and an exhaustive
//! IC-optimality checker used by the test-suite in [`optimal`].
//!
//! ```
//! use prio_core::prio::prioritize;
//! use prio_core::fifo::fifo_schedule;
//! use prio_core::eligibility::eligibility_profile;
//! use prio_graph::Dag;
//!
//! // The paper's Fig. 3 example: a -> b, c -> d, c -> e.
//! let mut b = prio_graph::DagBuilder::new();
//! let ids: Vec<_> = ["a", "b", "c", "d", "e"].iter().map(|l| b.add_node(*l)).collect();
//! b.add_arc(ids[0], ids[1]).unwrap();
//! b.add_arc(ids[2], ids[3]).unwrap();
//! b.add_arc(ids[2], ids[4]).unwrap();
//! let dag: Dag = b.build().unwrap();
//!
//! let prio = prioritize(&dag).unwrap();
//! let names: Vec<&str> = prio.schedule.order().iter().map(|&u| dag.label(u)).collect();
//! assert_eq!(names, ["c", "a", "b", "d", "e"]); // the PRIO schedule of Fig. 3
//!
//! let fifo = fifo_schedule(&dag);
//! let e_prio = eligibility_profile(&dag, prio.schedule.order());
//! let e_fifo = eligibility_profile(&dag, fifo.order());
//! assert!(e_prio.iter().zip(&e_fifo).all(|(p, f)| p >= f));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod combine;
pub mod component;
pub mod component_schedule;
pub mod context;
pub mod decompose;
pub mod eligibility;
pub mod error;
pub mod families;
pub mod fifo;
pub mod optimal;
pub mod prio;
pub mod priority;
pub mod profile;
pub mod recognize;
pub mod schedule;
pub mod theoretical;

pub use context::PrioContext;
pub use error::{ImportError, PrioError, Stage};
pub use prio::{prioritize, PrioOptions, PrioResult, Prioritizer};
// The workflow IR the pipeline consumes; re-exported so downstream crates
// can name it through `prio_core` without depending on `prio-ir` directly.
pub use prio_ir::{FormatId, Priorities, Workflow, WorkflowBuilder};
pub use schedule::Schedule;
