//! Property-based tests of the core theory machinery: the `⊵` relation,
//! the recognizers and the eligibility engine, on randomly generated
//! bipartite blocks.

use prio_core::eligibility::{
    eligible_count_naive, partial_eligibility_profile, EligibilityTracker,
};
use prio_core::optimal::{find_ic_optimal_source_order, is_source_order_ic_optimal};
use prio_core::priority::{has_priority_over, priority_over};
use prio_core::recognize::recognize;
use prio_graph::{Dag, NodeId};
use proptest::prelude::*;

/// Random connected-ish bipartite dag.
fn arb_bipartite(max_side: usize) -> impl Strategy<Value = Dag> {
    ((2..=max_side), (2..=max_side)).prop_flat_map(|(s, t)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), s), t).prop_map(
            move |rows| {
                let mut arcs = Vec::new();
                for (j, row) in rows.iter().enumerate() {
                    let mut any_parent = false;
                    for (i, &bit) in row.iter().enumerate() {
                        if bit {
                            arcs.push((i as u32, (s + j) as u32));
                            any_parent = true;
                        }
                    }
                    if !any_parent {
                        arcs.push(((j % s) as u32, (s + j) as u32));
                    }
                }
                Dag::from_arcs(s + t, &arcs).unwrap()
            },
        )
    })
}

/// The profile of a block under its best (searched) IC-optimal order, if
/// one exists.
fn optimal_profile(dag: &Dag) -> Option<Vec<usize>> {
    let order = find_ic_optimal_source_order(dag)?;
    Some(partial_eligibility_profile(dag, &order))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The `⊵` (r = 1) relation is transitive across blocks that have
    /// IC-optimal schedules — the property the theory's Step 6 rests on.
    #[test]
    fn exact_priority_is_transitive(
        a in arb_bipartite(6),
        b in arb_bipartite(6),
        c in arb_bipartite(6),
    ) {
        let (pa, pb, pc) = match (optimal_profile(&a), optimal_profile(&b), optimal_profile(&c)) {
            (Some(pa), Some(pb), Some(pc)) => (pa, pb, pc),
            _ => return Ok(()), // some block admits no IC-optimal schedule
        };
        if has_priority_over(&pa, &pb) && has_priority_over(&pb, &pc) {
            prop_assert!(
                has_priority_over(&pa, &pc),
                "⊵ not transitive: {pa:?} ⊵ {pb:?} ⊵ {pc:?} but not {pa:?} ⊵ {pc:?}"
            );
        }
    }

    /// Priorities are well-defined: in [0, 1], and 1 on the diagonal
    /// whenever serving the block to completion first is harmless
    /// (which `⊵_r` guarantees at r = priority).
    #[test]
    fn priorities_are_bounded(a in arb_bipartite(6), b in arb_bipartite(6)) {
        let pa = partial_eligibility_profile(&a, &fifo_sources(&a));
        let pb = partial_eligibility_profile(&b, &fifo_sources(&b));
        let r = priority_over(&pa, &pb);
        prop_assert!((0.0..=1.0).contains(&r));
        let r = priority_over(&pb, &pa);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// Whenever the recognizer fires, its order is IC-optimal — the
    /// recognizers never mislabel a block.
    #[test]
    fn recognizer_orders_are_always_ic_optimal(dag in arb_bipartite(7)) {
        if let Some((_, order)) = recognize(&dag) {
            prop_assert_eq!(is_source_order_ic_optimal(&dag, &order), Some(true));
        }
    }

    /// The searched order (when it exists) is verified IC-optimal, and
    /// its nonexistence means no source order attains the coverage curve.
    #[test]
    fn search_is_sound(dag in arb_bipartite(7)) {
        match find_ic_optimal_source_order(&dag) {
            Some(order) => {
                prop_assert_eq!(is_source_order_ic_optimal(&dag, &order), Some(true));
            }
            None => {
                // Spot-check: the index order must then be suboptimal.
                let sources: Vec<NodeId> = dag.sources().collect();
                prop_assert_eq!(
                    is_source_order_ic_optimal(&dag, &sources),
                    Some(false)
                );
            }
        }
    }

    /// The incremental eligibility tracker always matches the naive
    /// recomputation, on bipartite blocks driven by arbitrary valid
    /// executions.
    #[test]
    fn tracker_matches_oracle_on_random_blocks(dag in arb_bipartite(7)) {
        let order = prio_graph::topo::topo_order(&dag);
        let mut tracker = EligibilityTracker::new(&dag);
        let mut executed = vec![false; dag.num_nodes()];
        for &u in &order {
            tracker.execute(u);
            executed[u.index()] = true;
            prop_assert_eq!(
                tracker.eligible_count(),
                eligible_count_naive(&dag, &executed)
            );
        }
    }
}

/// Sources in index order (a valid non-sink prefix for bipartite dags).
fn fifo_sources(dag: &Dag) -> Vec<NodeId> {
    dag.node_ids().filter(|&u| dag.out_degree(u) > 0).collect()
}
