//! Determinism of the parallel Step 3: `threads: N` must be bit-identical
//! to `threads: 1` — same schedule, same stats, same component order — on
//! every workload generator and on random dags.
//!
//! This is the contract that makes `--threads` safe to expose: the worker
//! pool only changes *when* components are scheduled, never *what* is
//! produced, because results are placed back by component index before the
//! combine step runs.

use prio_core::prio::{PrioOptions, Prioritizer};
use prio_graph::Dag;
use prio_workloads::random_dag::{self, LayeredParams};
use prio_workloads::spec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn with_threads(threads: usize) -> Prioritizer {
    Prioritizer::with_options(PrioOptions {
        threads,
        ..PrioOptions::default()
    })
}

/// Asserts that the serial and threaded pipelines agree on everything
/// observable: schedule, per-stage stats, and the combined component order.
fn assert_thread_invariant(dag: &Dag, label: &str) {
    let serial = with_threads(1).prioritize(dag).unwrap();
    for threads in [2, 4, 7] {
        let parallel = with_threads(threads).prioritize(dag).unwrap();
        assert_eq!(
            serial.schedule, parallel.schedule,
            "{label}: schedule differs at threads={threads}"
        );
        assert_eq!(
            serial.stats, parallel.stats,
            "{label}: stats differ at threads={threads}"
        );
        assert_eq!(
            serial.component_order, parallel.component_order,
            "{label}: component order differs at threads={threads}"
        );
    }
}

#[test]
fn workload_suite_is_thread_invariant() {
    // AIRSN, Inspiral, Montage, SDSS — scaled down so the whole suite
    // stays fast, but large enough for many components per dag.
    for w in spec::scaled_suite(0.05) {
        assert_thread_invariant(w.dag(), w.name);
    }
}

#[test]
fn layered_random_dags_are_thread_invariant() {
    let mut rng = SmallRng::seed_from_u64(0xDA6);
    for (layers, width, arc_prob) in [(3, 6, 0.25), (5, 9, 0.4), (8, 4, 0.6)] {
        let dag = random_dag::layered(
            LayeredParams {
                layers,
                width,
                arc_prob,
            },
            &mut rng,
        );
        assert_thread_invariant(&dag, &format!("layered {layers}x{width}@{arc_prob}"));
    }
}

#[test]
fn forward_pair_random_dags_are_thread_invariant() {
    let mut rng = SmallRng::seed_from_u64(0xF0D);
    for (n, arc_prob) in [(12, 0.15), (24, 0.3), (40, 0.08)] {
        let dag = random_dag::forward_pairs(n, arc_prob, &mut rng);
        assert_thread_invariant(&dag, &format!("forward_pairs n={n}@{arc_prob}"));
    }
}

/// Random DAG strategy: arcs only between `i < j`, like the workspace
/// pipeline property tests.
fn arb_dag(max_n: usize, density: f64) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let k = pairs.len();
        proptest::collection::vec(proptest::bool::weighted(density), k).prop_map(move |mask| {
            let arcs: Vec<(u32, u32)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(&p, _)| p)
                .collect();
            Dag::from_arcs(n, &arcs).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_are_thread_invariant(dag in arb_dag(24, 0.25)) {
        let serial = with_threads(1).prioritize(&dag).unwrap();
        let parallel = with_threads(4).prioritize(&dag).unwrap();
        prop_assert_eq!(&serial.schedule, &parallel.schedule);
        prop_assert_eq!(&serial.stats, &parallel.stats);
        prop_assert_eq!(&serial.component_order, &parallel.component_order);
    }
}
