//! Observational equivalence of the CSR `Dag` against a reference
//! nested-`Vec` adjacency model.
//!
//! The CSR layout (flat neighbour arrays + offset tables) is a pure
//! representation change; these tests pin that down by rebuilding the
//! adjacency the obvious way — one `Vec` per node — from the same arc list
//! and demanding identical observable behaviour: children/parents slices,
//! `has_arc`, topological order, the shortcut-arc set, and the final PRIO
//! priorities. Generators cover the paper's four workflow families
//! (AIRSN, Inspiral, Montage, SDSS) plus seeded random dags, and every
//! dag is also rebuilt from a shuffled arc list to prove insertion order
//! cannot leak into the layout.

use prio_core::prio::Prioritizer;
use prio_graph::reduction::shortcut_arcs;
use prio_graph::topo::topo_order;
use prio_graph::{Dag, DagBuilder, NodeId};
use prio_workloads::airsn::airsn;
use prio_workloads::inspiral::{inspiral, InspiralParams};
use prio_workloads::montage::{montage, MontageParams};
use prio_workloads::random_dag::{forward_pairs, layered, LayeredParams};
use prio_workloads::sdss::{sdss, SdssParams};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fisher–Yates, since the rand shim has no `seq` module.
fn shuffle<T>(items: &mut [T], rng: &mut SmallRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

/// The reference model: per-node child and parent lists, built naively.
struct NestedVecModel {
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
}

impl NestedVecModel {
    fn from_arcs(n: usize, arcs: &[(NodeId, NodeId)]) -> Self {
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for &(u, v) in arcs {
            children[u.index()].push(v);
            parents[v.index()].push(u);
        }
        for list in children.iter_mut().chain(parents.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        NestedVecModel { children, parents }
    }
}

/// Rebuilds `dag` through `DagBuilder` with its arcs fed in `order`.
fn rebuild_with_arc_order(dag: &Dag, order: &[(NodeId, NodeId)]) -> Dag {
    let mut b = DagBuilder::with_capacity(dag.num_nodes(), order.len());
    let ids: Vec<NodeId> = dag.node_ids().map(|u| b.add_node(dag.label(u))).collect();
    for &(u, v) in order {
        b.add_arc(ids[u.index()], ids[v.index()]).expect("same arc");
    }
    b.build().expect("same dag is acyclic")
}

/// The full observational check of one dag against the reference model
/// and against a shuffled-insertion-order rebuild of itself.
fn assert_csr_matches_reference(dag: &Dag, seed: u64) {
    let arcs: Vec<(NodeId, NodeId)> = dag.arcs().collect();
    let model = NestedVecModel::from_arcs(dag.num_nodes(), &arcs);

    // Adjacency slices match the nested-Vec model node by node.
    for u in dag.node_ids() {
        assert_eq!(
            dag.children(u),
            &model.children[u.index()][..],
            "children of {u:?}"
        );
        assert_eq!(
            dag.parents(u),
            &model.parents[u.index()][..],
            "parents of {u:?}"
        );
        assert_eq!(dag.out_degree(u), model.children[u.index()].len());
        assert_eq!(dag.in_degree(u), model.parents[u.index()].len());
    }

    // has_arc agrees with the model on every arc and on a band of
    // near-diagonal non-arcs (full n² would swamp the larger workloads).
    for &(u, v) in &arcs {
        assert!(dag.has_arc(u, v));
    }
    for u in dag.node_ids() {
        for off in 1..=4u32 {
            let v = NodeId(u.0.wrapping_add(off));
            if (v.index()) < dag.num_nodes() {
                assert_eq!(
                    dag.has_arc(u, v),
                    model.children[u.index()].contains(&v),
                    "has_arc({u:?}, {v:?})"
                );
            }
        }
    }

    // Insertion order cannot leak into the layout: a rebuild from a
    // shuffled arc list is equal in every observable way.
    let mut shuffled = arcs.clone();
    shuffle(&mut shuffled, &mut SmallRng::seed_from_u64(seed));
    let rebuilt = rebuild_with_arc_order(dag, &shuffled);
    assert_eq!(&rebuilt, dag, "shuffled-insertion rebuild differs");

    // Derived observations: topo order, shortcut set, final priorities.
    assert_eq!(topo_order(&rebuilt), topo_order(dag));
    assert_eq!(shortcut_arcs(&rebuilt), shortcut_arcs(dag));
    let p = Prioritizer::new();
    let a = p.prioritize(dag).expect("prioritizes");
    let b = p.prioritize(&rebuilt).expect("prioritizes");
    assert_eq!(a.schedule, b.schedule, "final priorities differ");
    assert_eq!(a.stats, b.stats);
}

#[test]
fn workload_families_match_reference_model() {
    // Scaled-down instances of each family: same shapes (ring, fan-in,
    // diff overlap, target chains), a debug-build-friendly node count —
    // the paper-sized SDSS alone costs minutes per prioritize here.
    let dags = [
        ("airsn", airsn(6)),
        (
            "inspiral",
            inspiral(InspiralParams {
                pre_width: 40,
                ring_k: 33,
                post_width: 52,
            }),
        ),
        (
            "montage",
            montage(MontageParams {
                images: 24,
                tiles: 3,
            }),
        ),
        (
            "sdss",
            sdss(SdssParams {
                fields: 40,
                targets: 270,
                extra_chain: 2,
            }),
        ),
    ];
    for (i, (name, dag)) in dags.into_iter().enumerate() {
        assert!(dag.num_nodes() > 0, "{name} generated an empty dag");
        assert_csr_matches_reference(&dag, 0xC5E0 + i as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_layered_dags_match_reference_model(
        seed in any::<u64>(),
        layers in 1usize..6,
        width in 1usize..8,
        arc_prob_pct in 5u32..90,
    ) {
        let p = LayeredParams { layers, width, arc_prob: f64::from(arc_prob_pct) / 100.0 };
        let dag = layered(p, &mut SmallRng::seed_from_u64(seed));
        assert_csr_matches_reference(&dag, seed ^ 0xABCD);
    }

    #[test]
    fn random_forward_pair_dags_match_reference_model(
        seed in any::<u64>(),
        n in 1usize..24,
        arc_prob_pct in 0u32..70,
    ) {
        let dag = forward_pairs(n, f64::from(arc_prob_pct) / 100.0, &mut SmallRng::seed_from_u64(seed));
        assert_csr_matches_reference(&dag, seed ^ 0x1234);
    }
}
