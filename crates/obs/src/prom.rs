//! Prometheus text exposition (version 0.0.4) of the metrics registry.
//!
//! `--metrics-out <file>` writes one snapshot at process exit — the
//! ready-made scrape surface for the future `prio serve` daemon, and a
//! machine-readable artifact CI can upload next to trace smoke output.
//!
//! Mapping: registry counters become `counter` samples, gauges become
//! `gauge` samples, and histograms are exposed as `summary` families
//! (quantile-labelled p50/p90/p99 samples plus `_count`/`_sum`; the
//! log-bucketed histogram keeps exact count/mean, so `_sum` is
//! `mean * count`). Metric names are mangled dot→underscore with a
//! `prio_` prefix (`sim.engine.events` → `prio_sim_engine_events`).

use std::fmt::Write as _;

use crate::metrics;

/// Mangles a registry metric name into a legal Prometheus name:
/// `prio_` prefix, dots (and any other non `[a-zA-Z0-9_]`) become
/// underscores.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("prio_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

/// Renders the full registry (counters, gauges, histogram summaries) in
/// Prometheus text format. Deterministic: families appear sorted by
/// name, as the registry snapshot already guarantees.
pub fn render_snapshot() -> String {
    let mut out = String::new();
    for record in metrics::metrics_snapshot() {
        let name = prom_name(record.name);
        let kind = if record.is_gauge { "gauge" } else { "counter" };
        let _ = writeln!(out, "# HELP {name} prio metric {}", record.name);
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {}", record.value);
    }
    for record in metrics::histograms_snapshot() {
        let name = prom_name(record.name);
        let s = &record.summary;
        let _ = writeln!(out, "# HELP {name} prio histogram {}", record.name);
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", s.p50);
        let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", s.p90);
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", s.p99);
        let _ = writeln!(out, "{name}_sum {}", s.mean * s.count as f64);
        let _ = writeln!(out, "{name}_count {}", s.count);
    }
    out
}

/// Writes [`render_snapshot`] to `path`, creating or truncating it.
pub fn write_snapshot(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_mangled_with_the_prio_prefix() {
        assert_eq!(prom_name("sim.engine.events"), "prio_sim_engine_events");
        assert_eq!(
            prom_name("obs.sink.dropped_events"),
            "prio_obs_sink_dropped_events"
        );
        assert_eq!(prom_name("weird-name.0"), "prio_weird_name_0");
    }

    #[test]
    fn snapshot_exposes_counters_gauges_and_histogram_summaries() {
        metrics::counter("test.prom.counter").add(7);
        metrics::gauge("test.prom.gauge").record_max(42);
        metrics::histogram("test.prom.hist").record(100);
        let text = render_snapshot();

        assert!(text.contains("# TYPE prio_test_prom_counter counter"));
        assert!(
            text.contains("prio_test_prom_counter 7") || text.contains("prio_test_prom_counter ")
        );
        assert!(text.contains("# TYPE prio_test_prom_gauge gauge"));
        assert!(text.contains("# TYPE prio_test_prom_hist summary"));
        assert!(text.contains("prio_test_prom_hist{quantile=\"0.5\"}"));
        assert!(text.contains("prio_test_prom_hist_count "));
        assert!(text.contains("prio_test_prom_hist_sum "));

        // Exposition-format shape: every non-comment line is
        // `name[{labels}] value` with a parseable numeric value.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP") || line.starts_with("# TYPE"));
                continue;
            }
            let (_name, value) = line.rsplit_once(' ').expect("sample line");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        metrics::counter("test.prom.det").add(1);
        assert_eq!(render_snapshot(), render_snapshot());
    }
}
