//! A registry of named atomic counters, high-water-mark gauges, and
//! log-bucketed histograms.
//!
//! Names are `&'static str` dot-paths of exactly three segments,
//! `crate.subsystem.metric` (`sim.engine.events_processed`,
//! `core.combine.priority_cache_hits`); each segment is lowercase
//! `[a-z0-9_]+`. [`name_follows_convention`] checks the convention and a
//! unit test enforces it over the registry. The first use of a name
//! allocates the metric, later uses return the same `&'static` handle,
//! so hot paths can look a metric up once and then touch only an atomic.

use crate::hist::{Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Stripes per counter. A power of two a little above typical worker
/// counts: parallel Step 3 and concurrent simulator replicates run at
/// most a few threads per core group, so 16 stripes keep the collision
/// probability (two hot threads sharing a stripe) low while a snapshot
/// still only sums 16 loads.
const STRIPES: usize = 16;

/// One stripe, padded to its own cache line (two lines on aarch64, where
/// prefetch pairs lines) so concurrent writers on different stripes never
/// ping-pong ownership of shared lines.
#[derive(Debug, Default)]
#[repr(align(128))]
struct Stripe(AtomicU64);

/// The calling thread's stripe index: assigned round-robin on first use,
/// so up to [`STRIPES`] concurrent threads write disjoint cache lines.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// A monotonically increasing counter, striped across per-thread cache
/// lines: writers touch only their own stripe's atomic, a snapshot sums
/// all stripes. Increments are never lost; a `get` concurrent with
/// writers sees some monotone intermediate total.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// Adds `n` to the calling thread's stripe.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value: the sum over all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// An atomic gauge that remembers the largest value recorded (a
/// high-water mark) — e.g. the completion-heap size of the simulator.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Records `v`, keeping the maximum seen.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The largest value recorded.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    // The map holds only `&'static` handles, so a panic mid-insert cannot
    // leave it inconsistent — recover from poisoning rather than cascade.
    match REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The counter named `name`, allocated on first use. Panics if `name` is
/// already registered as another kind.
pub fn counter(name: &'static str) -> &'static Counter {
    match registry()
        .entry(name)
        .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::default()))))
    {
        Metric::Counter(c) => c,
        other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
    }
}

/// The gauge named `name`, allocated on first use. Panics if `name` is
/// already registered as another kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    match registry()
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::default()))))
    {
        Metric::Gauge(g) => g,
        other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
    }
}

/// The histogram named `name`, allocated on first use. Panics if `name`
/// is already registered as another kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    match registry()
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
    {
        Metric::Histogram(h) => h,
        other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
    }
}

/// One row of a [`metrics_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRecord {
    /// The metric name.
    pub name: &'static str,
    /// Its current value.
    pub value: u64,
    /// `true` for gauges (high-water marks), `false` for counters.
    pub is_gauge: bool,
}

/// A snapshot of every registered counter and gauge, sorted by name
/// (histograms have their own shape; see [`histograms_snapshot`]).
pub fn metrics_snapshot() -> Vec<MetricRecord> {
    registry()
        .iter()
        .filter_map(|(&name, metric)| match metric {
            Metric::Counter(c) => Some(MetricRecord {
                name,
                value: c.get(),
                is_gauge: false,
            }),
            Metric::Gauge(g) => Some(MetricRecord {
                name,
                value: g.get(),
                is_gauge: true,
            }),
            Metric::Histogram(_) => None,
        })
        .collect()
}

/// One row of a [`histograms_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramRecord {
    /// The metric name.
    pub name: &'static str,
    /// Its current five-number summary.
    pub summary: HistogramSummary,
}

/// A snapshot of every registered histogram's summary, sorted by name.
pub fn histograms_snapshot() -> Vec<HistogramRecord> {
    registry()
        .iter()
        .filter_map(|(&name, metric)| match metric {
            Metric::Histogram(h) => Some(HistogramRecord {
                name,
                summary: h.summary(),
            }),
            _ => None,
        })
        .collect()
}

/// Whether `name` follows the metric-naming convention: exactly three
/// dot-separated segments (`crate.subsystem.metric`), each a non-empty
/// run of lowercase `[a-z0-9_]`.
pub fn name_follows_convention(name: &str) -> bool {
    let mut segments = 0;
    for seg in name.split('.') {
        segments += 1;
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
    }
    segments == 3
}

/// Every registered metric name (counters, gauges, and histograms),
/// sorted. Used by the naming-convention test and `prio report`'s
/// diagnostics.
pub fn registered_names() -> Vec<&'static str> {
    registry().keys().copied().collect()
}

/// Zeroes every registered counter, gauge, and histogram (names stay
/// registered).
pub fn reset_metrics() {
    for metric in registry().values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metrics are process-global and tests run concurrently, so every test
    // uses names unique to itself.

    #[test]
    fn counter_handle_is_stable_and_accumulates() {
        let a = counter("test.metrics.stable");
        let b = counter("test.metrics.stable");
        assert!(std::ptr::eq(a, b), "same name must yield the same handle");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_keeps_high_water_mark() {
        let g = gauge("test.metrics.hwm");
        g.record_max(3);
        g.record_max(9);
        g.record_max(5);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        // The multi-threaded registry contract the `--threads` simulate
        // path relies on: N threads × M increments must all land.
        let c = counter("test.metrics.concurrent");
        let before = c.get();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn concurrent_first_use_registers_once() {
        // Many threads racing to create the same name must all get the
        // same counter.
        let handles: Vec<&'static Counter> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| counter("test.metrics.race")))
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for h in &handles[1..] {
            assert!(std::ptr::eq(handles[0], *h));
        }
    }

    #[test]
    fn snapshot_lists_registered_metrics() {
        counter("test.metrics.snap_counter").add(7);
        gauge("test.metrics.snap_gauge").record_max(2);
        let snap = metrics_snapshot();
        let c = snap
            .iter()
            .find(|m| m.name == "test.metrics.snap_counter")
            .unwrap();
        assert!(!c.is_gauge);
        assert!(c.value >= 7);
        let g = snap
            .iter()
            .find(|m| m.name == "test.metrics.snap_gauge")
            .unwrap();
        assert!(g.is_gauge);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind");
        gauge("test.metrics.kind");
    }

    #[test]
    #[should_panic(expected = "is a histogram, not a counter")]
    fn histogram_kind_mismatch_panics() {
        histogram("test.metrics.histkind");
        counter("test.metrics.histkind");
    }

    #[test]
    fn histogram_handle_is_stable_and_summarizes() {
        let a = histogram("test.metrics.hist");
        let b = histogram("test.metrics.hist");
        assert!(std::ptr::eq(a, b));
        for v in [1u64, 2, 3, 1_000] {
            a.record(v);
        }
        let snap = histograms_snapshot();
        let row = snap.iter().find(|h| h.name == "test.metrics.hist").unwrap();
        assert!(row.summary.count >= 4);
        assert!(row.summary.max >= 1_000);
        // Histograms are excluded from the scalar snapshot.
        assert!(metrics_snapshot()
            .iter()
            .all(|m| m.name != "test.metrics.hist"));
    }

    #[test]
    fn naming_convention_accepts_three_lowercase_segments() {
        for good in [
            "sim.engine.events_processed",
            "core.combine.priority_cache_hits",
            "graph.reduce.shortcut_arcs_removed",
            "test.metrics.x9_y",
        ] {
            assert!(name_follows_convention(good), "{good} should pass");
        }
        for bad in [
            "sim.runs",                   // two segments
            "core.a.b.c",                 // four segments
            "Sim.engine.runs",            // uppercase
            "sim.engine.",                // empty segment
            "sim..runs",                  // empty segment
            "sim.engine.runs-per-second", // hyphen
            "sim engine runs",            // no dots
        ] {
            assert!(!name_follows_convention(bad), "{bad} should fail");
        }
    }

    #[test]
    fn every_registered_metric_follows_the_convention() {
        // The registry is process-global, so by the time this runs it
        // holds whatever names other tests in this process registered —
        // the point: *all* of them must follow `crate.subsystem.metric`.
        let offenders: Vec<_> = registered_names()
            .into_iter()
            .filter(|n| !name_follows_convention(n))
            .collect();
        assert!(
            offenders.is_empty(),
            "metric names must be crate.subsystem.metric: {offenders:?}"
        );
    }

    #[test]
    fn striped_counter_hammer_snapshot_equals_sum_of_increments() {
        // The sharded-counter contract: with many threads adding through
        // disjoint stripes, the snapshot (sum over stripes) must equal
        // the exact number of increments — nothing lost to striping.
        const THREADS: u64 = 16;
        const PER_THREAD: u64 = 20_000;
        let c = counter("test.metrics.striped_hammer");
        let before = c.get();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, THREADS * PER_THREAD);
        // More than one stripe actually absorbed writes (16 threads over
        // 16 round-robin stripes cannot all collide on one).
        let touched = c
            .stripes
            .iter()
            .filter(|s| s.0.load(Ordering::Relaxed) > 0)
            .count();
        assert!(touched > 1, "expected striping, all writes hit one stripe");
    }

    #[test]
    fn striped_counter_snapshots_are_monotone_under_writers() {
        // A reader concurrent with writers must see non-decreasing
        // totals (each stripe is monotone, and the sum of monotone
        // sequences read in any interleaving stays monotone).
        let c = counter("test.metrics.striped_monotone");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50_000 {
                        c.inc();
                    }
                });
            }
            scope.spawn(|| {
                let mut last = 0;
                for _ in 0..1_000 {
                    let now = c.get();
                    assert!(now >= last, "snapshot went backwards: {now} < {last}");
                    last = now;
                }
            });
        });
        assert_eq!(c.get(), 200_000);
    }

    #[test]
    fn striped_counter_reset_zeroes_every_stripe() {
        let c = counter("test.metrics.striped_reset");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| c.add(3));
            }
        });
        assert_eq!(c.get(), 24);
        c.reset();
        assert_eq!(c.get(), 0);
        assert!(c.stripes.iter().all(|s| s.0.load(Ordering::Relaxed) == 0));
    }

    #[test]
    fn concurrent_mixed_hammer_loses_nothing() {
        // The registry contract under concurrent writers of every metric
        // kind: N threads hammering one counter, one gauge, and one
        // histogram through registry lookups (not cached handles) must
        // lose no increment, no high-water mark, and no sample.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        let c0 = counter("test.metrics.hammer_counter").get();
        let h0 = histogram("test.metrics.hammer_hist").count();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter("test.metrics.hammer_counter").inc();
                        gauge("test.metrics.hammer_gauge").record_max(t * PER_THREAD + i);
                        histogram("test.metrics.hammer_hist").record(i);
                    }
                });
            }
        });
        assert_eq!(
            counter("test.metrics.hammer_counter").get() - c0,
            THREADS * PER_THREAD,
            "lost counter increments"
        );
        assert_eq!(
            gauge("test.metrics.hammer_gauge").get(),
            THREADS * PER_THREAD - 1,
            "lost gauge high-water mark"
        );
        assert_eq!(
            histogram("test.metrics.hammer_hist").count() - h0,
            THREADS * PER_THREAD,
            "lost histogram samples"
        );
    }
}
