//! A structured JSONL event sink: one JSON object per line, written to a
//! file or stderr behind a mutex so concurrent simulator workers can share
//! one sink.
//!
//! Every line is an object with a `type` field. The sink itself emits
//! `meta`, `span`, `counter`, and `gauge` lines; `prio-sim` appends its
//! trace-event lines (`batch_arrived`, `job_assigned`, `job_completed`,
//! `job_failed`) through [`JsonlSink::write_line`].

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::JsonObject;
use crate::{metrics, span};

/// A line-oriented JSON sink. Cheap to share (`&JsonlSink` is `Send +
/// Sync`); each line is written atomically with respect to other writers.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    /// Where the lines go, for human-readable reporting.
    target: String,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("target", &self.target)
            .finish()
    }
}

impl JsonlSink {
    /// A sink appending lines to `path` (truncating an existing file).
    pub fn to_file(path: &Path) -> io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(Box::new(BufWriter::new(file))),
            target: path.display().to_string(),
        })
    }

    /// A sink writing lines to stderr.
    pub fn to_stderr() -> JsonlSink {
        JsonlSink {
            out: Mutex::new(Box::new(io::stderr())),
            target: "stderr".into(),
        }
    }

    /// A sink writing into any `Write` (used by tests to capture output).
    pub fn to_writer(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(writer),
            target: "writer".into(),
        }
    }

    /// Where this sink writes (a path, `stderr`, or `writer`).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Writes one pre-serialized JSON object as a line. The caller
    /// guarantees `line` is a single-line JSON object; use
    /// [`JsonObject`] to build one. A payload with an embedded newline
    /// would silently corrupt the JSONL stream (every consumer splits on
    /// `\n`), so it is rejected with [`io::ErrorKind::InvalidData`] —
    /// in release builds too, where a `debug_assert!` would vanish.
    pub fn write_line(&self, line: &str) -> io::Result<()> {
        if line.contains('\n') || line.contains('\r') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "JSONL lines must not contain embedded newlines",
            ));
        }
        let mut out = self.out.lock().expect("sink lock");
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")
    }

    /// Writes a block of already newline-terminated JSONL lines in one
    /// locked write — the trace pipeline's writer thread batches drained
    /// records so the per-line mutex/IO cost amortizes across the batch.
    /// The caller (the pipeline, which validates the single-line
    /// contract per record before appending to the batch) guarantees the
    /// block is well-formed: complete lines, each ending in `\n`.
    pub fn write_batch(&self, block: &str) -> io::Result<()> {
        debug_assert!(
            block.is_empty() || block.ends_with('\n'),
            "batch must hold complete newline-terminated lines"
        );
        let mut out = self.out.lock().expect("sink lock");
        out.write_all(block.as_bytes())
    }

    /// Writes a `meta` line identifying the producing command.
    pub fn write_meta(&self, command: &str, detail: &str) -> io::Result<()> {
        self.write_line(
            &JsonObject::typed("meta")
                .str("command", command)
                .str("detail", detail)
                .finish(),
        )
    }

    /// Writes one `span` line per recorded span path, including the
    /// latency percentiles of the per-span duration histogram (schema
    /// v2).
    pub fn write_span_snapshot(&self) -> io::Result<()> {
        for record in span::snapshot() {
            let ns_to_ms = |ns: u64| ns as f64 / 1e6;
            let mut obj = JsonObject::typed("span")
                .str("path", &record.path)
                .u64("count", record.stat.count)
                .f64("total_ms", record.stat.total.as_secs_f64() * 1e3)
                .f64("max_ms", record.stat.max.as_secs_f64() * 1e3)
                .f64("p50_ms", ns_to_ms(record.latency_ns.p50))
                .f64("p90_ms", ns_to_ms(record.latency_ns.p90))
                .f64("p99_ms", ns_to_ms(record.latency_ns.p99));
            // Allocation deltas only when profiling recorded them, so
            // profiling-off output stays byte-identical (schema v3).
            if let Some(mem) = record.mem {
                obj = obj
                    .u64("alloc_count", mem.alloc_count)
                    .u64("alloc_bytes", mem.alloc_bytes)
                    .u64("peak_bytes", mem.peak_bytes);
            }
            self.write_line(&obj.finish())?;
        }
        Ok(())
    }

    /// Writes one `counter`/`gauge` line per registered scalar metric.
    pub fn write_metrics_snapshot(&self) -> io::Result<()> {
        for record in metrics::metrics_snapshot() {
            let kind = if record.is_gauge { "gauge" } else { "counter" };
            self.write_line(
                &JsonObject::typed(kind)
                    .str("name", record.name)
                    .u64("value", record.value)
                    .finish(),
            )?;
        }
        Ok(())
    }

    /// Writes one `hist` line per registered histogram: the five-number
    /// summary under the metric's own unit (the name conveys it).
    pub fn write_histograms_snapshot(&self) -> io::Result<()> {
        for record in metrics::histograms_snapshot() {
            self.write_line(
                &JsonObject::typed("hist")
                    .str("name", record.name)
                    .u64("count", record.summary.count)
                    .f64("mean", record.summary.mean)
                    .u64("p50", record.summary.p50)
                    .u64("p90", record.summary.p90)
                    .u64("p99", record.summary.p99)
                    .u64("max", record.summary.max)
                    .finish(),
            )?;
        }
        Ok(())
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().expect("sink lock").flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write that appends into a shared Vec<u8> so the test can read
    /// back what the sink wrote.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture() -> (JsonlSink, Arc<StdMutex<Vec<u8>>>) {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let sink = JsonlSink::to_writer(Box::new(SharedBuf(buf.clone())));
        (sink, buf)
    }

    fn lines(buf: &Arc<StdMutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn every_line_is_a_typed_json_object() {
        let (sink, buf) = capture();
        sink.write_meta("simulate", "workload=airsn").unwrap();
        crate::span::time("test_sink_span", || ());
        crate::metrics::counter("test.sink.counter").add(3);
        crate::metrics::gauge("test.sink.gauge").record_max(11);
        sink.write_span_snapshot().unwrap();
        sink.write_metrics_snapshot().unwrap();
        sink.flush().unwrap();

        let lines = lines(&buf);
        assert!(!lines.is_empty());
        for line in &lines {
            let v = parse(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
            assert!(v.is_object(), "{line:?}");
            assert!(
                v.get("type").and_then(JsonValue::as_str).is_some(),
                "missing type field in {line:?}"
            );
        }
        assert!(lines.iter().any(|l| {
            let v = parse(l).unwrap();
            v.get("type").and_then(JsonValue::as_str) == Some("span")
                && v.get("path").and_then(JsonValue::as_str) == Some("test_sink_span")
        }));
        assert!(lines.iter().any(|l| {
            let v = parse(l).unwrap();
            v.get("type").and_then(JsonValue::as_str) == Some("counter")
                && v.get("name").and_then(JsonValue::as_str) == Some("test.sink.counter")
        }));
        assert!(lines.iter().any(|l| {
            let v = parse(l).unwrap();
            v.get("type").and_then(JsonValue::as_str) == Some("gauge")
                && v.get("name").and_then(JsonValue::as_str) == Some("test.sink.gauge")
        }));
    }

    #[test]
    fn v2_records_carry_version_percentiles_and_histograms() {
        let (sink, buf) = capture();
        crate::span::time("test_sink_v2_span", || ());
        crate::metrics::histogram("test.sink.hist").record(42);
        sink.write_span_snapshot().unwrap();
        sink.write_histograms_snapshot().unwrap();
        sink.flush().unwrap();

        let lines = lines(&buf);
        for line in &lines {
            let v = parse(line).unwrap();
            assert_eq!(
                v.get("v").and_then(JsonValue::as_u64),
                Some(crate::json::SCHEMA_VERSION),
                "{line:?}"
            );
        }
        let span_line = lines
            .iter()
            .map(|l| parse(l).unwrap())
            .find(|v| v.get("path").and_then(JsonValue::as_str) == Some("test_sink_v2_span"))
            .expect("span line");
        for key in ["p50_ms", "p90_ms", "p99_ms"] {
            assert!(
                span_line.get(key).and_then(JsonValue::as_f64).is_some(),
                "span line missing {key}"
            );
        }
        let hist_line = lines
            .iter()
            .map(|l| parse(l).unwrap())
            .find(|v| {
                v.get("type").and_then(JsonValue::as_str) == Some("hist")
                    && v.get("name").and_then(JsonValue::as_str) == Some("test.sink.hist")
            })
            .expect("hist line");
        assert!(hist_line.get("count").and_then(JsonValue::as_u64) >= Some(1));
        assert!(hist_line.get("max").and_then(JsonValue::as_u64) >= Some(42));
    }

    #[test]
    fn concurrent_writers_never_interleave_within_a_line() {
        let (sink, buf) = capture();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..200 {
                        let line = JsonObject::typed("job_completed")
                            .str("job", &format!("t{t}_job\"{i}\""))
                            .u64("time", i)
                            .finish();
                        sink.write_line(&line).unwrap();
                    }
                });
            }
        });
        sink.flush().unwrap();
        let lines = lines(&buf);
        assert_eq!(lines.len(), 800);
        for line in &lines {
            parse(line).unwrap_or_else(|e| panic!("corrupt line {line:?}: {e}"));
        }
    }

    #[test]
    fn embedded_newlines_are_rejected_not_written() {
        let (sink, buf) = capture();
        for bad in ["{\"type\":\"meta\"}\n{\"type\":\"meta\"}", "split\rline"] {
            let err = sink.write_line(bad).expect_err("newline must be rejected");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        // Nothing reached the stream: the contract holds even in release
        // builds, where a debug_assert! would have compiled away.
        assert!(buf.lock().unwrap().is_empty());
        sink.write_line("{\"type\":\"meta\"}").unwrap();
        assert_eq!(lines(&buf).len(), 1);
    }

    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir().join("prio_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
        let sink = JsonlSink::to_file(&path).unwrap();
        assert_eq!(sink.target(), path.display().to_string());
        sink.write_meta("test", "file round trip").unwrap();
        sink.flush().unwrap();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let v = parse(text.trim()).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("meta"));
        let _ = std::fs::remove_file(&path);
    }
}
