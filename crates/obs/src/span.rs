//! Scoped spans: RAII guards timing named scopes, feeding a thread-safe
//! registry of per-path statistics.
//!
//! Nesting composes paths per thread: a `span("decompose")` opened while
//! `span("prio")` is live records as `prio/decompose`. The six pipeline
//! phases (`parse`, `reduce`, `decompose`, `schedule`, `combine`,
//! `emit` — canonical names in [`crate::stage`], plus `write` for
//! serialization) are instrumented at their implementation sites, so whoever
//! runs the pipeline — CLI, bench harness, tests — reads the same clock.

use crate::hist::{Histogram, HistogramSummary};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Aggregate statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans recorded under this path.
    pub count: u64,
    /// Total elapsed time across those spans.
    pub total: Duration,
    /// The longest single span.
    pub max: Duration,
}

/// Per-path allocation aggregates, recorded only when the
/// `alloc-profile` feature is compiled in *and*
/// [`crate::mem::set_span_profiling`] is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStat {
    /// Allocations performed while spans of this path were open.
    pub alloc_count: u64,
    /// Bytes allocated while spans of this path were open.
    pub alloc_bytes: u64,
    /// Largest single-span peak above the bytes live at span open.
    pub peak_bytes: u64,
}

/// One row of a [`snapshot`]: a span path with its statistics and the
/// latency distribution of its individual spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The `/`-joined nesting path, e.g. `prio/decompose`.
    pub path: String,
    /// Aggregate statistics for the path.
    pub stat: SpanStat,
    /// Five-number summary (count/mean/p50/p90/p99/max) of the per-span
    /// durations, in nanoseconds.
    pub latency_ns: HistogramSummary,
    /// Allocation deltas, when profiling was on for any span of this
    /// path. `None` keeps serialized span records byte-identical to
    /// profiling-off builds.
    pub mem: Option<MemStat>,
}

/// Per-path registry entry: running aggregates plus a log-bucketed
/// histogram of individual span durations (nanoseconds).
#[derive(Debug, Default)]
struct SpanEntry {
    stat: SpanStat,
    hist: Histogram,
    mem: Option<MemStat>,
}

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, SpanEntry>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, SpanEntry>>> = OnceLock::new();
    // Guards drop during unwinding; recover from poisoning so a panic in
    // a spanned scope never turns into a double panic (abort).
    match REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Allocation-counter baselines captured at span open (profiling on).
#[cfg(feature = "alloc-profile")]
#[derive(Debug, Clone, Copy)]
struct MemBaseline {
    alloc_count: u64,
    alloc_bytes: u64,
    live: usize,
    /// The global peak before this span reset it to `live`; restored at
    /// close so an enclosing span's peak survives.
    prev_peak: usize,
}

/// An open span; records its elapsed time into the registry on drop.
#[derive(Debug)]
pub struct SpanGuard {
    start: Instant,
    /// Stack depth *after* pushing this span's name; drop truncates back
    /// to `depth - 1` so a non-LIFO drop cannot corrupt deeper paths.
    depth: usize,
    #[cfg(feature = "alloc-profile")]
    mem: Option<MemBaseline>,
}

/// Opens a span named `name` nested under the calling thread's current
/// span path. Drop the returned guard to record it.
pub fn span(name: &'static str) -> SpanGuard {
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.len()
    });
    #[cfg(feature = "alloc-profile")]
    let mem = crate::mem::span_profiling().then(|| {
        use std::sync::atomic::Ordering;
        let live = crate::mem::LIVE_BYTES.load(Ordering::Relaxed);
        MemBaseline {
            alloc_count: crate::mem::ALLOC_COUNT.load(Ordering::Relaxed),
            alloc_bytes: crate::mem::ALLOC_BYTES.load(Ordering::Relaxed),
            live,
            prev_peak: crate::mem::PEAK_BYTES.swap(live, Ordering::Relaxed),
        }
    });
    SpanGuard {
        start: Instant::now(),
        depth,
        #[cfg(feature = "alloc-profile")]
        mem,
    }
}

/// Times a closure under a span.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

impl SpanGuard {
    /// Elapsed time so far (the guard keeps running until dropped).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        #[cfg(feature = "alloc-profile")]
        let mem_delta = self.mem.map(|base| {
            use std::sync::atomic::Ordering;
            let peak = crate::mem::PEAK_BYTES.load(Ordering::Relaxed);
            // Restore the enclosing span's peak tracking.
            crate::mem::PEAK_BYTES.fetch_max(base.prev_peak, Ordering::Relaxed);
            MemStat {
                alloc_count: crate::mem::ALLOC_COUNT
                    .load(Ordering::Relaxed)
                    .saturating_sub(base.alloc_count),
                alloc_bytes: crate::mem::ALLOC_BYTES
                    .load(Ordering::Relaxed)
                    .saturating_sub(base.alloc_bytes),
                peak_bytes: peak.saturating_sub(base.live) as u64,
            }
        });
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack[..self.depth].join("/");
            stack.truncate(self.depth - 1);
            path
        });
        let mut registry = registry();
        let entry = registry.entry(path).or_default();
        entry.stat.count += 1;
        entry.stat.total += elapsed;
        entry.stat.max = entry.stat.max.max(elapsed);
        entry
            .hist
            .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        #[cfg(feature = "alloc-profile")]
        if let Some(delta) = mem_delta {
            let agg = entry.mem.get_or_insert_with(MemStat::default);
            agg.alloc_count += delta.alloc_count;
            agg.alloc_bytes += delta.alloc_bytes;
            agg.peak_bytes = agg.peak_bytes.max(delta.peak_bytes);
        }
    }
}

/// A snapshot of every recorded span path, sorted by path.
pub fn snapshot() -> Vec<SpanRecord> {
    registry()
        .iter()
        .map(|(path, entry)| SpanRecord {
            path: path.clone(),
            stat: entry.stat,
            latency_ns: entry.hist.summary(),
            mem: entry.mem,
        })
        .collect()
}

/// The aggregate statistics of one path, if recorded.
pub fn stat_of(path: &str) -> Option<SpanStat> {
    registry().get(path).map(|e| e.stat)
}

/// Clears every recorded span.
pub fn reset_spans() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so every
    // test here uses span names unique to itself and asserts only on them.

    #[test]
    fn nesting_composes_paths() {
        {
            let _a = span("test_nest_outer");
            {
                let _b = span("test_nest_inner");
            }
        }
        let outer = stat_of("test_nest_outer").expect("outer recorded");
        let inner = stat_of("test_nest_outer/test_nest_inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(
            stat_of("test_nest_inner").is_none(),
            "inner must not appear top-level"
        );
    }

    #[test]
    fn elapsed_is_monotone_and_parent_covers_child() {
        let parent_guard = span("test_mono_parent");
        let t1 = parent_guard.elapsed();
        std::thread::sleep(Duration::from_millis(2));
        let t2 = parent_guard.elapsed();
        assert!(t2 >= t1, "elapsed must be monotone: {t2:?} < {t1:?}");
        {
            let _child = span("test_mono_child");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(parent_guard);
        let parent = stat_of("test_mono_parent").unwrap();
        let child = stat_of("test_mono_parent/test_mono_child").unwrap();
        assert!(
            parent.total >= child.total,
            "parent {parent:?} must cover child {child:?}"
        );
        assert!(child.total >= Duration::from_millis(1));
        assert!(
            parent.max >= parent.total / 2,
            "single span: max tracks total"
        );
    }

    #[test]
    fn repeated_spans_accumulate() {
        for _ in 0..5 {
            let _g = span("test_accumulate");
        }
        let stat = stat_of("test_accumulate").unwrap();
        assert_eq!(stat.count, 5);
        assert!(stat.total >= stat.max);
    }

    #[test]
    fn sibling_threads_do_not_nest_under_each_other() {
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _a = span("test_thread_a");
                std::thread::sleep(Duration::from_millis(1));
            });
            scope.spawn(|| {
                let _b = span("test_thread_b");
                std::thread::sleep(Duration::from_millis(1));
            });
        });
        assert!(stat_of("test_thread_a").is_some());
        assert!(stat_of("test_thread_b").is_some());
        assert!(stat_of("test_thread_a/test_thread_b").is_none());
        assert!(stat_of("test_thread_b/test_thread_a").is_none());
    }

    #[test]
    fn time_helper_records_and_returns() {
        let v = time("test_time_helper", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(stat_of("test_time_helper").unwrap().count, 1);
    }

    #[test]
    fn snapshot_carries_latency_percentiles() {
        for _ in 0..10 {
            time("test_span_latency", || {
                std::thread::sleep(Duration::from_micros(200));
            });
        }
        let record = snapshot()
            .into_iter()
            .find(|r| r.path == "test_span_latency")
            .expect("recorded");
        let lat = record.latency_ns;
        assert_eq!(lat.count, 10);
        // Every span slept ≥ 200µs; percentiles are monotone and bounded
        // by the exact max, which matches the aggregate max.
        assert!(lat.p50 >= 200_000, "p50 {} < sleep floor", lat.p50);
        assert!(lat.p50 <= lat.p90 && lat.p90 <= lat.p99 && lat.p99 <= lat.max);
        assert_eq!(lat.max, record.stat.max.as_nanos() as u64);
    }
}
