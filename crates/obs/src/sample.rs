//! Deterministic head sampling of per-job trace events.
//!
//! `--trace-sample N` keeps full lifecycle causality (submitted →
//! eligible → assigned → completed/failed/retried) for a 1/N subset of
//! jobs while aggregate telemetry stays exact. The subset is chosen by
//! hashing the job name through SplitMix64 — a stateless decision, so
//! every event of a kept job is kept no matter which thread or phase
//! emits it, and two runs of the same workload sample the same jobs
//! (trace diffs across policies stay aligned).

/// SplitMix64's finalizer: a cheap, well-mixed 64-bit hash step. Public
/// so analyses can re-derive the kept set from a trace's `sample` tag.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Hashes a job name to a u64 by folding its bytes through
/// [`splitmix64`] (an FNV-style fold with a strong finalizer per step).
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for chunk in name.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Decides, per job name, whether the job's lifecycle events are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSampler {
    /// Keep roughly 1 job in `modulus` (1 = keep everything).
    modulus: u64,
}

impl JobSampler {
    /// A sampler keeping ~1/`modulus` of jobs. `modulus` of 0 is treated
    /// as 1 (full rate).
    pub fn new(modulus: u64) -> JobSampler {
        JobSampler {
            modulus: modulus.max(1),
        }
    }

    /// A sampler that keeps every job.
    pub fn full_rate() -> JobSampler {
        JobSampler { modulus: 1 }
    }

    /// The sampling modulus (1 = full rate).
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Whether sampling is actually thinning the trace.
    pub fn is_sampling(&self) -> bool {
        self.modulus > 1
    }

    /// Whether `job`'s lifecycle events are kept. Stateless and
    /// deterministic: the same name answers the same way in every run,
    /// thread, and policy arm.
    pub fn keeps(&self, job: &str) -> bool {
        self.modulus == 1 || hash_name(job).is_multiple_of(self.modulus)
    }

    /// Whether the job with numeric id `job` is kept — the id-keyed
    /// variant for producers (the simulator) and readers (trace
    /// analyses) that identify jobs by node id rather than name. Plain
    /// consecutive ids would make `id % N` a stride, so the id goes
    /// through [`splitmix64`] first.
    pub fn keeps_id(&self, job: u64) -> bool {
        self.modulus == 1 || splitmix64(job).is_multiple_of(self.modulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rate_keeps_everything() {
        let s = JobSampler::full_rate();
        assert!(!s.is_sampling());
        for i in 0..1000 {
            assert!(s.keeps(&format!("job{i}")));
        }
        // Modulus 0 degrades to full rate rather than dividing by zero.
        assert_eq!(JobSampler::new(0), JobSampler::full_rate());
    }

    #[test]
    fn decisions_are_deterministic_and_name_keyed() {
        let s = JobSampler::new(4);
        for i in 0..100 {
            let name = format!("montage_{i}");
            assert_eq!(s.keeps(&name), s.keeps(&name));
        }
        assert_eq!(s, JobSampler::new(4));
    }

    #[test]
    fn kept_fraction_is_close_to_one_over_n() {
        for n in [2u64, 8, 32] {
            let s = JobSampler::new(n);
            let kept = (0..10_000).filter(|i| s.keeps(&format!("job_{i}"))).count() as f64;
            let expect = 10_000.0 / n as f64;
            assert!(
                (kept - expect).abs() < expect * 0.25,
                "modulus {n}: kept {kept}, expected about {expect}"
            );
            let kept_ids = (0u64..10_000).filter(|&i| s.keeps_id(i)).count() as f64;
            assert!(
                (kept_ids - expect).abs() < expect * 0.25,
                "modulus {n}: kept {kept_ids} ids, expected about {expect}"
            );
        }
    }

    #[test]
    fn larger_moduli_keep_nested_subsets_only_statistically_not_exactly() {
        // Not a subset property test — just documents that different
        // moduli pick different sets while staying deterministic.
        let s2 = JobSampler::new(2);
        let s8 = JobSampler::new(8);
        let kept2: Vec<bool> = (0..64).map(|i| s2.keeps(&format!("j{i}"))).collect();
        let kept8: Vec<bool> = (0..64).map(|i| s8.keeps(&format!("j{i}"))).collect();
        assert!(kept2.iter().filter(|k| **k).count() > kept8.iter().filter(|k| **k).count());
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values from the canonical splitmix64.c (Vigna).
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
        assert_eq!(splitmix64(0x9e3779b97f4a7c15), 0x6e789e6aa1b965f4);
    }
}
