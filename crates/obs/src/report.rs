//! Human-readable rendering of span and metric snapshots: the phase-timing
//! footer the CLI prints after each subcommand when `-v`/`PRIO_LOG` asks
//! for it.

use crate::config::{verbosity, Level};
use crate::{metrics, span};
use std::fmt::Write as _;
use std::time::Duration;

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Renders the phase-timing footer from the current span registry:
/// one line per span path, indented by nesting depth, with count, total,
/// and max. Returns an empty string when nothing was recorded.
pub fn phase_timing_footer() -> String {
    let snapshot = span::snapshot();
    if snapshot.is_empty() {
        return String::new();
    }
    let mut out = String::from("timings:\n");
    for record in &snapshot {
        let depth = record.path.matches('/').count();
        let name = record.path.rsplit('/').next().unwrap_or(&record.path);
        let indent = "  ".repeat(depth + 1);
        let _ = write!(
            out,
            "{indent}{name:<12} {:>10}",
            fmt_duration(record.stat.total)
        );
        if record.stat.count > 1 {
            let _ = write!(
                out,
                "  (n={}, max {})",
                record.stat.count,
                fmt_duration(record.stat.max)
            );
        }
        // Allocation deltas appear only when profiling recorded them
        // (`--profile-alloc`), so default output is unchanged.
        if let Some(mem) = record.mem {
            let _ = write!(
                out,
                "  [allocs {} / {}, peak {}]",
                mem.alloc_count,
                fmt_bytes(mem.alloc_bytes),
                fmt_bytes(mem.peak_bytes)
            );
        }
        out.push('\n');
    }
    out
}

/// Renders the counter/gauge footer from the current metrics registry.
/// Returns an empty string when nothing was recorded.
pub fn metrics_footer() -> String {
    let snapshot = metrics::metrics_snapshot();
    if snapshot.is_empty() {
        return String::new();
    }
    let mut out = String::from("counters:\n");
    for record in &snapshot {
        let suffix = if record.is_gauge { " (high-water)" } else { "" };
        let _ = writeln!(out, "  {:<36} {:>12}{suffix}", record.name, record.value);
    }
    out
}

/// Prints the footer(s) to stderr according to the current verbosity:
/// nothing at `Off`, phase timings at `Info`, timings plus counters at
/// `Debug`. `force_timings` (the `--timings` flag) prints timings even at
/// `Off`.
pub fn print_footer(force_timings: bool) {
    let level = verbosity();
    if level >= Level::Info || force_timings {
        let footer = phase_timing_footer();
        if !footer.is_empty() {
            eprint!("{footer}");
        }
    }
    if level >= Level::Debug {
        let footer = metrics_footer();
        if !footer.is_empty() {
            eprint!("{footer}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footer_lists_phases_with_nesting() {
        crate::span::time("test_report_outer", || {
            crate::span::time("test_report_inner", || {
                std::thread::sleep(Duration::from_millis(1));
            });
        });
        let footer = phase_timing_footer();
        assert!(footer.starts_with("timings:"), "{footer}");
        let outer_line = footer
            .lines()
            .find(|l| l.trim_start().starts_with("test_report_outer"))
            .expect("outer line");
        let inner_line = footer
            .lines()
            .find(|l| l.trim_start().starts_with("test_report_inner"))
            .expect("inner line");
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(
            indent(inner_line) > indent(outer_line),
            "nesting must indent: {footer}"
        );
    }

    #[test]
    fn footer_reports_counts_for_repeated_spans() {
        for _ in 0..3 {
            crate::span::time("test_report_repeat", || ());
        }
        let footer = phase_timing_footer();
        let line = footer
            .lines()
            .find(|l| l.trim_start().starts_with("test_report_repeat"))
            .expect("repeat line");
        assert!(line.contains("n=3"), "{line}");
    }

    #[test]
    fn metrics_footer_marks_gauges() {
        crate::metrics::counter("test.report.counter").add(2);
        crate::metrics::gauge("test.report.gauge").record_max(7);
        let footer = metrics_footer();
        assert!(footer.contains("test.report.counter"));
        let gauge_line = footer
            .lines()
            .find(|l| l.contains("test.report.gauge"))
            .expect("gauge line");
        assert!(gauge_line.contains("high-water"), "{gauge_line}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000ms");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.0µs");
    }
}
