//! A streaming JSONL record reader: an iterator over typed records with
//! bounded memory, so multi-gigabyte trace files (10^6-job runs and
//! beyond) are analyzable line by line without slurping them.
//!
//! Each yielded [`Record`] is one parsed JSON object with its `type`
//! discriminator, optional schema version tag, and 1-based line number.
//! The reader enforces the schema contract as it goes:
//!
//! * blank lines are skipped;
//! * a line that is not a JSON object, or lacks a `type` field, is a
//!   [`StreamError::Parse`];
//! * a record tagged with a version newer than [`SCHEMA_VERSION`] is a
//!   [`StreamError::FutureVersion`];
//! * two records with *different* explicit version tags in one stream
//!   are a [`StreamError::MixedVersions`] — concatenated outputs of
//!   different builds must be rejected, not silently half-parsed.
//!   Untagged (v1) records carry no tag to conflict on and are accepted
//!   alongside any tagged version.
//!
//! [`open`] builds a reader over a file path, with `-` meaning stdin —
//! the ingestion contract of `prio report` and `prio trace`.

use crate::json::{parse, JsonValue, SCHEMA_VERSION};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// One parsed JSONL record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// 1-based line number in the input.
    pub line_no: usize,
    /// The record's `type` discriminator.
    pub kind: String,
    /// The record's explicit `v` tag, if present (absent on v1 records).
    pub version: Option<u64>,
    /// The full parsed object.
    pub value: JsonValue,
}

/// A streaming-read failure: I/O, malformed line, or a schema-version
/// violation.
#[derive(Debug)]
pub enum StreamError {
    /// Reading the underlying input failed.
    Io(io::Error),
    /// A non-blank line was not a typed JSON object.
    Parse {
        /// 1-based line number.
        line_no: usize,
        /// What went wrong.
        message: String,
    },
    /// A record claimed a schema newer than this build supports.
    FutureVersion {
        /// 1-based line number.
        line_no: usize,
        /// The claimed version.
        version: u64,
    },
    /// Two records carried different explicit schema versions.
    MixedVersions {
        /// 1-based line number of the conflicting record.
        line_no: usize,
        /// The stream's first explicit version.
        first: u64,
        /// The conflicting version.
        found: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "read error: {e}"),
            StreamError::Parse { line_no, message } => {
                write!(f, "line {line_no}: {message}")
            }
            StreamError::FutureVersion { line_no, version } => write!(
                f,
                "line {line_no}: record schema v{version} is newer than supported \
                 v{SCHEMA_VERSION}"
            ),
            StreamError::MixedVersions {
                line_no,
                first,
                found,
            } => write!(
                f,
                "line {line_no}: mixed schema versions in one input \
                 (v{found} after v{first}); refusing a partial parse"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// A bounded-memory iterator over the records of a JSONL stream. Holds
/// one line at a time regardless of input size.
#[derive(Debug)]
pub struct JsonlReader<R: BufRead> {
    input: R,
    line_no: usize,
    first_version: Option<u64>,
    buf: String,
}

impl<R: BufRead> JsonlReader<R> {
    /// Wraps any buffered reader.
    pub fn new(input: R) -> JsonlReader<R> {
        JsonlReader {
            input,
            line_no: 0,
            first_version: None,
            buf: String::new(),
        }
    }

    /// The first explicit schema version seen so far, if any.
    pub fn version(&self) -> Option<u64> {
        self.first_version
    }

    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        loop {
            self.buf.clear();
            if self.input.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            let line_no = self.line_no;
            let value = parse(line).map_err(|message| StreamError::Parse { line_no, message })?;
            if !value.is_object() {
                return Err(StreamError::Parse {
                    line_no,
                    message: "not a JSON object".into(),
                });
            }
            let kind = value
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| StreamError::Parse {
                    line_no,
                    message: "missing type field".into(),
                })?
                .to_owned();
            let version = value.get("v").and_then(JsonValue::as_u64);
            if let Some(v) = version {
                if v > SCHEMA_VERSION {
                    return Err(StreamError::FutureVersion {
                        line_no,
                        version: v,
                    });
                }
                match self.first_version {
                    None => self.first_version = Some(v),
                    Some(first) if first != v => {
                        return Err(StreamError::MixedVersions {
                            line_no,
                            first,
                            found: v,
                        })
                    }
                    Some(_) => {}
                }
            }
            return Ok(Some(Record {
                line_no,
                kind,
                version,
                value,
            }));
        }
    }
}

impl<R: BufRead> Iterator for JsonlReader<R> {
    type Item = Result<Record, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Opens a streaming reader over `path`, with `-` meaning stdin.
pub fn open(path: &str) -> io::Result<JsonlReader<Box<dyn BufRead>>> {
    let input: Box<dyn BufRead> = if path == "-" {
        Box::new(BufReader::new(io::stdin()))
    } else {
        Box::new(BufReader::new(File::open(Path::new(path))?))
    };
    Ok(JsonlReader::new(input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonObject;
    use std::io::Cursor;

    fn reader(text: &str) -> JsonlReader<Cursor<&[u8]>> {
        JsonlReader::new(Cursor::new(text.as_bytes()))
    }

    #[test]
    fn yields_typed_records_with_line_numbers() {
        let text = "{\"type\":\"meta\",\"command\":\"x\"}\n\n{\"type\":\"ts\",\"v\":2}\n";
        let records: Vec<Record> = reader(text).collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 2, "blank line skipped");
        assert_eq!(records[0].kind, "meta");
        assert_eq!(records[0].line_no, 1);
        assert_eq!(records[0].version, None);
        assert_eq!(records[1].kind, "ts");
        assert_eq!(records[1].line_no, 3);
        assert_eq!(records[1].version, Some(2));
    }

    #[test]
    fn malformed_lines_are_errors() {
        for bad in ["not json\n", "[1,2]\n", "{\"no\":\"type\"}\n"] {
            let result: Result<Vec<Record>, StreamError> = reader(bad).collect();
            assert!(result.is_err(), "{bad:?} must error");
        }
    }

    #[test]
    fn future_versions_are_rejected() {
        let text = format!("{{\"type\":\"ts\",\"v\":{}}}\n", SCHEMA_VERSION + 1);
        let err = reader(&text).next().unwrap().unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn mixed_explicit_versions_are_rejected() {
        let text = "{\"type\":\"ts\",\"v\":2}\n{\"type\":\"ts\",\"v\":3}\n";
        let mut r = reader(text);
        assert!(r.next().unwrap().is_ok());
        let err = r.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("mixed"), "{err}");
        assert_eq!(r.version(), Some(2));
    }

    #[test]
    fn untagged_v1_records_mix_with_any_tagged_version() {
        let text = "{\"type\":\"meta\"}\n{\"type\":\"ts\",\"v\":3}\n{\"type\":\"meta\"}\n";
        let records: Vec<Record> = reader(text).collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn current_writer_output_streams_clean() {
        let mut text = String::new();
        for i in 0..100u64 {
            text.push_str(&JsonObject::typed("job_completed").u64("job", i).finish());
            text.push('\n');
        }
        let records: Vec<Record> = reader(&text).collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 100);
        assert!(records
            .iter()
            .all(|r| r.version == Some(SCHEMA_VERSION) && r.kind == "job_completed"));
    }
}
