//! Verbosity configuration: the `PRIO_LOG` environment variable and the
//! CLI's `-v`/`--verbose` flag both funnel into one process-global level.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the observability layer reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No footer, no event logging (the default).
    Off = 0,
    /// Phase-timing footer after each command (`-v`, `PRIO_LOG=info`).
    Info = 1,
    /// Footer plus counter values (`-vv`, `PRIO_LOG=debug`).
    Debug = 2,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Sets the process-global verbosity.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current process-global verbosity.
pub fn verbosity() -> Level {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Info,
        _ => Level::Debug,
    }
}

/// Parses a `PRIO_LOG` value: `0`/`off`, `1`/`info`/`v`, `2`/`debug`.
/// Unknown values map to [`Level::Info`] (asking for *something* should
/// never silently disable everything).
pub fn parse_level(value: &str) -> Level {
    match value.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "none" | "false" => Level::Off,
        "1" | "info" | "v" | "true" | "on" => Level::Info,
        "2" | "debug" | "vv" | "trace" => Level::Debug,
        _ => Level::Info,
    }
}

/// Initializes verbosity from the `PRIO_LOG` environment variable, if
/// set. Explicit [`set_verbosity`] calls (CLI flags) should come after
/// and win.
pub fn init_from_env() {
    if let Ok(value) = std::env::var("PRIO_LOG") {
        set_verbosity(parse_level(&value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(parse_level("off"), Level::Off);
        assert_eq!(parse_level("0"), Level::Off);
        assert_eq!(parse_level(""), Level::Off);
        assert_eq!(parse_level("info"), Level::Info);
        assert_eq!(parse_level("1"), Level::Info);
        assert_eq!(parse_level("DEBUG"), Level::Debug);
        assert_eq!(parse_level(" 2 "), Level::Debug);
        assert_eq!(parse_level("bogus"), Level::Info);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
