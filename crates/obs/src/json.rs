//! A hand-rolled JSON writer and a minimal parser — enough to emit JSONL
//! event lines and to validate/replay them, with no external dependency.
//!
//! The writer escapes per RFC 8259 (quotes, backslashes, control
//! characters); non-ASCII passes through as UTF-8, which is valid JSON
//! and keeps DAGMan job names readable. Non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the JSONL record schema. Every object built with
/// [`JsonObject::typed`] carries it as a `v` field. History:
///
/// * **1** (implicit, no `v` field) — `meta`/`span`/`counter`/`gauge`
///   lines plus the four simulator trace events.
/// * **2** — adds the explicit `v` tag, span percentile fields
///   (`p50_ms`/`p90_ms`/`p99_ms`), and the simulator telemetry records
///   `ts` (time series) and `hist` (latency histograms).
/// * **3** — adds the job-lifecycle events `job_submitted`/`job_eligible`
///   and the `worker` field on `job_assigned`, completing the causal
///   `submitted → eligible → started → [retried/failed] → completed`
///   record set per job. Optional `alloc_count`/`alloc_bytes`/
///   `peak_bytes` fields on `span` records when allocation profiling is
///   enabled.
///
/// Readers accept records without a `v` field (v1) and any `v` up to this
/// value; larger versions should be rejected.
pub const SCHEMA_VERSION: u64 = 3;

/// Appends the JSON string literal for `s` (including the quotes) to
/// `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    // Copy maximal runs of bytes that need no escaping in one push_str
    // instead of pushing char by char — escapable bytes are all ASCII,
    // so a run boundary never splits a UTF-8 scalar. Multi-KB payloads
    // (the serve daemon's workflow texts) make per-char appends a real
    // cost.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'"' && b != b'\\' && b >= 0x20 {
            continue;
        }
        out.push_str(&s[start..i]);
        start = i + 1;
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            0x08 => out.push_str("\\b"),
            0x0C => out.push_str("\\f"),
            other => {
                let _ = write!(out, "\\u{:04x}", other as u32);
            }
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// The JSON string literal for `s`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(s, &mut out);
    out
}

/// Appends a JSON number for `v` (or `null` if non-finite). Public so
/// hot encoders (the trace pipeline's writer thread) can emit numbers
/// without going through the [`JsonObject`] builder.
pub fn write_json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's shortest-round-trip Display: parses back bit-identical.
        let _ = write!(out, "{v}");
        // `Display` omits the fraction for integral floats; that is still
        // a valid JSON number.
    } else {
        out.push_str("null");
    }
}

/// Appends a JSON number for `v` without the `fmt` machinery — a plain
/// digit loop into a stack buffer, for encoders on hot paths.
pub fn write_json_u64(v: u64, out: &mut String) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = v;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // SAFETY-free: the buffer holds only ASCII digits.
    out.push_str(std::str::from_utf8(&digits[i..]).expect("ascii digits"));
}

/// Longest text [`write_json_f64`] can emit: shortest-round-trip `f64`
/// `Display` peaks at 24 bytes (e.g. `-2.2250738585072014e-308`).
const F64_TEXT_MAX: usize = 24;

/// Slot marker: no value cached. (Distinct from any real length, and
/// needed because a zeroed `bits` field is a real value — `0.0`.)
const F64_SLOT_EMPTY: u8 = u8::MAX;

#[derive(Clone, Copy)]
struct F64Slot {
    bits: u64,
    len: u8,
    text: [u8; F64_TEXT_MAX],
}

/// A direct-mapped memo cache for JSON `f64` formatting, keyed by bit
/// pattern. Shortest-round-trip `Display` is by far the most expensive
/// part of encoding a trace event, and simulator timestamps repeat
/// heavily — every job assigned from one batch shares the batch's
/// arrival time, a job's completion event reuses the `completes_at`
/// computed at assignment, and children become eligible at their
/// parent's completion time — so a small cache turns most float fields
/// into a memcpy. Output is byte-identical to [`write_json_f64`] by
/// construction: the cache only replays what that function produced for
/// the same bit pattern.
pub struct F64Cache {
    slots: Box<[F64Slot]>,
}

impl Default for F64Cache {
    fn default() -> Self {
        Self::new()
    }
}

impl F64Cache {
    /// Number of direct-mapped slots (a few KB; collisions just re-format).
    const SLOTS: usize = 256;

    /// An empty cache.
    pub fn new() -> F64Cache {
        F64Cache {
            slots: vec![
                F64Slot {
                    bits: 0,
                    len: F64_SLOT_EMPTY,
                    text: [0; F64_TEXT_MAX],
                };
                Self::SLOTS
            ]
            .into_boxed_slice(),
        }
    }

    /// Appends the same bytes [`write_json_f64`] would for `v`, serving
    /// repeats from the cache.
    pub fn write(&mut self, v: f64, out: &mut String) {
        let bits = v.to_bits();
        // SplitMix64-style finalizer; top bits index the slot array.
        let hash = (bits ^ (bits >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let slot = &mut self.slots[(hash >> 56) as usize % Self::SLOTS];
        if slot.bits == bits && slot.len != F64_SLOT_EMPTY {
            let text = &slot.text[..slot.len as usize];
            out.push_str(std::str::from_utf8(text).expect("cached ascii"));
            return;
        }
        let start = out.len();
        write_json_f64(v, out);
        let text = out.as_bytes();
        let len = text.len() - start;
        if len <= F64_TEXT_MAX {
            slot.bits = bits;
            slot.len = len as u8;
            slot.text[..len].copy_from_slice(&text[start..]);
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    write_json_f64(v, out);
}

/// An in-progress single-line JSON object, appended key by key.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Starts an object with a `type` discriminator field and the current
    /// [`SCHEMA_VERSION`] as `v` — every JSONL line the sink (and the
    /// simulator's trace writer) emits carries both.
    pub fn typed(kind: &str) -> Self {
        JsonObject {
            buf: String::from("{"),
            empty: true,
        }
        .str("type", kind)
        .u64("v", SCHEMA_VERSION)
    }

    /// Like [`JsonObject::typed`], but reuses `buf`'s allocation instead
    /// of allocating a fresh `String` — the trace pipeline's writer
    /// thread encodes millions of events through one scratch buffer.
    /// `buf` is cleared; recover the built line with
    /// [`JsonObject::finish`].
    pub fn typed_in(mut buf: String, kind: &str) -> Self {
        buf.clear();
        buf.push('{');
        JsonObject { buf, empty: true }
            .str("type", kind)
            .u64("v", SCHEMA_VERSION)
    }

    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(mut self, key: &str) -> Self {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        write_escaped(key, &mut self.buf);
        self.buf.push(':');
        self
    }

    /// Appends a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let mut obj = self.key(key);
        write_escaped(value, &mut obj.buf);
        obj
    }

    /// Appends an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        let mut obj = self.key(key);
        let _ = write!(obj.buf, "{value}");
        obj
    }

    /// Appends a float field (`null` if non-finite).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let mut obj = self.key(key);
        write_f64(value, &mut obj.buf);
        obj
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        let mut obj = self.key(key);
        obj.buf.push_str(if value { "true" } else { "false" });
        obj
    }

    /// Appends an array of `[time, value]` pairs (each float per
    /// [`write_f64`]'s rules: non-finite values become `null`).
    pub fn pairs(self, key: &str, pairs: &[(f64, f64)]) -> Self {
        let mut obj = self.key(key);
        obj.buf.push('[');
        for (i, &(t, v)) in pairs.iter().enumerate() {
            if i > 0 {
                obj.buf.push(',');
            }
            obj.buf.push('[');
            write_f64(t, &mut obj.buf);
            obj.buf.push(',');
            write_f64(v, &mut obj.buf);
            obj.buf.push(']');
        }
        obj.buf.push(']');
        obj
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion order not preserved; keyed lookup only).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is a JSON object.
    pub fn is_object(&self) -> bool {
        matches!(self, JsonValue::Obj(_))
    }
}

/// Parses one JSON document. Errors carry a byte offset and message.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(code).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!(
                                "bad escape \\{} at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume a maximal run of unescaped bytes at once —
                    // validating per scalar would rescan the rest of the
                    // document for every character (quadratic on MB-sized
                    // inputs). A run can only end at a quote, backslash,
                    // or control byte, none of which is a UTF-8
                    // continuation byte, so it never splits a scalar.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if matches!(b, b'"' | b'\\') || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.pos == start {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "non-ASCII in \\u escape")?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape {hex:?}: {e}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_edge_cases() {
        // Quotes, backslashes, and non-ASCII job names straight out of
        // DAGMan files must survive a write → parse round trip.
        let cases = [
            "plain",
            "with \"quotes\"",
            "back\\slash and C:\\jobs\\a.submit",
            "tab\there, newline\nhere",
            "control \u{01} char",
            "jöb-ñame-日本語-🧪",
            "",
            "\\\"\\", // pathological: backslash, quote, backslash
        ];
        for case in cases {
            let line = JsonObject::typed("t").str("name", case).finish();
            let parsed = parse(&line).unwrap_or_else(|e| panic!("parse {line:?}: {e}"));
            assert_eq!(
                parsed.get("name").and_then(JsonValue::as_str),
                Some(case),
                "round trip of {case:?} via {line:?}"
            );
        }
    }

    #[test]
    fn typed_objects_carry_the_discriminator_and_version() {
        let line = JsonObject::typed("span")
            .str("name", "reduce")
            .u64("count", 3)
            .finish();
        let v = parse(&line).unwrap();
        assert!(v.is_object());
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("v").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION),
            "every typed record is version-tagged: {line}"
        );
    }

    #[test]
    fn pairs_serialize_as_nested_arrays() {
        let line = JsonObject::typed("ts")
            .pairs("samples", &[(0.0, 3.0), (1.5, 7.0)])
            .finish();
        let v = parse(&line).unwrap();
        match v.get("samples") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items.len(), 2);
                match &items[1] {
                    JsonValue::Arr(pair) => {
                        assert_eq!(pair[0].as_f64(), Some(1.5));
                        assert_eq!(pair[1].as_f64(), Some(7.0));
                    }
                    other => panic!("expected pair, got {other:?}"),
                }
            }
            other => panic!("expected array, got {other:?}"),
        }
        let empty = JsonObject::new().pairs("samples", &[]).finish();
        assert_eq!(
            parse(&empty).unwrap().get("samples"),
            Some(&JsonValue::Arr(vec![]))
        );
    }

    #[test]
    fn floats_round_trip_bit_identical() {
        for x in [
            0.0,
            1.5,
            0.1 + 0.2,
            1e-300,
            123_456_789.123_456_79,
            f64::MIN_POSITIVE,
        ] {
            let line = JsonObject::new().f64("x", x).finish();
            let v = parse(&line).unwrap();
            assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(x), "{line}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObject::new()
            .f64("x", f64::NAN)
            .f64("y", f64::INFINITY)
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("x"), Some(&JsonValue::Null));
        assert_eq!(v.get("y"), Some(&JsonValue::Null));
    }

    #[test]
    fn f64_cache_replays_write_json_f64_byte_for_byte() {
        let mut cache = F64Cache::new();
        let values = [
            0.0,
            -0.0,
            1.0,
            0.25,
            1.5e300,
            -2.2250738585072014e-308,
            f64::NAN,
            f64::INFINITY,
            std::f64::consts::PI,
        ];
        // Two passes: the second is served entirely from the cache and
        // must still match the uncached writer exactly (including the
        // -0.0 vs 0.0 distinction — the cache keys on bit patterns).
        for _ in 0..2 {
            for v in values {
                let mut cached = String::new();
                cache.write(v, &mut cached);
                let mut plain = String::new();
                write_json_f64(v, &mut plain);
                assert_eq!(cached, plain, "for {v:?}");
            }
        }
    }

    #[test]
    fn parser_accepts_unicode_escapes_and_pairs() {
        let v = parse(r#"{"s":"a\u00e9b\ud83e\uddeac"}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("aéb🧪c"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn nested_values_parse() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":true,"d":-1.5e3}"#).unwrap();
        assert_eq!(v.get("d").and_then(JsonValue::as_f64), Some(-1500.0));
        match v.get("a") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
