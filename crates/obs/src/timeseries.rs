//! A bounded time series: a ring of `(time, value)` samples that
//! downsamples itself as it fills, plus exact running aggregates.
//!
//! The simulator pushes one point per processed event; a long run would
//! accumulate millions. Instead the series keeps at most `capacity`
//! stored samples: when full it drops every second stored sample and
//! doubles its minimum sample spacing, so the stored curve always spans
//! the whole run at a resolution that degrades gracefully (classic
//! largest-first decimation). The *aggregates* — peak, mean, last — are
//! computed over every pushed point, never the decimated subset, so the
//! digest is independent of `capacity`.
//!
//! Everything is deterministic: the stored curve and digest are a pure
//! function of the pushed sequence.

/// A bounded, self-downsampling series of `(time, value)` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
    capacity: usize,
    /// Minimum spacing between stored samples; doubles at each
    /// compaction. 0 until the first compaction (store everything).
    min_interval: f64,
    // Exact aggregates over all pushed points.
    pushed: u64,
    sum: f64,
    peak: f64,
    peak_t: f64,
    last_t: f64,
    last_v: f64,
}

/// The exact digest of a [`TimeSeries`] (aggregates over every pushed
/// point, independent of downsampling).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeSeriesDigest {
    /// Points pushed over the series' lifetime.
    pub pushed: u64,
    /// The largest value pushed.
    pub peak: f64,
    /// The time of the first occurrence of the peak.
    pub peak_t: f64,
    /// Event-weighted mean of all pushed values.
    pub mean: f64,
    /// Time of the last pushed point.
    pub last_t: f64,
    /// Value of the last pushed point.
    pub last_v: f64,
}

impl TimeSeries {
    /// A series storing at most `capacity` samples (`capacity >= 8`;
    /// smaller values are raised to 8 so compaction always makes
    /// progress).
    pub fn new(capacity: usize) -> TimeSeries {
        Self::with_interval(capacity, 0.0)
    }

    /// Like [`TimeSeries::new`] but starting with a minimum sample
    /// spacing (configurable downsampling from the start): points closer
    /// than `min_interval` to the previously stored one are aggregated
    /// but not stored.
    pub fn with_interval(capacity: usize, min_interval: f64) -> TimeSeries {
        TimeSeries {
            samples: Vec::new(),
            capacity: capacity.max(8),
            min_interval: min_interval.max(0.0),
            pushed: 0,
            sum: 0.0,
            peak: f64::NEG_INFINITY,
            peak_t: 0.0,
            last_t: 0.0,
            last_v: 0.0,
        }
    }

    /// Appends a point. Times should be non-decreasing (the simulator's
    /// event clock is); out-of-order times are accepted but may be
    /// decimated immediately.
    pub fn push(&mut self, t: f64, v: f64) {
        self.pushed += 1;
        self.sum += v;
        if v > self.peak {
            self.peak = v;
            self.peak_t = t;
        }
        self.last_t = t;
        self.last_v = v;

        if let Some(&(prev_t, _)) = self.samples.last() {
            if t - prev_t < self.min_interval {
                return;
            }
        }
        self.samples.push((t, v));
        if self.samples.len() >= self.capacity {
            self.compact();
        }
    }

    /// Halves the stored resolution: keeps every second sample (the
    /// first and every even index, so the curve's start survives) and
    /// doubles the minimum spacing.
    fn compact(&mut self) {
        let mut keep = 0usize;
        self.samples.retain(|_| {
            let kept = keep.is_multiple_of(2);
            keep += 1;
            kept
        });
        let span = match (self.samples.first(), self.samples.last()) {
            (Some(&(first, _)), Some(&(last, _))) => last - first,
            _ => 0.0,
        };
        self.min_interval = if self.min_interval > 0.0 {
            self.min_interval * 2.0
        } else {
            // First compaction: aim for capacity/2 samples over the span
            // seen so far.
            (span / self.capacity as f64).max(f64::MIN_POSITIVE)
        };
    }

    /// The stored (possibly downsampled) samples, oldest first.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Points pushed over the series' lifetime (≥ stored samples).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The exact digest over every pushed point.
    pub fn digest(&self) -> TimeSeriesDigest {
        TimeSeriesDigest {
            pushed: self.pushed,
            peak: if self.pushed == 0 { 0.0 } else { self.peak },
            peak_t: self.peak_t,
            mean: if self.pushed == 0 {
                0.0
            } else {
                self.sum / self.pushed as f64
            },
            last_t: self.last_t,
            last_v: self.last_v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_everything_until_capacity() {
        let mut ts = TimeSeries::new(16);
        for i in 0..10 {
            ts.push(i as f64, (i * i) as f64);
        }
        assert_eq!(ts.samples().len(), 10);
        let d = ts.digest();
        assert_eq!(d.pushed, 10);
        assert_eq!(d.peak, 81.0);
        assert_eq!(d.peak_t, 9.0);
        assert_eq!(d.last_v, 81.0);
    }

    #[test]
    fn compaction_bounds_memory_and_keeps_span() {
        let mut ts = TimeSeries::new(16);
        for i in 0..10_000 {
            ts.push(i as f64 * 0.25, (i % 100) as f64);
        }
        assert!(
            ts.samples().len() < 16,
            "stored {} ≥ cap",
            ts.samples().len()
        );
        // The stored curve still starts at the beginning and the digest
        // covers all points exactly.
        assert_eq!(ts.samples()[0].0, 0.0);
        let d = ts.digest();
        assert_eq!(d.pushed, 10_000);
        assert_eq!(d.peak, 99.0);
        assert_eq!(d.last_t, 9_999.0 * 0.25);
        let exact_mean = (0..10_000).map(|i| (i % 100) as f64).sum::<f64>() / 10_000.0;
        assert!((d.mean - exact_mean).abs() < 1e-9);
    }

    #[test]
    fn digest_is_independent_of_capacity() {
        let push_all = |cap: usize| {
            let mut ts = TimeSeries::new(cap);
            for i in 0..5_000 {
                ts.push(i as f64, ((i * 7919) % 1000) as f64);
            }
            ts.digest()
        };
        assert_eq!(push_all(8), push_all(4096));
    }

    #[test]
    fn initial_interval_downsamples_from_the_start() {
        let mut ts = TimeSeries::with_interval(1024, 1.0);
        for i in 0..100 {
            ts.push(i as f64 * 0.1, i as f64);
        }
        // Points 0.1 apart, spacing 1.0: about one in ten is stored.
        assert!(ts.samples().len() <= 11, "{}", ts.samples().len());
        assert_eq!(ts.digest().pushed, 100);
    }

    #[test]
    fn peak_keeps_first_occurrence_time() {
        let mut ts = TimeSeries::new(8);
        ts.push(1.0, 5.0);
        ts.push(2.0, 9.0);
        ts.push(3.0, 9.0);
        ts.push(4.0, 2.0);
        let d = ts.digest();
        assert_eq!(d.peak, 9.0);
        assert_eq!(d.peak_t, 2.0);
    }

    #[test]
    fn empty_series_digest_is_zero() {
        let ts = TimeSeries::new(8);
        assert_eq!(ts.digest(), TimeSeriesDigest::default());
    }

    #[test]
    fn deterministic_for_a_fixed_push_sequence() {
        let run = || {
            let mut ts = TimeSeries::new(32);
            for i in 0..2_000 {
                ts.push(i as f64 * 0.5, ((i * 31) % 64) as f64);
            }
            (ts.samples().to_vec(), ts.digest())
        };
        assert_eq!(run(), run());
    }
}
