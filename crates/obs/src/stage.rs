//! Canonical names of the PRIO pipeline stages.
//!
//! The pipeline is parse → reduce → decompose → schedule → combine →
//! emit (plus `write` when instrumented text is written back to disk).
//! Each stage opens a [`crate::span`] under its name at its
//! implementation site, and these constants are the single source of
//! truth shared by the span call sites, the error taxonomy's stage
//! provenance (`prio_core::error::Stage`), and the §3.6 overhead table,
//! so a renamed stage cannot silently desynchronize the three.

/// DAGMan input-file parsing (`prio-dagman`).
pub const PARSE: &str = "parse";
/// Shortcut removal / transitive reduction (`prio-graph`).
pub const REDUCE: &str = "reduce";
/// Decomposition into components plus the superdag (`prio-core`).
pub const DECOMPOSE: &str = "decompose";
/// Per-component scheduling and eligibility profiles (`prio-core`).
pub const SCHEDULE: &str = "schedule";
/// Greedy component ordering over the superdag (`prio-core`).
pub const COMBINE: &str = "combine";
/// Emission of the global job order and its validation (`prio-core`).
pub const EMIT: &str = "emit";
/// Writing instrumented DAGMan/JSDF text back out (`prio-dagman`).
pub const WRITE: &str = "write";

/// The six in-memory pipeline stages, in execution order (excludes
/// [`WRITE`], which only runs when output is serialized).
pub const PIPELINE: [&str; 6] = [PARSE, REDUCE, DECOMPOSE, SCHEDULE, COMBINE, EMIT];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_lists_the_stages_in_order() {
        assert_eq!(PIPELINE.first(), Some(&PARSE));
        assert_eq!(PIPELINE.last(), Some(&EMIT));
        let mut unique: Vec<&str> = PIPELINE.to_vec();
        unique.dedup();
        assert_eq!(unique.len(), PIPELINE.len());
    }
}
