//! A lock-free bounded MPSC ring of trace records.
//!
//! Producers (simulator threads emitting lifecycle events) enqueue with
//! [`Ring::push`], which either claims a slot with one CAS or returns the
//! value back immediately when the ring is full — it never blocks and
//! never allocates. A single consumer (the [`crate::pipeline`] writer
//! thread) drains with [`Ring::pop`]. The implementation is the classic
//! bounded queue of Dmitry Vyukov: each slot carries a sequence number
//! that encodes whether it is empty (seq == pos), full (seq == pos + 1),
//! or lapped, so producers and the consumer synchronize purely through
//! per-slot acquire/release pairs plus one shared position counter per
//! side. The queue is in fact MPMC-safe; this crate only ever attaches
//! one consumer.
//!
//! Capacity is rounded up to a power of two so slot indexing is a mask.
//! Overflow policy is the *caller's* concern: [`Ring::push`] hands the
//! rejected value back so the pipeline can count it as dropped rather
//! than stall the producer (the sim clock must never wait on I/O).

// The slot array needs interior mutability that the sequence-number
// protocol, not a lock, guards — the same scoped-unsafe arrangement as
// `mem` (see lib.rs: the crate denies, not forbids, unsafe).
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One slot: the protocol sequence number plus the (possibly absent)
/// value.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<Option<T>>,
}

/// A lock-free bounded multi-producer queue of `T` records. The element
/// type is deliberately generic: the trace pipeline moves compact event
/// structs through the ring (a memcpy per push) and defers JSON encoding
/// to the consumer side, so producers never pay for string formatting.
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next position a producer will claim.
    enqueue_pos: AtomicUsize,
    /// Next position the consumer will drain.
    dequeue_pos: AtomicUsize,
}

// SAFETY: a slot's `value` is only touched by the thread that owns the
// slot's current protocol state — a producer after winning the CAS on
// `enqueue_pos` (slot observed empty via its seq, acquire), or the
// consumer after observing the slot full (seq == pos + 1, acquire). The
// release store of the new seq publishes the write before any other
// thread can observe the state transition, so no two threads ever access
// one slot's value concurrently.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Ring<T> {
    /// A ring holding up to `capacity` records (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Ring<T> {
        let cap = capacity.max(2).next_power_of_two();
        Ring {
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(None),
                })
                .collect(),
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// The slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued records (exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.dequeue_pos.load(Ordering::Relaxed);
        let head = self.enqueue_pos.load(Ordering::Relaxed);
        head.saturating_sub(tail)
    }

    /// Whether the ring currently holds no records (approximate under
    /// concurrent producers, exact when they are quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`, or returns it back when the ring is full. Never
    /// blocks: the caller decides whether a rejected line is dropped
    /// (trace events) or retried (control records).
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot empty at our position: try to claim it.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS makes this thread the
                        // slot's unique owner until the release store
                        // below publishes it to the consumer.
                        unsafe { *slot.value.get() = Some(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if (seq.wrapping_sub(pos) as isize) < 0 {
                // Slot still holds a value from one lap ago: full.
                return Err(value);
            } else {
                // Another producer claimed this position; advance.
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest line, if any. Single consumer only (the
    /// pipeline writer thread); the protocol itself is MPMC-safe.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos.wrapping_add(1) {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS makes this thread the
                        // slot's unique owner until the release store
                        // below recycles it for producers one lap ahead.
                        let value = unsafe { (*slot.value.get()).take() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return value;
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq == pos {
                // Slot not yet published: empty.
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let ring: Ring<String> = Ring::with_capacity(8);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(format!("line{i}")).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop().as_deref(), Some(format!("line{i}").as_str()));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_returns_the_value_back() {
        let ring = Ring::with_capacity(4);
        for i in 0..4 {
            ring.push(i.to_string()).unwrap();
        }
        assert_eq!(ring.push("overflow".into()), Err("overflow".to_string()));
        // Draining one makes room for exactly one more.
        assert_eq!(ring.pop().as_deref(), Some("0"));
        ring.push("again".into()).unwrap();
        assert!(ring.push("still full".into()).is_err());
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(Ring::<String>::with_capacity(0).capacity(), 2);
        assert_eq!(Ring::<String>::with_capacity(3).capacity(), 4);
        assert_eq!(Ring::<String>::with_capacity(64).capacity(), 64);
        assert_eq!(Ring::<String>::with_capacity(65).capacity(), 128);
    }

    #[test]
    fn slots_recycle_across_many_laps() {
        let ring = Ring::with_capacity(4);
        for lap in 0..100 {
            for i in 0..4 {
                ring.push(format!("{lap}:{i}")).unwrap();
            }
            for i in 0..4 {
                assert_eq!(ring.pop().as_deref(), Some(format!("{lap}:{i}").as_str()));
            }
        }
    }

    #[test]
    fn concurrent_producers_one_consumer_lose_nothing_and_keep_order() {
        // Many producers racing a live consumer on a small ring: every
        // line is either drained or was rejected at push time, and each
        // producer's accepted lines come out in its own push order.
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        let ring = Ring::with_capacity(64);
        let drained = std::sync::Mutex::new(Vec::new());
        let rejected = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let (ring, done, rejected) = (&ring, &done, &rejected);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        if ring.push(format!("{p}:{i}")).is_err() {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    done.fetch_add(1, Ordering::Release);
                });
            }
            let (ring, done, drained) = (&ring, &done, &drained);
            scope.spawn(move || {
                let mut out = Vec::new();
                loop {
                    match ring.pop() {
                        Some(line) => out.push(line),
                        None if done.load(Ordering::Acquire) == PRODUCERS => {
                            // The acquire pairs with each producer's
                            // release increment, so every accepted push
                            // is now visible; one last drain finishes.
                            while let Some(line) = ring.pop() {
                                out.push(line);
                            }
                            break;
                        }
                        None => std::thread::yield_now(),
                    }
                }
                *drained.lock().unwrap() = out;
            });
        });
        let drained = drained.into_inner().unwrap();
        assert_eq!(
            drained.len() + rejected.load(Ordering::Relaxed),
            PRODUCERS * PER_PRODUCER,
            "drained + rejected must equal pushed"
        );
        // Per-producer FIFO: indices appear strictly increasing.
        let mut last = [-1i64; PRODUCERS];
        for line in &drained {
            let (p, i) = line.split_once(':').unwrap();
            let (p, i): (usize, i64) = (p.parse().unwrap(), i.parse().unwrap());
            assert!(i > last[p], "producer {p} reordered: {i} after {}", last[p]);
            last[p] = i;
        }
    }
}
