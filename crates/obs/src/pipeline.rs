//! The bounded async trace pipeline: producers enqueue compact event
//! values into a lock-free [`Ring`]; one dedicated writer thread drains
//! the ring, JSON-encodes each event straight into a reused batch
//! buffer, and writes through the [`JsonlSink`]. Hot simulator / pipeline threads
//! never wait on the sink's mutex or on disk I/O — and they never pay
//! for string formatting either: the producer-side cost of an event is
//! a sampler hash, one CAS, and a register-sized memcpy. Encoding is
//! deferred to the writer thread, which runs concurrently with the
//! simulation and amortizes allocations across the whole trace.
//!
//! Two producer entry points with different overflow policies:
//!
//! * [`TracePipeline::event`] — lossy. When the ring is full the event is
//!   **counted and dropped** (the `obs.sink.dropped_events` counter plus
//!   an internal tally); the sim clock never blocks on telemetry.
//! * [`TracePipeline::control`] — lossless, and already encoded (control
//!   records are rare, so their formatting cost is irrelevant). Meta
//!   records and snapshot lines must not be reordered past buffered
//!   events, so they travel through the same ring, spin-retrying
//!   (yielding) until the writer makes room.
//!
//! [`TracePipeline::finish`] joins the writer, flushes, and hands the
//! sink back together with [`PipelineStats`] so the caller can append
//! the trailing drop-accounting `meta` record and final snapshots
//! directly — and surface any deferred write error to the exit path.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::json::JsonObject;
use crate::metrics;
use crate::ring::Ring;
use crate::sink::JsonlSink;

/// Default ring capacity (slots). Generous enough that full-rate traces
/// of the paper-scale workloads never drop under a healthy writer; small
/// enough (a few MB of event structs) to bound memory when the consumer
/// stalls. Overridable per run via `--trace-ring`.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 17;

/// What travels through the ring: an un-encoded event, a chunk of
/// events (producers batch locally to amortize queue traffic — see
/// [`TracePipeline::chunk`]), or an already encoded control line.
enum Record<T> {
    Event(T),
    Chunk(Vec<T>),
    Control(String),
}

/// Bytes the writer accumulates before one locked sink write. Large
/// enough to amortize the mutex and `write_all` across hundreds of
/// lines, small enough to keep output flowing.
const BATCH_BYTES: usize = 32 * 1024;

/// The writer-side encoder: appends the single-line JSON for an event to
/// the output buffer (never clearing it — the writer encodes straight
/// into its batch). Must not emit newlines. `FnMut` so encoders can keep
/// writer-thread-local state such as a formatting memo cache.
type Encoder<T> = Box<dyn FnMut(&T, &mut String) + Send>;

/// What moved through a pipeline, reported by [`TracePipeline::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Records accepted into the ring (events + control records).
    pub enqueued: u64,
    /// Records the writer thread drained and wrote.
    pub written: u64,
    /// Events rejected because the ring was full.
    pub dropped: u64,
    /// Sampling modulus the trace was produced under (1 = full rate).
    pub sample: u64,
}

impl PipelineStats {
    /// The trailing drop-accounting `meta` record (`command` is
    /// `trace_pipeline`), written after the writer thread has drained so
    /// readers can audit trace completeness.
    pub fn meta_line(&self) -> String {
        JsonObject::typed("meta")
            .str("command", "trace_pipeline")
            .str("detail", "drop accounting")
            .u64("enqueued", self.enqueued)
            .u64("written", self.written)
            .u64("dropped", self.dropped)
            .u64("sample", self.sample)
            .finish()
    }
}

/// Shared producer/consumer state.
struct Shared<T> {
    ring: Ring<Record<T>>,
    /// Set by [`TracePipeline::finish`]; the writer drains what is left
    /// and exits.
    closed: AtomicBool,
    /// When true the writer thread parks until `closed` is set instead
    /// of draining concurrently (see [`TracePipeline::start_deferred`]).
    deferred: bool,
    enqueued: AtomicU64,
    dropped: AtomicU64,
    /// The `obs.sink.dropped_events` handle, resolved once at start so
    /// the drop path touches only an atomic — never the registry mutex.
    drop_counter: &'static metrics::Counter,
}

/// A bounded async JSONL trace pipeline (see module docs), generic over
/// the event type so the crate that owns the event enum supplies the
/// encoder (e.g. the simulator pairs it with its `TraceEvent`). Cheap to
/// share: producers only need `&TracePipeline<T>`.
pub struct TracePipeline<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    /// Sampling modulus recorded in the final stats (the pipeline itself
    /// does not sample; the producing layer does).
    sample: u64,
    writer: Option<JoinHandle<(JsonlSink, u64, io::Result<()>)>>,
}

impl<T: Send> std::fmt::Debug for TracePipeline<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracePipeline")
            .field("capacity", &self.shared.ring.capacity())
            .field("enqueued", &self.shared.enqueued.load(Ordering::Relaxed))
            .field("dropped", &self.shared.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TracePipeline<String> {
    /// A pipeline whose events are already encoded lines — the tests'
    /// and ad-hoc producers' convenience constructor. Production trace
    /// paths use [`TracePipeline::start`] with a compact event type so
    /// encoding stays off the hot thread.
    pub fn start_lines(sink: JsonlSink, capacity: usize, sample: u64) -> TracePipeline<String> {
        TracePipeline::start(sink, capacity, sample, |line: &String, out| {
            out.push_str(line)
        })
    }
}

impl<T: Send + 'static> TracePipeline<T> {
    /// Starts the writer thread draining a ring of `capacity` slots into
    /// `sink`. `sample` is the sampling modulus the producer applies (1
    /// for full rate); it is only recorded, never acted on here.
    /// `encode` runs on the writer thread: it appends the single-line
    /// JSON for one event to the writer's output buffer (without
    /// clearing it), so steady-state encoding never allocates.
    pub fn start<F>(sink: JsonlSink, capacity: usize, sample: u64, encode: F) -> TracePipeline<T>
    where
        F: FnMut(&T, &mut String) + Send + 'static,
    {
        Self::start_impl(sink, capacity, sample, Box::new(encode), false)
    }

    /// Like [`TracePipeline::start`], but the writer thread stays parked
    /// (consuming no CPU) until [`TracePipeline::finish`], which then
    /// drains everything in one pass. Overhead-measurement mode: with
    /// the writer quiescent, the wall time of the producing phase is
    /// exactly the overhead tracing imposes on the producing thread, and
    /// the drain time is exactly the writer's encode+write throughput —
    /// on any core count. Requires a ring large enough for the whole
    /// trace (overflow is counted-and-dropped as usual, so an undersized
    /// ring is loud, not wrong), and [`TracePipeline::control`] must not
    /// be called before `finish` on a full ring (it would spin against a
    /// parked writer).
    pub fn start_deferred<F>(
        sink: JsonlSink,
        capacity: usize,
        sample: u64,
        encode: F,
    ) -> TracePipeline<T>
    where
        F: FnMut(&T, &mut String) + Send + 'static,
    {
        Self::start_impl(sink, capacity, sample, Box::new(encode), true)
    }

    fn start_impl(
        sink: JsonlSink,
        capacity: usize,
        sample: u64,
        encode: Encoder<T>,
        deferred: bool,
    ) -> TracePipeline<T> {
        // Resolve the drop counter up front: exposition always shows it
        // (a healthy run exports an explicit 0, not an absence) and the
        // drop path never takes the registry lock.
        let drop_counter = metrics::counter("obs.sink.dropped_events");
        drop_counter.add(0);
        let shared = Arc::new(Shared {
            ring: Ring::with_capacity(capacity),
            closed: AtomicBool::new(false),
            deferred,
            enqueued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drop_counter,
        });
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("prio-trace-writer".into())
            .spawn(move || writer_loop(writer_shared, sink, encode))
            .expect("spawn trace writer thread");
        TracePipeline {
            shared,
            sample: sample.max(1),
            writer: Some(writer),
        }
    }

    /// Enqueues one event value, dropping it (counted, never blocking)
    /// when the ring is full. No allocation, no formatting — those
    /// happen on the writer thread. Producers emitting at simulator
    /// rates should prefer [`TracePipeline::chunk`], which amortizes the
    /// queue's per-push cache traffic across a whole batch.
    pub fn event(&self, event: T) {
        match self.shared.ring.push(Record::Event(event)) {
            Ok(()) => {
                self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
            }
            Err(_rejected) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                self.shared.drop_counter.add(1);
            }
        }
    }

    /// Enqueues a batch of events as one ring record — the hot-path
    /// entry point. A push costs one CAS and a pointer-sized memcpy
    /// regardless of the batch size, so producers that buffer a few
    /// hundred events locally pay well under a nanosecond of queue
    /// traffic per event. Lossy like [`TracePipeline::event`]: when the
    /// ring is full the whole chunk is counted dropped, never blocking.
    pub fn chunk(&self, events: Vec<T>) {
        let n = events.len() as u64;
        if n == 0 {
            return;
        }
        match self.shared.ring.push(Record::Chunk(events)) {
            Ok(()) => {
                self.shared.enqueued.fetch_add(n, Ordering::Relaxed);
            }
            Err(_rejected) => {
                self.shared.dropped.fetch_add(n, Ordering::Relaxed);
                self.shared.drop_counter.add(n);
            }
        }
    }

    /// Enqueues one control record (meta / snapshot line), retrying until
    /// the writer makes room so control records are never lost and keep
    /// their position relative to earlier events.
    pub fn control(&self, line: String) {
        let mut record = Record::Control(line);
        loop {
            match self.shared.ring.push(record) {
                Ok(()) => {
                    self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(back) => {
                    record = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Events dropped so far (live view; exact once quiescent).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Closes the pipeline: the writer drains every remaining line,
    /// flushes, and hands the sink back so the caller can append the
    /// [`PipelineStats::meta_line`] drop-accounting record and final
    /// snapshots synchronously. The `io::Result` carries the first
    /// deferred write/flush error, which must reach the CLI exit path.
    pub fn finish(mut self) -> (JsonlSink, PipelineStats, io::Result<()>) {
        self.shared.closed.store(true, Ordering::Release);
        let writer = self.writer.take().expect("finish called once");
        // A deferred writer is parked; wake it to drain (no-op otherwise).
        writer.thread().unpark();
        let (sink, written, result) = match writer.join() {
            Ok(out) => out,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        let stats = PipelineStats {
            enqueued: self.shared.enqueued.load(Ordering::Relaxed),
            written,
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            sample: self.sample,
        };
        (sink, stats, result)
    }
}

impl<T: Send + 'static> Drop for TracePipeline<T> {
    fn drop(&mut self) {
        // `finish` consumed the handle on the normal path; on unwinding
        // paths stop the writer so the process does not hang on exit.
        if let Some(writer) = self.writer.take() {
            self.shared.closed.store(true, Ordering::Release);
            writer.thread().unpark();
            let _ = writer.join();
        }
    }
}

/// The writer thread's output stage: encodes records straight into a
/// batch buffer, validates the single-line contract per record (the same
/// contract [`JsonlSink::write_line`] enforces — an embedded newline
/// surfaces as `InvalidData`, in release builds too, and the offending
/// line is excised before it can tear the stream), and flushes the batch
/// through one locked sink write per [`BATCH_BYTES`].
struct BatchEncoder<T> {
    sink: JsonlSink,
    encode: Encoder<T>,
    batch: String,
    /// Lines buffered in `batch`, counted into `written` on flush.
    pending: u64,
    written: u64,
    first_err: io::Result<()>,
}

impl<T> BatchEncoder<T> {
    fn record(&mut self, record: Record<T>) {
        match record {
            Record::Event(event) => self.event(&event),
            Record::Chunk(events) => {
                for event in &events {
                    self.event(event);
                }
            }
            Record::Control(line) => self.line(&line),
        }
    }

    fn event(&mut self, event: &T) {
        let start = self.batch.len();
        (self.encode)(event, &mut self.batch);
        self.seal(start);
    }

    fn line(&mut self, line: &str) {
        let start = self.batch.len();
        self.batch.push_str(line);
        self.seal(start);
    }

    /// Terminates the line appended at `batch[start..]`: validates the
    /// no-embedded-newline contract (excising the line and recording
    /// `InvalidData` on violation), then adds the newline and flushes a
    /// full batch.
    fn seal(&mut self, start: usize) {
        let line = &self.batch[start..];
        if line.contains('\n') || line.contains('\r') {
            self.batch.truncate(start);
            if self.first_err.is_ok() {
                self.first_err = Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "JSONL lines must not contain embedded newlines",
                ));
            }
            return;
        }
        self.batch.push('\n');
        self.pending += 1;
        if self.batch.len() >= BATCH_BYTES {
            self.flush_batch();
        }
    }

    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        match self.sink.write_batch(&self.batch) {
            Ok(()) => self.written += self.pending,
            Err(e) if self.first_err.is_ok() => self.first_err = Err(e),
            Err(_) => {}
        }
        self.batch.clear();
        self.pending = 0;
    }
}

/// The writer thread: drain until closed *and* empty. Keeps writing even
/// after the first error so producers never stall on a dead consumer,
/// but remembers that first error for `finish`. Returns the sink so the
/// caller can keep using it synchronously.
fn writer_loop<T>(
    shared: Arc<Shared<T>>,
    sink: JsonlSink,
    encode: Encoder<T>,
) -> (JsonlSink, u64, io::Result<()>) {
    let mut out = BatchEncoder {
        sink,
        encode,
        batch: String::with_capacity(BATCH_BYTES + 512),
        pending: 0,
        written: 0,
        first_err: Ok(()),
    };
    if shared.deferred {
        // Overhead-measurement mode: stay off the CPU until close, then
        // drain in one pass. park() can wake spuriously, so re-check.
        while !shared.closed.load(Ordering::Acquire) {
            std::thread::park();
        }
    }
    loop {
        match shared.ring.pop() {
            Some(record) => out.record(record),
            None if shared.closed.load(Ordering::Acquire) => {
                // Pairs with finish()'s release store: all records pushed
                // before close are visible; one last drain, then exit.
                while let Some(record) = shared.ring.pop() {
                    out.record(record);
                }
                break;
            }
            None => {
                // Idle: don't sit on buffered lines while yielding.
                out.flush_batch();
                std::thread::yield_now();
            }
        }
    }
    out.flush_batch();
    let BatchEncoder {
        sink,
        written,
        mut first_err,
        ..
    } = out;
    if first_err.is_ok() {
        first_err = sink.flush();
    } else {
        let _ = sink.flush();
    }
    (sink, written, first_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Mutex;

    /// A Write appending into a shared buffer for read-back.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture_pipeline(
        capacity: usize,
        sample: u64,
    ) -> (TracePipeline<String>, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::to_writer(Box::new(SharedBuf(buf.clone())));
        (TracePipeline::start_lines(sink, capacity, sample), buf)
    }

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn writes_every_event_in_order_when_the_ring_is_large_enough() {
        let (pipeline, buf) = capture_pipeline(1 << 12, 1);
        for i in 0..1000 {
            pipeline.event(format!("{{\"type\":\"ev\",\"i\":{i}}}"));
        }
        let (sink, stats, result) = pipeline.finish();
        result.unwrap();
        sink.write_line(&stats.meta_line()).unwrap();
        sink.flush().unwrap();
        assert_eq!(stats.enqueued, 1000);
        assert_eq!(stats.written, 1000);
        assert_eq!(stats.dropped, 0);
        let lines = lines(&buf);
        assert_eq!(lines.len(), 1001);
        for (i, line) in lines[..1000].iter().enumerate() {
            assert_eq!(line, &format!("{{\"type\":\"ev\",\"i\":{i}}}"));
        }
        assert!(lines[1000].contains("\"command\":\"trace_pipeline\""));
        assert!(lines[1000].contains("\"dropped\":0"));
    }

    #[test]
    fn concurrent_producers_account_for_every_line() {
        // written + dropped == emitted, exactly, under racing producers
        // on a deliberately tiny ring.
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 10_000;
        let (pipeline, buf) = capture_pipeline(8, 1);
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let pipeline = &pipeline;
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        pipeline.event(format!("{{\"p\":{p},\"i\":{i}}}"));
                    }
                });
            }
        });
        let (_sink, stats, result) = pipeline.finish();
        result.unwrap();
        assert_eq!(stats.enqueued, stats.written);
        assert_eq!(
            stats.written + stats.dropped,
            PRODUCERS * PER_PRODUCER,
            "every emitted line is either written or counted dropped"
        );
        assert_eq!(lines(&buf).len() as u64, stats.written);
    }

    #[test]
    fn control_records_never_drop_even_on_a_tiny_ring() {
        let (pipeline, buf) = capture_pipeline(2, 1);
        for i in 0..500 {
            pipeline.control(format!("{{\"type\":\"meta\",\"i\":{i}}}"));
        }
        let (_sink, stats, result) = pipeline.finish();
        result.unwrap();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.written, 500);
        let lines = lines(&buf);
        assert_eq!(lines.len(), 500);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line, &format!("{{\"type\":\"meta\",\"i\":{i}}}"));
        }
    }

    #[test]
    fn deferred_write_errors_surface_at_finish() {
        struct BrokenDisk;
        impl Write for BrokenDisk {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::to_writer(Box::new(BrokenDisk));
        let pipeline = TracePipeline::start_lines(sink, 64, 1);
        pipeline.event("{\"type\":\"ev\",\"i\":0}".into());
        pipeline.event("{\"type\":\"ev\",\"i\":1}".into());
        let (_sink, stats, result) = pipeline.finish();
        let err = result.expect_err("write error must surface");
        assert_eq!(err.to_string(), "disk full");
        assert_eq!(stats.written, 0);
        assert_eq!(stats.enqueued, 2);
    }

    #[test]
    fn deferred_pipeline_stays_quiet_until_finish_then_drains_in_order() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::to_writer(Box::new(SharedBuf(buf.clone())));
        let pipeline: TracePipeline<String> =
            TracePipeline::start_deferred(sink, 1 << 12, 1, |line: &String, out| {
                out.push_str(line)
            });
        for i in 0..1000 {
            pipeline.event(format!("{{\"i\":{i}}}"));
        }
        // The parked writer must not have touched the sink yet — that
        // quiescence is the whole point of deferred mode.
        assert!(buf.lock().unwrap().is_empty());
        let (_sink, stats, result) = pipeline.finish();
        result.unwrap();
        assert_eq!(
            (stats.enqueued, stats.written, stats.dropped),
            (1000, 1000, 0)
        );
        let drained = lines(&buf);
        assert_eq!(drained.len(), 1000);
        assert_eq!(drained[17], "{\"i\":17}");
    }

    #[test]
    fn chunks_count_per_event_and_drop_whole_when_full() {
        // Capacity 2: two chunks fit, the third is rejected whole.
        let (pipeline, buf) = capture_pipeline(2, 1);
        pipeline.chunk(Vec::new()); // no-op, not a record
        pipeline.chunk(vec!["{\"i\":0}".to_string(), "{\"i\":1}".to_string()]);
        pipeline.chunk(vec!["{\"i\":2}".to_string()]);
        // Give the writer a moment to drain so later chunks can land, then
        // verify accounting is by event count, not record count.
        let (_sink, stats, result) = pipeline.finish();
        result.unwrap();
        assert_eq!(stats.enqueued + stats.dropped, 3);
        assert_eq!(stats.written, stats.enqueued);
        assert_eq!(lines(&buf).len() as u64, stats.written);
    }

    #[test]
    fn an_embedded_newline_in_an_event_is_an_error_not_a_torn_line() {
        let (pipeline, buf) = capture_pipeline(16, 1);
        pipeline.event("{\"ok\":1}".into());
        pipeline.event("{\"bad\":\ntrue}".into());
        let (_sink, _stats, result) = pipeline.finish();
        let err = result.expect_err("embedded newline must surface");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The malformed line was rejected before it could tear the stream.
        assert_eq!(lines(&buf), vec!["{\"ok\":1}".to_string()]);
    }

    #[test]
    fn drop_accounting_meta_line_carries_the_sample_modulus() {
        let (pipeline, _buf) = capture_pipeline(16, 8);
        pipeline.event("{\"type\":\"ev\"}".into());
        let (_sink, stats, result) = pipeline.finish();
        result.unwrap();
        let meta = stats.meta_line();
        assert!(meta.contains("\"sample\":8"), "{meta}");
        assert!(meta.contains("\"enqueued\":1"), "{meta}");
    }
}
