//! A counting global allocator for per-stage resource profiling
//! (`alloc-profile` feature).
//!
//! Binaries that want allocation telemetry install [`CountingAllocator`]
//! as their `#[global_allocator]`. It tracks live and peak bytes (the
//! §3.6 memory column) plus cumulative allocation count and bytes, which
//! [`crate::span`] reads to attach per-span deltas when
//! [`set_span_profiling`] is on. Profiling is off by default so span
//! records — and every JSONL artifact — are byte-identical to builds
//! without the feature until a caller opts in (the CLI's
//! `--profile-alloc` flag).

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Currently allocated bytes (process-wide, via the counting allocator).
pub static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE_BYTES`].
pub static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
/// Cumulative number of allocations (calls to `alloc`, plus growing
/// `realloc`s).
pub static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
/// Cumulative bytes ever allocated (monotone; never decremented).
pub static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

static SPAN_PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns per-span allocation deltas on or off (default off). Only
/// meaningful when [`CountingAllocator`] is installed; without it the
/// counters stay zero and spans record zero deltas.
pub fn set_span_profiling(on: bool) {
    SPAN_PROFILING.store(on, Ordering::Relaxed);
}

/// Whether spans currently attach allocation deltas.
pub fn span_profiling() -> bool {
    SPAN_PROFILING.load(Ordering::Relaxed)
}

/// A `System`-backed allocator that tracks live/peak bytes and
/// cumulative allocation count/bytes.
pub struct CountingAllocator;

// SAFETY: delegates all allocation to `System` and only adds relaxed
// atomic bookkeeping; size/layout pairs are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let grown = new_size - old;
                let live = LIVE_BYTES.fetch_add(grown, Ordering::Relaxed) + grown;
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
                ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
                ALLOC_BYTES.fetch_add(grown as u64, Ordering::Relaxed);
            } else {
                LIVE_BYTES.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Resets the peak to the current live count and returns a guard-style
/// baseline; call [`peak_since`] with the returned baseline afterwards.
pub fn reset_peak() -> usize {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

/// Peak bytes allocated above the given baseline since [`reset_peak`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline)
}
