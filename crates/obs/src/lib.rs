//! # prio-obs — zero-dependency observability for the prioritization
//! pipeline
//!
//! The paper's §3.5 evaluation measures the tool itself: per-phase running
//! time of the prioritization pipeline and per-run behavior of the
//! simulator. This crate provides the three signal families that
//! measurement needs, with `std` only (atomics, [`std::time::Instant`], a
//! hand-rolled JSON writer):
//!
//! * **[`span`]s** — RAII guards timing named scopes. Nesting composes
//!   paths (`decompose` inside `prio` records as `prio/decompose`), and
//!   every completed span feeds a thread-safe registry of per-path
//!   count / total / max statistics.
//! * **[`metrics`]** — named atomic [`metrics::Counter`]s,
//!   high-water-mark [`metrics::Gauge`]s, and log-bucketed
//!   [`hist::Histogram`]s recording hot-path facts (shortcut arcs
//!   removed, profile-interner hit ratio, simulator events processed,
//!   per-job latencies, …).
//! * **[`sink`]** — a structured JSONL event sink serializing span,
//!   counter, and histogram snapshots (and, via `prio-sim`, the
//!   simulator's trace and telemetry events) to a file or stderr;
//!   [`json`] holds the writer and a minimal parser used to validate and
//!   replay the output, and defines the versioned record schema
//!   ([`json::SCHEMA_VERSION`]). [`stream`] reads such files back as a
//!   bounded-memory record iterator (the `prio report` / `prio trace`
//!   ingestion path).
//!
//! With the `alloc-profile` feature, [`mem`] provides a counting global
//! allocator and spans optionally carry per-stage allocation deltas
//! (count/bytes/peak) — see [`mem::set_span_profiling`].
//!
//! Two further primitives back the simulator's time-series telemetry:
//! [`hist::Histogram`] (lock-free atomic log-linear buckets with
//! p50/p90/p99/max summaries) and [`timeseries::TimeSeries`] (a bounded,
//! self-downsampling ring of `(time, value)` samples with an exact
//! digest).
//!
//! Verbosity is gated by [`config`]: the CLI's `-v`/`--verbose` flag and
//! the `PRIO_LOG` environment variable. [`report`] renders the
//! human-readable phase-timing footer the CLI prints.
//!
//! All state is process-global so instrumentation points need no plumbed
//! handles; [`reset`] clears it between measured sections (the overhead
//! harness does this per workload).

// `deny` rather than `forbid`: the feature-gated counting allocator
// (`mem`) must implement `GlobalAlloc`, which is unsafe by nature; it
// scopes its own `allow` with a SAFETY argument. Everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hist;
pub mod json;
#[cfg(feature = "alloc-profile")]
pub mod mem;
pub mod metrics;
pub mod pipeline;
pub mod prom;
pub mod report;
pub mod ring;
pub mod sample;
pub mod sink;
pub mod span;
pub mod stage;
pub mod stream;
pub mod timeseries;

pub use config::{init_from_env, set_verbosity, verbosity, Level};
pub use hist::{Histogram, HistogramSnapshot, HistogramSummary};
pub use metrics::{counter, gauge, histogram, Counter, Gauge};
pub use pipeline::{PipelineStats, TracePipeline, DEFAULT_RING_CAPACITY};
pub use ring::Ring;
pub use sample::JobSampler;
pub use sink::JsonlSink;
pub use span::{span, SpanGuard};
pub use timeseries::{TimeSeries, TimeSeriesDigest};

/// Clears all recorded spans and zeroes all counters and gauges, so a
/// fresh measured section starts from nothing. Registered metric names
/// survive (they are `&'static`); only their values reset.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
}
