//! A lock-free log-bucketed histogram of `u64` samples.
//!
//! Recording touches four relaxed atomics (bucket, count, sum, max) and
//! never takes a lock, so hot paths — span drops, per-job simulator
//! latencies — can feed a shared histogram from many threads without
//! contention. The bucket layout is HDR-style log-linear:
//!
//! * values `0..32` land in 32 exact unit buckets;
//! * larger values split each power-of-two octave into 16 sub-buckets,
//!   bounding the relative quantization error by 1/16 (6.25%).
//!
//! Percentiles come from a [`HistogramSnapshot`]: the reported quantile is
//! the *upper bound* of the bucket containing the requested rank, clamped
//! to the exact maximum seen — conservative (never under-reports) and
//! exact at bucket boundaries and for values below 32.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this land in exact unit buckets.
const LINEAR_MAX: u64 = 32;
/// log2 of the sub-buckets per octave above the linear range.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (quantization error ≤ 1/SUBBUCKETS).
const SUBBUCKETS: usize = 1 << SUB_BITS;
/// First octave above the linear range: values in `[2^5, 2^6)`.
const FIRST_OCTAVE: u32 = 5;
/// Total buckets: the linear range plus 16 per octave for octaves 5..=63.
pub const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE as usize) * SUBBUCKETS;

/// The bucket index `value` lands in.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        let octave = 63 - value.leading_zeros(); // >= FIRST_OCTAVE
        let sub = ((value >> (octave - SUB_BITS)) as usize) & (SUBBUCKETS - 1);
        LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUBBUCKETS + sub
    }
}

/// The inclusive `(low, high)` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    debug_assert!(index < NUM_BUCKETS);
    if (index as u64) < LINEAR_MAX {
        (index as u64, index as u64)
    } else {
        let k = index - LINEAR_MAX as usize;
        let octave = FIRST_OCTAVE + (k / SUBBUCKETS) as u32;
        let sub = (k % SUBBUCKETS) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        let low = (SUBBUCKETS as u64 + sub) * width;
        (low, low + (width - 1))
    }
}

/// A lock-free histogram: atomic log-linear buckets plus exact count, sum,
/// and max.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Histogram {
    /// A deep copy of the current bucket counts and aggregates (a
    /// [`Histogram::snapshot`] materialized back into atomics). Concurrent
    /// recorders on the source may land between the individual loads.
    fn clone(&self) -> Histogram {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed)))
                .collect(),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            sum: AtomicU64::new(self.sum.load(Ordering::Relaxed)),
            max: AtomicU64::new(self.max.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: four relaxed atomic operations.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Single-owner fast path: the same accounting as
    /// [`Histogram::record`] with plain adds instead of atomic RMWs.
    /// The simulator records two per-job latencies for every job in a
    /// traced run -- millions of calls from one thread, where even
    /// uncontended lock-prefixed adds are a measurable slice of the
    /// observability overhead budget.
    pub fn record_mut(&mut self, value: u64) {
        *self.buckets[bucket_index(value)].get_mut() += 1;
        *self.count.get_mut() += 1;
        *self.sum.get_mut() += value;
        let max = self.max.get_mut();
        *max = (*max).max(value);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and exact aggregates.
    /// Concurrent recorders may land between the individual loads; each
    /// loaded value is itself consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// The five-number summary of a fresh snapshot.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }

    /// Zeroes every bucket and aggregate.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wraps on overflow past `u64::MAX`).
    pub sum: u64,
    /// The exact largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 < q <= 1.0`): the upper bound of the bucket
    /// holding the sample of rank `ceil(q × count)`, clamped to the exact
    /// maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// The arithmetic mean of the samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count, mean, p50/p90/p99, and max in one struct.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            max: self.max,
        }
    }
}

/// The rendered summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_total_and_monotone() {
        // Every representative value maps into a bucket whose bounds
        // contain it, and bucket bounds tile the u64 range in order.
        for v in (0..4096u64).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 17]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} not in bucket {i} [{lo}, {hi}]");
        }
        let mut prev_hi = None;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap or overlap before bucket {i}");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX), "buckets must cover u64");
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..LINEAR_MAX {
            assert_eq!(snap.buckets[v as usize], 1);
        }
        // Below the linear max every percentile is an exact sample value.
        assert_eq!(snap.percentile(0.5), 15); // rank 16 of 32 → value 15
        assert_eq!(snap.percentile(1.0), 31);
        assert_eq!(snap.max, 31);
    }

    #[test]
    fn percentiles_at_bucket_boundaries() {
        // 100 samples of value 100: p50 = p99 = max = 100 exactly, because
        // quantiles clamp to the exact max even though 100 sits mid-bucket.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99, s.max), (100, 100, 100, 100));
        assert_eq!(s.mean, 100.0);

        // A boundary value 2^k lands in the bucket starting at 2^k; its
        // quantile never under-reports and errs by at most 1/16.
        for k in [5u32, 10, 20, 40] {
            let v = 1u64 << k;
            let h = Histogram::new();
            h.record(v);
            let p = h.snapshot().percentile(0.5);
            assert!(p >= v, "p50 {p} under-reports {v}");
            assert!(p <= v + (v >> SUB_BITS), "p50 {p} too far above {v}");
        }
    }

    #[test]
    fn rank_math_at_split_points() {
        // Two distinct values: the median rank must fall on the first.
        let h = Histogram::new();
        h.record(1);
        h.record(1000);
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.5), 1, "rank ceil(0.5×2)=1 → first");
        let p99 = snap.percentile(0.99);
        assert!((1000..=1000 + (1000 >> SUB_BITS)).contains(&p99));
        // Three values: ranks 1, 2, 3 at q ≤ 1/3, ≤ 2/3, 1.0.
        let h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.percentile(1.0 / 3.0), 10);
        assert_eq!(snap.percentile(2.0 / 3.0), 20);
        assert_eq!(snap.percentile(1.0), 30);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p99, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.record(70_000);
        h.reset();
        assert_eq!(h.count(), 0);
        let snap = h.snapshot();
        assert!(snap.buckets.iter().all(|&b| b == 0));
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        // The lock-free contract: N threads × M records all land, and the
        // aggregates (count, sum, max) agree with the bucket totals.
        let h = Histogram::new();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * 1_000 + i % 97);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
        let expected_sum: u64 = (0..THREADS)
            .flat_map(|t| (0..PER_THREAD).map(move |i| t * 1_000 + i % 97))
            .sum();
        assert_eq!(snap.sum, expected_sum);
        assert_eq!(snap.max, 7_096);
    }
}
