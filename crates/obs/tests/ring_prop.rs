//! Property tests for the bounded trace pipeline's accounting invariant:
//! under arbitrary producer/consumer interleavings, every enqueued line
//! is either drained (written) or recorded as dropped — never silently
//! lost, never double-counted.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use prio_obs::{JsonlSink, Ring, TracePipeline};
use proptest::prelude::*;

/// A `Write` that appends into a shared buffer so tests can count the
/// lines the writer thread actually emitted.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw ring: drained + rejected == pushed, for random capacities,
    /// producer counts, and per-producer volumes, with a consumer racing
    /// the producers (random interleavings come from the scheduler).
    #[test]
    fn ring_drained_plus_rejected_equals_pushed(
        capacity in 1usize..128,
        producers in 1usize..5,
        per_producer in 1usize..800,
    ) {
        let ring = Ring::with_capacity(capacity);
        let rejected = AtomicUsize::new(0);
        let drained = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..producers {
                let (ring, rejected, done) = (&ring, &rejected, &done);
                scope.spawn(move || {
                    for i in 0..per_producer {
                        if ring.push(format!("{p}:{i}")).is_err() {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    done.fetch_add(1, Ordering::Release);
                });
            }
            let (ring, drained, done) = (&ring, &drained, &done);
            scope.spawn(move || loop {
                match ring.pop() {
                    Some(_) => {
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                    None if done.load(Ordering::Acquire) == producers => {
                        while ring.pop().is_some() {
                            drained.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                    None => std::thread::yield_now(),
                }
            });
        });
        prop_assert_eq!(
            drained.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
            producers * per_producer
        );
        prop_assert!(ring.is_empty());
    }

    /// Full pipeline: written + dropped == emitted, and the lines on the
    /// output stream agree with the written count exactly.
    #[test]
    fn pipeline_written_plus_dropped_equals_emitted(
        capacity in 1usize..64,
        producers in 1usize..5,
        per_producer in 1usize..600,
    ) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::to_writer(Box::new(SharedBuf(buf.clone())));
        let pipeline = TracePipeline::start_lines(sink, capacity, 1);
        std::thread::scope(|scope| {
            for p in 0..producers {
                let pipeline = &pipeline;
                scope.spawn(move || {
                    for i in 0..per_producer {
                        pipeline.event(format!("{{\"p\":{p},\"i\":{i}}}"));
                    }
                });
            }
        });
        let (_sink, stats, result) = pipeline.finish();
        prop_assert!(result.is_ok());
        prop_assert_eq!(stats.enqueued, stats.written);
        prop_assert_eq!(
            stats.written + stats.dropped,
            (producers * per_producer) as u64
        );
        let written_lines = buf
            .lock()
            .unwrap()
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u64;
        prop_assert_eq!(written_lines, stats.written);
    }
}
