//! Property tests of the content-hash cache key: two workflows share a
//! cache entry exactly when their post-intern CSR — labels and arcs —
//! is identical. Any single-label or single-arc difference must produce
//! a different key (and therefore a cache miss), while rebuilding the
//! same structure from scratch must land on the same entry.

use prio_graph::{Dag, DagBuilder, NodeId};
use prio_serve::{text_key, workflow_key, ResultCache};
use proptest::prelude::*;

/// A buildable dag description: unique labels and `u < v` index arcs.
#[derive(Debug, Clone)]
struct Spec {
    labels: Vec<String>,
    arcs: Vec<(u32, u32)>,
}

fn build(spec: &Spec) -> Dag {
    let mut b = DagBuilder::new();
    for label in &spec.labels {
        b.add_node(label.clone());
    }
    for &(u, v) in &spec.arcs {
        b.add_arc(NodeId(u), NodeId(v)).unwrap();
    }
    b.build().unwrap()
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (2usize..16).prop_flat_map(|n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let k = pairs.len();
        let stems = proptest::collection::vec(any::<u64>(), n);
        let mask = proptest::collection::vec(proptest::bool::weighted(0.3), k);
        (stems, mask).prop_map(move |(stems, mask)| Spec {
            // The index suffix keeps labels unique however the random
            // stems collide (the builder would otherwise merge equal
            // labels into one node).
            labels: stems
                .iter()
                .enumerate()
                .map(|(i, stem)| format!("n{:x}_{i}", stem % 4096))
                .collect(),
            arcs: pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(&p, _)| p)
                .collect(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rebuilding the identical structure yields the identical key, and
    /// through a [`ResultCache`] the second workflow finds the entry the
    /// first one inserted — the cache sharing the key exists for.
    #[test]
    fn identical_csr_shares_one_entry(spec in arb_spec()) {
        let a = build(&spec);
        let b = build(&spec);
        prop_assert_eq!(workflow_key(&a), workflow_key(&b));

        let cache = ResultCache::new(1 << 20);
        let order: prio_serve::cache::CachedOrder =
            a.node_ids().collect::<Vec<NodeId>>().into();
        cache.insert(workflow_key(&a), order);
        prop_assert!(cache.get(workflow_key(&b), b.num_nodes()).is_some());
        let stats = cache.stats();
        prop_assert_eq!((stats.hits, stats.entries), (1, 1));
    }

    /// Changing any single label changes the key.
    #[test]
    fn any_label_difference_misses(spec in arb_spec(), which in any::<usize>()) {
        let base = workflow_key(&build(&spec));
        let mut mutated = spec.clone();
        let i = which % mutated.labels.len();
        // '#' never occurs in generated labels, so the mutated label
        // cannot collide with (and merge into) another node.
        mutated.labels[i].push('#');
        prop_assert_ne!(base, workflow_key(&build(&mutated)));
    }

    /// Removing any single arc — or adding any absent one — changes the
    /// key.
    #[test]
    fn any_arc_difference_misses(spec in arb_spec(), which in any::<usize>()) {
        let base = workflow_key(&build(&spec));

        if !spec.arcs.is_empty() {
            let mut removed = spec.clone();
            let i = which % removed.arcs.len();
            removed.arcs.remove(i);
            prop_assert_ne!(base, workflow_key(&build(&removed)));
        }

        let n = spec.labels.len() as u32;
        let absent: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|p| !spec.arcs.contains(p))
            .collect();
        if !absent.is_empty() {
            let mut added = spec.clone();
            added.arcs.push(absent[which % absent.len()]);
            prop_assert_ne!(base, workflow_key(&build(&added)));
        }
    }

    /// The text-memo key is sound the same way: equal (format, text)
    /// agree, and any difference in either component separates them.
    #[test]
    fn text_key_separates_format_and_text(stem in any::<u64>(), salt in any::<u64>()) {
        let format = format!("f{:x}", stem % 512);
        let text = format!("a\tb{:x}\nb{0:x}\tc\n", salt % 4096);
        let suffix = format!("x{:x}", (stem ^ salt) % 256);
        prop_assert_eq!(text_key(&format, &text), text_key(&format, &text));
        prop_assert_ne!(
            text_key(&format, &text),
            text_key(&format, &format!("{text}{suffix}"))
        );
        prop_assert_ne!(
            text_key(&format, &text),
            text_key(&format!("{format}{suffix}"), &text)
        );
        // The per-write length folding prevents aliasing across the
        // format/text boundary: moving bytes between the two fields is
        // a different key even though the concatenation is identical.
        prop_assert_ne!(
            text_key(&format!("{format}{suffix}"), &text),
            text_key(&format, &format!("{suffix}{text}"))
        );
    }
}

/// A non-proptest anchor on the smallest interesting cases.
#[test]
fn two_node_variants_are_all_distinct() {
    let chain = build(&Spec {
        labels: vec!["a".into(), "b".into()],
        arcs: vec![(0, 1)],
    });
    let loose = build(&Spec {
        labels: vec!["a".into(), "b".into()],
        arcs: vec![],
    });
    let renamed = build(&Spec {
        labels: vec!["a".into(), "c".into()],
        arcs: vec![(0, 1)],
    });
    let keys = [
        workflow_key(&chain),
        workflow_key(&loose),
        workflow_key(&renamed),
    ];
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[0], keys[2]);
    assert_ne!(keys[1], keys[2]);
}
