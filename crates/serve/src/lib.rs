//! # prio-serve — the prioritization daemon
//!
//! The paper's tool is a one-shot CLI; this crate turns the same pipeline
//! into a long-running service. A daemon speaks line-delimited JSON over
//! a TCP socket or a stdin/stdout pair ([`protocol`]): one request per
//! line, one id-matched response line per request, so clients pipeline
//! freely. Prioritize requests flow through a bounded MPMC queue
//! ([`queue`], built on the Vyukov ring from `prio-obs`) into a fixed
//! pool of workers, each reusing one `PrioContext` across requests;
//! when the queue is full the daemon *sheds* — an explicit `overloaded`
//! response, never a blocked client or an unbounded buffer. Results are
//! memoized in a sharded content-hash LRU cache ([`cache`]) keyed by
//! exactly the inputs the pipeline reads (the post-intern CSR: labels +
//! arcs), so resubmitted workflows are answered without recomputation —
//! and, because the canonical cache stores the schedule rather than
//! rendered text, warm responses stay byte-identical to cold ones in
//! every output format. Two memo layers on top of that cache (rendered
//! exports keyed by output format plus a [`cache::render_key`] over the
//! exporter's non-CSR inputs, and a text memo from exact request bytes
//! to CSR key) let the common warm request skip the import and export
//! entirely — they replay bytes the cold path produced, so they
//! accelerate without changing a single response.
//!
//! Entry points: [`Server::bind`] (TCP), [`serve_stdio`] /
//! [`serve_streams`] (single connection), all configured by
//! [`ServeConfig`]. Per-request latency lands in the
//! `serve.request.micros` histogram and the `serve.*` counters, surfaced
//! by the `stats` control verb, the CLI's `--metrics-out` Prometheus
//! text, and `prio_obs` snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{render_key, text_key, workflow_key, CacheKey, CacheStats, ResultCache, TextKey};
pub use protocol::{encode_control, encode_request, parse_request, Request, RequestError, Verb};
pub use queue::RequestQueue;
pub use server::{serve_stdio, serve_streams, ServeConfig, ServeStats, Server};
