//! The `prio serve` daemon: connection handling, the worker pool, and
//! the graceful-shutdown protocol.
//!
//! # Architecture
//!
//! ```text
//!              accept thread (TCP) / inline loop (stdio)
//!                     │ one reader per connection
//!            ┌────────┴────────┐
//!   control verbs          prioritize requests
//!   (ping/stats/shutdown,  ──▶ bounded RequestQueue ──▶ worker pool
//!    answered inline —          │ full? shed with          │ PrioContext
//!    they respond even          │ an `overloaded`          │ per worker,
//!    when the queue is          ▼ response                 ▼ shared cache
//!    saturated)            response written through the connection's
//!                          mutexed writer, id-matched, any order
//! ```
//!
//! # Shutdown protocol
//!
//! A `shutdown` verb (or [`Server::stop`]) must never drop a response for
//! a request that was already accepted. The teardown order guarantees it:
//!
//! 1. the shutdown flag flips; the accept loop stops taking connections;
//! 2. every open connection's **read half** is shut down, so readers see
//!    EOF after their current line — no new requests enter;
//! 3. reader threads are joined — only then can no push race the close;
//! 4. the queue closes; workers drain until it is closed *and* empty;
//! 5. workers are joined, and only now are the write halves dropped.
//!
//! # Worker hygiene
//!
//! Input errors (bad format, parse failure, cycles) are a normal part of
//! serving and reuse the worker's [`PrioContext`]. An *internal* pipeline
//! error is different: it means the scratch state is suspect, so the
//! worker replaces its context with a fresh one before the next request —
//! one poisoned request cannot degrade the requests after it.

use crate::cache::{render_key, text_key, workflow_key, CacheStats, ResultCache, TextKey};
use crate::protocol::{
    error_response, ok_response, overloaded_response, parse_request, ping_response,
    prio_error_response, Request, Verb,
};
use crate::queue::RequestQueue;
use prio_core::{PrioContext, PrioError, Prioritizer};
use prio_ir::{FormatId, Frontend, Priorities, Workflow};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration (the CLI's `serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads pulling from the request queue.
    pub threads: usize,
    /// Bounded request-queue capacity; overflow sheds with `overloaded`.
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Maximum accepted request line length in bytes; longer lines get a
    /// structured error and are discarded without buffering them.
    pub max_request_bytes: usize,
    /// Default input format when a request names none (`None`/`"auto"` =
    /// content detection via the registry).
    pub default_format: Option<String>,
    /// Artificial per-request worker delay — a chaos/test hook used by
    /// the backpressure suite to hold the queue full deterministically.
    pub worker_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 2,
            queue_capacity: 1024,
            cache_bytes: 64 << 20,
            max_request_bytes: 16 << 20,
            default_format: None,
            worker_delay: Duration::ZERO,
        }
    }
}

/// Per-server request counters (the `stats` verb reads these; the global
/// `serve.*` observability counters aggregate across all servers in the
/// process).
#[derive(Default)]
struct Counters {
    received: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
}

/// A point-in-time statistics snapshot (the `stats` verb payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Request lines received (including malformed ones).
    pub received: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered with a structured error.
    pub errors: u64,
    /// Requests shed with `overloaded` (equals the queue's shed count for
    /// this server).
    pub shed: u64,
    /// Result-cache counters and occupancy.
    pub cache: CacheStats,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Worker-pool size.
    pub threads: usize,
}

/// One accepted connection's write half, shared by the reader (control
/// verbs, shed responses) and every worker holding one of its jobs.
struct Conn {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl Conn {
    fn new(writer: Box<dyn Write + Send>) -> Arc<Conn> {
        Arc::new(Conn {
            writer: Mutex::new(writer),
        })
    }

    /// Writes one response line. A failed write (client went away) is
    /// counted, not fatal: the daemon and its workers keep serving.
    fn send_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap();
        let result = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush());
        if result.is_err() {
            prio_obs::counter("serve.conn.write_errors").inc();
        }
    }
}

/// One queued prioritize request.
struct Job {
    request: Request,
    conn: Arc<Conn>,
    enqueued: Instant,
}

/// State shared by the accept loop, readers, and workers.
struct Shared {
    config: ServeConfig,
    registry: prio_ir::FormatRegistry,
    queue: RequestQueue<Job>,
    cache: ResultCache,
    counters: Counters,
    shutdown: AtomicBool,
    shutdown_signal: (Mutex<bool>, Condvar),
}

impl Shared {
    fn new(config: ServeConfig) -> Arc<Shared> {
        Arc::new(Shared {
            queue: RequestQueue::with_capacity(config.queue_capacity),
            cache: ResultCache::new(config.cache_bytes),
            config,
            registry: prio_dagman::registry(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
        })
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cvar) = &self.shutdown_signal;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            received: self.counters.received.load(Ordering::Relaxed),
            ok: self.counters.ok.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            shed: self.counters.overloaded.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            threads: self.config.threads.max(1),
        }
    }
}

/// The `stats` verb response body.
fn stats_response(id: &str, s: &ServeStats) -> String {
    prio_obs::json::JsonObject::typed("response")
        .str("id", id)
        .str("status", "ok")
        .u64("received", s.received)
        .u64("ok", s.ok)
        .u64("errors", s.errors)
        .u64("shed", s.shed)
        .u64("cache_hits", s.cache.hits)
        .u64("cache_misses", s.cache.misses)
        .u64("cache_evictions", s.cache.evictions)
        .u64("cache_entries", s.cache.entries)
        .u64("cache_bytes", s.cache.bytes)
        .u64("queue_depth", s.queue_depth as u64)
        .u64("queue_capacity", s.queue_capacity as u64)
        .u64("threads", s.threads as u64)
        .finish()
}

fn shutdown_response(id: &str) -> String {
    prio_obs::json::JsonObject::typed("response")
        .str("id", id)
        .str("status", "ok")
        .bool("shutdown", true)
        .finish()
}

/// Resolves the input frontend for a request exactly like the one-shot
/// facade: an explicit name (anything but `auto`) must be registered; no
/// name (or `auto`) falls back to content detection.
fn resolve_frontend<'r>(
    registry: &'r prio_ir::FormatRegistry,
    name: Option<&str>,
    text: &str,
) -> Result<&'r dyn Frontend, PrioError> {
    match name.filter(|n| !n.eq_ignore_ascii_case("auto")) {
        Some(name) => registry.by_name(name).ok_or_else(|| {
            prio_ir::ImportError::whole_file(FormatId::Dagman, format!("unknown format {name:?}"))
                .into()
        }),
        None => registry.detect(None, text).ok_or_else(|| {
            prio_ir::ImportError::whole_file(
                FormatId::Dagman,
                "cannot detect workflow format".to_string(),
            )
            .into()
        }),
    }
}

/// Runs one prioritize request to a response line. `ctx` is the calling
/// worker's scratch context; on an internal pipeline error it is replaced
/// with a fresh one so the failure cannot poison later requests.
fn handle_prioritize(shared: &Shared, request: &Request, ctx: &mut PrioContext) -> String {
    match prioritize_request(shared, request, ctx) {
        Ok(line) => {
            shared.counters.ok.fetch_add(1, Ordering::Relaxed);
            prio_obs::counter("serve.request.ok").inc();
            line
        }
        Err(error) => {
            if error.is_internal() {
                *ctx = PrioContext::new();
            }
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            prio_obs::counter("serve.request.error").inc();
            prio_error_response(&request.id, &error)
        }
    }
}

/// Resolves the requested output frontend. The error for an unknown name
/// carries the *input* format's provenance, matching the one-shot facade.
fn output_frontend<'r>(
    registry: &'r prio_ir::FormatRegistry,
    output: Option<&str>,
    input: &'r dyn Frontend,
) -> Result<&'r dyn Frontend, PrioError> {
    match output {
        Some(name) => registry.by_name(name).ok_or_else(|| {
            PrioError::from(prio_ir::ImportError::whole_file(
                input.id(),
                format!("unknown output format {name:?}"),
            ))
        }),
        None => Ok(input),
    }
}

/// The warm fast path: this exact request text was served before, its
/// result entry is still live, and the export for the requested output
/// format is already rendered — so the response replays the cold
/// request's bytes without parsing, prioritizing, or exporting anything.
/// `Ok(None)` falls through to the full path; the only error it can
/// produce (an unknown output format name) is byte-identical to the full
/// path's.
fn try_fast_path(
    shared: &Shared,
    request: &Request,
    tk: TextKey,
) -> Result<Option<String>, PrioError> {
    let Some((key, in_fmt, n, render)) = shared.cache.memo_get(tk) else {
        return Ok(None);
    };
    let out_id = match request.output.as_deref() {
        Some(name) => match shared.registry.by_name(name) {
            Some(f) => f.id(),
            None => {
                return Err(PrioError::from(prio_ir::ImportError::whole_file(
                    in_fmt,
                    format!("unknown output format {name:?}"),
                )))
            }
        },
        None => in_fmt,
    };
    Ok(shared
        .cache
        .rendered_hit(key, n, render, out_id)
        .map(|text| ok_response(&request.id, out_id.name(), true, &text)))
}

fn prioritize_request(
    shared: &Shared,
    request: &Request,
    ctx: &mut PrioContext,
) -> Result<String, PrioError> {
    let format = request
        .format
        .as_deref()
        .or(shared.config.default_format.as_deref());
    let tk = text_key(format.unwrap_or("auto"), &request.workflow);
    if let Some(line) = try_fast_path(shared, request, tk)? {
        return Ok(line);
    }
    let frontend = resolve_frontend(&shared.registry, format, &request.workflow)?;
    let workflow: Workflow = frontend.import(&request.workflow)?;
    let n = workflow.num_jobs();
    let key = workflow_key(workflow.dag());
    // The schedule is shared by CSR alone; the rendered bytes also hinge
    // on what the exporter reads beyond it (source format, metadata).
    let rk = render_key(&workflow);
    let out = output_frontend(&shared.registry, request.output.as_deref(), frontend)?;
    let render = |order: &[prio_graph::NodeId]| -> Arc<str> {
        let priorities = Priorities::from_order(order, n);
        out.export(&workflow, &priorities).into()
    };
    let (cached, rendered) = match shared.cache.get_with_rendered(key, n, rk, out.id()) {
        Some((_, Some(text))) => (true, text),
        Some((order, None)) => {
            // The schedule is cached but this (metadata, output format)
            // has not been rendered yet; render it once and memoize.
            let text = render(&order);
            shared
                .cache
                .note_rendered(key, rk, out.id(), Arc::clone(&text));
            (true, text)
        }
        None => {
            let result = Prioritizer::new().prioritize_workflow_in(&workflow, ctx)?;
            let order: crate::cache::CachedOrder = result.schedule.order().into();
            shared.cache.insert(key, order.clone());
            let text = render(&order);
            shared
                .cache
                .note_rendered(key, rk, out.id(), Arc::clone(&text));
            (false, text)
        }
    };
    shared.cache.memo_insert(tk, key, frontend.id(), n, rk);
    Ok(ok_response(&request.id, out.id().name(), cached, &rendered))
}

/// The worker loop: drain the queue until it is closed and empty.
fn worker_loop(shared: &Arc<Shared>) {
    let mut ctx = PrioContext::new();
    while let Some(job) = shared.queue.pop_wait() {
        if !shared.config.worker_delay.is_zero() {
            std::thread::sleep(shared.config.worker_delay);
        }
        let response = handle_prioritize(shared, &job.request, &mut ctx);
        job.conn.send_line(&response);
        let micros = job.enqueued.elapsed().as_micros() as u64;
        prio_obs::histogram("serve.request.micros").record(micros);
    }
}

/// Handles one request line from a connection. Control verbs answer
/// inline (they work even with a saturated queue); prioritize requests
/// enqueue or shed.
fn handle_line(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    line: &str,
    first_version: &mut Option<u64>,
) {
    shared.counters.received.fetch_add(1, Ordering::Relaxed);
    prio_obs::counter("serve.request.received").inc();
    let request = match parse_request(line, first_version) {
        Ok(request) => request,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            prio_obs::counter("serve.request.error").inc();
            conn.send_line(&error_response(e.id.as_deref(), "request", &e.message));
            return;
        }
    };
    match request.verb {
        Verb::Ping => conn.send_line(&ping_response(&request.id)),
        Verb::Stats => conn.send_line(&stats_response(&request.id, &shared.stats())),
        Verb::Shutdown => {
            conn.send_line(&shutdown_response(&request.id));
            shared.begin_shutdown();
        }
        Verb::Prioritize => {
            let job = Job {
                conn: Arc::clone(conn),
                request,
                enqueued: Instant::now(),
            };
            if let Err(job) = shared.queue.push(job) {
                shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                prio_obs::counter("serve.request.overloaded").inc();
                job.conn.send_line(&overloaded_response(&job.request.id));
            }
        }
    }
}

/// The result of reading one length-limited line.
enum Line {
    /// A complete line (without the newline).
    Text(String),
    /// The line exceeded the limit; the remainder was discarded.
    TooLong,
    /// End of stream.
    Eof,
}

/// Reads one `\n`-terminated line of at most `limit` bytes. An oversized
/// line is consumed to its newline *without buffering it* — the daemon's
/// memory use stays bounded no matter what a client sends — and reported
/// as [`Line::TooLong`]. A final unterminated fragment (a mid-request
/// disconnect) is returned as a normal line so it still gets a response
/// attempt.
fn read_line_limited(reader: &mut impl BufRead, limit: usize) -> std::io::Result<Line> {
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(match (discarding, line.is_empty()) {
                (true, _) => Line::TooLong,
                (false, true) => Line::Eof,
                (false, false) => Line::Text(String::from_utf8_lossy(&line).into_owned()),
            });
        }
        let (chunk, terminated) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i, true),
            None => (buf.len(), false),
        };
        if !discarding {
            if line.len() + chunk > limit {
                discarding = true;
                line.clear();
            } else {
                line.extend_from_slice(&buf[..chunk]);
            }
        }
        reader.consume(chunk + usize::from(terminated));
        if terminated {
            return Ok(if discarding {
                Line::TooLong
            } else {
                Line::Text(String::from_utf8_lossy(&line).into_owned())
            });
        }
    }
}

/// The connection reader loop, shared by TCP and stream serving.
fn read_loop(shared: &Arc<Shared>, conn: &Arc<Conn>, reader: &mut impl BufRead) {
    let mut first_version: Option<u64> = None;
    loop {
        if shared.shutting_down() {
            return;
        }
        match read_line_limited(reader, shared.config.max_request_bytes) {
            Ok(Line::Eof) | Err(_) => return,
            Ok(Line::TooLong) => {
                shared.counters.received.fetch_add(1, Ordering::Relaxed);
                prio_obs::counter("serve.request.received").inc();
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                prio_obs::counter("serve.request.error").inc();
                conn.send_line(&error_response(
                    None,
                    "request",
                    &format!(
                        "request: line exceeds max request bytes ({})",
                        shared.config.max_request_bytes
                    ),
                ));
            }
            Ok(Line::Text(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(shared, conn, &line, &mut first_version);
            }
        }
    }
}

fn spawn_workers(shared: &Arc<Shared>) -> Vec<std::thread::JoinHandle<()>> {
    (0..shared.config.threads.max(1))
        .map(|_| {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect()
}

/// A running TCP daemon. Dropping the handle without calling
/// [`Server::wait`] leaks the serving threads; call
/// [`Server::stop`] + [`Server::wait`] (or send a `shutdown` verb and
/// [`Server::wait`]) for a clean exit.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<Vec<std::thread::JoinHandle<()>>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Shared::new(config);
        let workers = spawn_workers(&shared);
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let streams = Arc::clone(&streams);
            std::thread::spawn(move || accept_loop(&listener, &shared, &streams))
        };
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers,
            streams,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A statistics snapshot (what the `stats` verb reports).
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Triggers a graceful shutdown, as if a `shutdown` verb arrived.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until a shutdown is requested (verb or [`Server::stop`]),
    /// then runs the drain protocol to completion and returns the final
    /// statistics. See the module docs for the teardown order.
    pub fn wait(mut self) -> ServeStats {
        {
            let (lock, cvar) = &self.shared.shutdown_signal;
            let mut done = lock.lock().unwrap();
            while !*done {
                done = cvar.wait(done).unwrap();
            }
        }
        // 1–2. The accept loop observed the flag and exits; shut down
        // every connection's read half so readers see EOF.
        let readers = self
            .accept_thread
            .take()
            .expect("wait runs once")
            .join()
            .expect("accept thread never panics");
        for stream in self.streams.lock().unwrap().iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // 3. No readers ⇒ no more pushes.
        for reader in readers {
            let _ = reader.join();
        }
        // 4–5. Close, drain, join; then the write halves drop.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.streams.lock().unwrap().clear();
        self.shared.stats()
    }
}

/// Accepts connections until shutdown; returns the reader join handles.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    streams: &Arc<Mutex<Vec<TcpStream>>>,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut readers = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                prio_obs::counter("serve.conn.accepted").inc();
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                streams.lock().unwrap().push(write_half);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let conn = Conn::new(Box::new(write_half));
                let shared = Arc::clone(shared);
                readers.push(std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    read_loop(&shared, &conn, &mut reader);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    readers
}

/// Serves a single connection over an arbitrary reader/writer pair —
/// the stdin/stdout mode of the CLI (`prio serve --stdio`) and the
/// in-process harness used by the test suites. Returns the final
/// statistics once the input ends (EOF or `shutdown` verb) and the queue
/// has drained.
pub fn serve_streams(
    reader: impl Read,
    writer: Box<dyn Write + Send>,
    config: ServeConfig,
) -> ServeStats {
    let shared = Shared::new(config);
    let workers = spawn_workers(&shared);
    let conn = Conn::new(writer);
    let mut reader = BufReader::new(reader);
    read_loop(&shared, &conn, &mut reader);
    // Reading is done (the only producer), so close-and-drain is safe:
    // every accepted request still gets its response written.
    shared.queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    shared.stats()
}

/// [`serve_streams`] over this process's stdin/stdout.
pub fn serve_stdio(config: ServeConfig) -> ServeStats {
    serve_streams(std::io::stdin().lock(), Box::new(std::io::stdout()), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A writer handing its bytes back through a shared buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn serve_text(input: &str, config: ServeConfig) -> (Vec<String>, ServeStats) {
        let buf = SharedBuf::default();
        let stats = serve_streams(Cursor::new(input.to_owned()), Box::new(buf.clone()), config);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        (text.lines().map(str::to_owned).collect(), stats)
    }

    fn get<'v>(v: &'v prio_obs::json::JsonValue, k: &str) -> Option<&'v str> {
        v.get(k).and_then(prio_obs::json::JsonValue::as_str)
    }

    #[test]
    fn serves_a_prioritize_request_over_streams() {
        let line = crate::protocol::encode_request("r1", "a\tb\n", Some("edges"), None);
        let (lines, stats) = serve_text(&format!("{line}\n"), ServeConfig::default());
        assert_eq!(lines.len(), 1);
        let v = prio_obs::json::parse(&lines[0]).unwrap();
        assert_eq!(get(&v, "id"), Some("r1"));
        assert_eq!(get(&v, "status"), Some("ok"));
        assert_eq!(get(&v, "format"), Some("edges"));
        assert!(get(&v, "output").unwrap().contains("@priority\ta\t2"));
        assert_eq!((stats.received, stats.ok, stats.errors), (1, 1, 0));
    }

    #[test]
    fn warm_cache_is_byte_identical_and_flagged() {
        let line = crate::protocol::encode_request("r", "a\tb\nb\tc\n", None, None);
        let input = format!("{line}\n{line}\n");
        let (lines, stats) = serve_text(&input, ServeConfig::default());
        assert_eq!(lines.len(), 2);
        let a = prio_obs::json::parse(&lines[0]).unwrap();
        let b = prio_obs::json::parse(&lines[1]).unwrap();
        assert_eq!(get(&a, "output"), get(&b, "output"));
        let cached: Vec<bool> = [&a, &b]
            .iter()
            .map(|v| {
                v.get("cached")
                    .and_then(prio_obs::json::JsonValue::as_bool)
                    .unwrap()
            })
            .collect();
        assert_eq!(cached.iter().filter(|&&c| c).count(), 1, "{cached:?}");
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn control_verbs_answer_inline() {
        let input = [
            crate::protocol::encode_control("p1", "ping"),
            crate::protocol::encode_control("s1", "stats"),
            crate::protocol::encode_control("q1", "shutdown"),
        ]
        .join("\n");
        let (lines, stats) = serve_text(&(input + "\n"), ServeConfig::default());
        assert_eq!(lines.len(), 3);
        assert_eq!(stats.received, 3);
        let stats_line = prio_obs::json::parse(&lines[1]).unwrap();
        assert_eq!(
            stats_line
                .get("received")
                .and_then(prio_obs::json::JsonValue::as_u64),
            Some(2)
        );
        let bye = prio_obs::json::parse(&lines[2]).unwrap();
        assert_eq!(
            bye.get("shutdown")
                .and_then(prio_obs::json::JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn shutdown_verb_stops_reading_further_requests() {
        let input = [
            crate::protocol::encode_control("q1", "shutdown"),
            crate::protocol::encode_request("r2", "a\tb\n", Some("edges"), None),
        ]
        .join("\n");
        let (lines, stats) = serve_text(&(input + "\n"), ServeConfig::default());
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert_eq!(stats.received, 1);
    }

    #[test]
    fn errors_are_structured_and_do_not_stop_serving() {
        let input = [
            "this is not json".to_owned(),
            crate::protocol::encode_request("bad", "JOB broken", Some("dagman"), None),
            crate::protocol::encode_request("good", "a\tb\n", Some("edges"), None),
        ]
        .join("\n");
        let (lines, stats) = serve_text(&(input + "\n"), ServeConfig::default());
        assert_eq!(lines.len(), 3);
        assert_eq!((stats.ok, stats.errors), (1, 2));
        let by_id = |id: &str| {
            lines
                .iter()
                .map(|l| prio_obs::json::parse(l).unwrap())
                .find(|v| get(v, "id") == Some(id))
                .unwrap()
        };
        assert_eq!(get(&by_id("bad"), "status"), Some("error"));
        assert_eq!(get(&by_id("bad"), "stage"), Some("parse"));
        assert_eq!(get(&by_id("good"), "status"), Some("ok"));
    }

    #[test]
    fn oversized_lines_are_rejected_without_buffering() {
        let big = crate::protocol::encode_request("big", &"a\tb\n".repeat(4000), None, None);
        let small = crate::protocol::encode_request("ok", "a\tb\n", Some("edges"), None);
        let config = ServeConfig {
            max_request_bytes: 1024,
            ..ServeConfig::default()
        };
        let (lines, stats) = serve_text(&format!("{big}\n{small}\n"), config);
        assert_eq!(lines.len(), 2);
        let first = prio_obs::json::parse(&lines[0]).unwrap();
        assert_eq!(get(&first, "status"), Some("error"));
        assert!(get(&first, "error").unwrap().contains("max request bytes"));
        let second = prio_obs::json::parse(&lines[1]).unwrap();
        assert_eq!(get(&second, "status"), Some("ok"));
        assert_eq!((stats.ok, stats.errors), (1, 1));
    }

    #[test]
    fn tcp_round_trip_and_graceful_shutdown() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let write = |line: &str| {
            let mut s = &stream;
            s.write_all(line.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
        };
        write(&crate::protocol::encode_request(
            "r1",
            "a\tb\n",
            Some("edges"),
            Some("json"),
        ));
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = prio_obs::json::parse(&line).unwrap();
        assert_eq!(get(&v, "status"), Some("ok"));
        assert_eq!(get(&v, "format"), Some("json"));
        write(&crate::protocol::encode_control("q", "shutdown"));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"shutdown\":true"), "{line}");
        let stats = server.wait();
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.received, 2);
    }
}
