//! The bounded request queue between connection readers and the worker
//! pool.
//!
//! Storage is the lock-free Vyukov ring ([`prio_obs::ring::Ring`], MPMC),
//! so the hot push/pop path is a couple of atomics. What the ring does
//! not provide — and what a daemon needs — is *waiting*: workers must
//! park when the queue is empty and wake when work arrives or the queue
//! closes. A `Mutex<bool>`+`Condvar` pair layers that on without
//! touching the fast path:
//!
//! * [`RequestQueue::push`] stores into the ring first, then takes the
//!   (uncontended) mutex briefly before `notify_one`. Taking the lock —
//!   even though no state is written under it — closes the lost-wakeup
//!   window: a worker that checked the ring empty cannot have parked yet
//!   if the pusher holds the lock, and cannot miss the notify if it has.
//! * A full ring is the caller's signal to **shed**: `push` returns the
//!   rejected item and bumps `serve.queue.shed`; nothing ever blocks on
//!   the way in.
//! * [`RequestQueue::close`] flips the closed flag and wakes everyone;
//!   [`RequestQueue::pop_wait`] keeps draining until the queue is both
//!   closed **and** empty, so a graceful shutdown never drops accepted
//!   work.

use prio_obs::ring::Ring;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A closable bounded MPMC queue that sheds on overflow and parks
/// consumers on empty.
pub struct RequestQueue<T> {
    ring: Ring<T>,
    closed: Mutex<bool>,
    wake: Condvar,
}

impl<T> RequestQueue<T> {
    /// A queue holding at least `capacity` items (the ring rounds up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> RequestQueue<T> {
        RequestQueue {
            ring: Ring::with_capacity(capacity),
            closed: Mutex::new(false),
            wake: Condvar::new(),
        }
    }

    /// The actual (rounded) capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Enqueues `item`, waking one parked worker. On a full ring the item
    /// comes straight back (`Err`) and `serve.queue.shed` is bumped — the
    /// caller turns that into an `overloaded` response. Pushing to a
    /// closed queue is also a shed: accept stopped, drain is in progress.
    pub fn push(&self, item: T) -> Result<(), T> {
        {
            let closed = self.closed.lock().unwrap();
            if *closed {
                prio_obs::counter("serve.queue.shed").inc();
                return Err(item);
            }
            // Still holding the lock: a concurrent close() cannot complete
            // until the store below is visible to draining workers.
            match self.ring.push(item) {
                Ok(()) => {}
                Err(item) => {
                    prio_obs::counter("serve.queue.shed").inc();
                    return Err(item);
                }
            }
        }
        self.wake.notify_one();
        Ok(())
    }

    /// Pops an item, parking until one arrives. Returns `None` only once
    /// the queue is closed *and* drained.
    pub fn pop_wait(&self) -> Option<T> {
        loop {
            if let Some(item) = self.ring.pop() {
                return Some(item);
            }
            let mut closed = self.closed.lock().unwrap();
            // Re-check under the lock: a push that happened between our
            // failed pop and acquiring the lock has already stored its
            // item (stores happen under this same lock), so we see it.
            if let Some(item) = self.ring.pop() {
                return Some(item);
            }
            if *closed {
                return None;
            }
            // Timed wait as a belt-and-braces backstop; correctness does
            // not depend on it (pushes hold the lock before notifying).
            let (guard, _) = self
                .wake
                .wait_timeout(closed, Duration::from_millis(50))
                .unwrap();
            closed = guard;
            drop(closed);
        }
    }

    /// Non-blocking pop (used by drain loops and tests).
    pub fn try_pop(&self) -> Option<T> {
        self.ring.pop()
    }

    /// Closes the queue: future pushes shed, and parked workers wake to
    /// drain the remainder and exit.
    pub fn close(&self) {
        let mut closed = self.closed.lock().unwrap();
        *closed = true;
        drop(closed);
        self.wake.notify_all();
    }

    /// Whether [`close`](RequestQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        *self.closed.lock().unwrap()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_and_shed() {
        let q: RequestQueue<u32> = RequestQueue::with_capacity(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop_wait(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q: RequestQueue<u32> = RequestQueue::with_capacity(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(3), Err(3), "push after close must shed");
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn parked_consumer_wakes_on_push_and_close() {
        let q: Arc<RequestQueue<u32>> = Arc::new(RequestQueue::with_capacity(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop_wait() {
                    got.push(item);
                }
                got
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        q.push(8).unwrap();
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![7, 8]);
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let q: Arc<RequestQueue<u64>> = Arc::new(RequestQueue::with_capacity(1024));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        while q.push(p * 1000 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop_wait() {
                    got.push(item);
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
