//! The `prio serve` wire protocol: line-delimited JSON over a byte
//! stream (TCP or stdin/stdout).
//!
//! One request per line, one response line per request. Requests are
//! JSON objects; the only required field is `id` (an arbitrary string
//! the response echoes back, so clients can pipeline requests and match
//! responses out of order):
//!
//! ```text
//! {"type":"request","id":"r1","verb":"prioritize","format":"auto",
//!  "output":"edges","workflow":"JOB a a.sub\n..."}
//! {"type":"request","id":"s1","verb":"stats"}
//! {"type":"request","id":"p1","verb":"ping"}
//! {"type":"request","id":"q1","verb":"shutdown"}
//! ```
//!
//! * `verb` defaults to `prioritize`. `stats`, `ping` and `shutdown` are
//!   control verbs handled inline by the connection (never queued), so
//!   they respond even when the worker queue is saturated.
//! * `format` names the input frontend (`auto`, the default, detects by
//!   content sniff via the [`prio_ir::FormatRegistry`]).
//! * `output` names the response's export format; it defaults to the
//!   resolved input format, which makes a served response byte-identical
//!   to the one-shot `prioritize_workflow_text` facade.
//! * `v` optionally tags the record with the JSONL schema version
//!   ([`prio_obs::json::SCHEMA_VERSION`]); versions newer than this
//!   build, or two different explicit versions on one connection, are
//!   structured errors (mirroring [`prio_obs::stream`]'s contract), but
//!   never kill the connection or the daemon.
//!
//! Responses are `type:"response"` objects tagged with the schema
//! version; `status` is `ok`, `error` or `overloaded`. Errors carry the
//! [`prio_ir::PrioError`] stage provenance (`stage` + rendered message),
//! so a client sees *where* its request failed exactly as a CLI user
//! would.

use prio_ir::PrioError;
use prio_obs::json::{parse, JsonObject, JsonValue, SCHEMA_VERSION};

/// A control or work verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Prioritize a workflow (the work verb; goes through the queue).
    Prioritize,
    /// Return a server statistics snapshot (inline).
    Stats,
    /// Liveness probe (inline).
    Ping,
    /// Begin a graceful shutdown: stop accepting, drain, exit (inline).
    Shutdown,
}

impl Verb {
    fn from_name(name: &str) -> Option<Verb> {
        match name {
            "prioritize" => Some(Verb::Prioritize),
            "stats" => Some(Verb::Stats),
            "ping" => Some(Verb::Ping),
            "shutdown" => Some(Verb::Shutdown),
            _ => None,
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed on the response.
    pub id: String,
    /// The verb (default `prioritize`).
    pub verb: Verb,
    /// Workflow text (required for `prioritize`).
    pub workflow: String,
    /// Input format name (`auto`/absent = content detection).
    pub format: Option<String>,
    /// Output format name (absent = same as resolved input format).
    pub output: Option<String>,
    /// Explicit schema version tag, if the record carried one.
    pub version: Option<u64>,
}

/// A request that could not be accepted, with enough structure to build
/// an error response: the id when one was recoverable, and a message.
#[derive(Debug, Clone)]
pub struct RequestError {
    /// The request id, when the line parsed far enough to recover one.
    pub id: Option<String>,
    /// What was wrong with the request.
    pub message: String,
}

impl RequestError {
    fn new(id: Option<String>, message: impl Into<String>) -> RequestError {
        RequestError {
            id,
            message: message.into(),
        }
    }
}

/// Parses one request line. `first_version` is the connection's sticky
/// first explicit version tag (updated on first sight), enforcing the
/// same mixed-version rejection as the JSONL stream reader — per record,
/// so one bad line costs one error response, not the connection.
pub fn parse_request(line: &str, first_version: &mut Option<u64>) -> Result<Request, RequestError> {
    let value = parse(line).map_err(|e| RequestError::new(None, format!("request: {e}")))?;
    if !value.is_object() {
        return Err(RequestError::new(None, "request: not a JSON object"));
    }
    let id = value
        .get("id")
        .and_then(JsonValue::as_str)
        .map(str::to_owned);
    let version = value.get("v").and_then(JsonValue::as_u64);
    if let Some(v) = version {
        if v > SCHEMA_VERSION {
            return Err(RequestError::new(
                id,
                format!("request: schema v{v} is newer than supported v{SCHEMA_VERSION}"),
            ));
        }
        match *first_version {
            None => *first_version = Some(v),
            Some(first) if first != v => {
                return Err(RequestError::new(
                    id,
                    format!(
                        "request: mixed schema versions on one connection \
                         (v{v} after v{first})"
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    let Some(id) = id else {
        return Err(RequestError::new(
            None,
            "request: missing string field \"id\"",
        ));
    };
    let verb = match value.get("verb") {
        None => Verb::Prioritize,
        Some(v) => {
            let name = v.as_str().unwrap_or("");
            Verb::from_name(name).ok_or_else(|| {
                RequestError::new(
                    Some(id.clone()),
                    format!(
                        "request: unknown verb {name:?} \
                         (prioritize|stats|ping|shutdown)"
                    ),
                )
            })?
        }
    };
    let workflow = value
        .get("workflow")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_owned();
    if verb == Verb::Prioritize && workflow.is_empty() {
        return Err(RequestError::new(
            Some(id),
            "request: prioritize requires a non-empty \"workflow\" field",
        ));
    }
    let field = |k: &str| value.get(k).and_then(JsonValue::as_str).map(str::to_owned);
    Ok(Request {
        id,
        verb,
        workflow,
        format: field("format"),
        output: field("output"),
        version,
    })
}

/// Builds one request line (without the trailing newline) — the client
/// half of the protocol, used by `bench_serve` and the test suites.
pub fn encode_request(
    id: &str,
    workflow: &str,
    format: Option<&str>,
    output: Option<&str>,
) -> String {
    let mut o = JsonObject::typed("request")
        .str("id", id)
        .str("verb", "prioritize");
    if let Some(f) = format {
        o = o.str("format", f);
    }
    if let Some(f) = output {
        o = o.str("output", f);
    }
    o.str("workflow", workflow).finish()
}

/// Builds a control-verb request line (`stats`, `ping`, `shutdown`).
pub fn encode_control(id: &str, verb: &str) -> String {
    JsonObject::typed("request")
        .str("id", id)
        .str("verb", verb)
        .finish()
}

/// An `ok` response carrying the prioritized export.
pub fn ok_response(id: &str, format: &str, cached: bool, output: &str) -> String {
    JsonObject::typed("response")
        .str("id", id)
        .str("status", "ok")
        .str("format", format)
        .bool("cached", cached)
        .str("output", output)
        .finish()
}

/// A `pong` response to the `ping` verb.
pub fn ping_response(id: &str) -> String {
    JsonObject::typed("response")
        .str("id", id)
        .str("status", "ok")
        .bool("pong", true)
        .finish()
}

/// A structured error response. `stage` carries the pipeline provenance
/// (`parse`, `reduce`, …) or `"request"` for protocol-level rejections
/// that never reached the pipeline.
pub fn error_response(id: Option<&str>, stage: &str, message: &str) -> String {
    let mut o = JsonObject::typed("response");
    if let Some(id) = id {
        o = o.str("id", id);
    }
    o.str("status", "error")
        .str("stage", stage)
        .str("error", message)
        .finish()
}

/// The error response for a [`PrioError`], with stage provenance.
pub fn prio_error_response(id: &str, error: &PrioError) -> String {
    error_response(Some(id), error.stage().name(), &error.to_string())
}

/// The load-shedding response: the queue was full, the request was *not*
/// processed, and the client may retry.
pub fn overloaded_response(id: &str) -> String {
    JsonObject::typed("response")
        .str("id", id)
        .str("status", "overloaded")
        .str("error", "request queue is full, retry later")
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(line: &str) -> Result<Request, RequestError> {
        parse_request(line, &mut None)
    }

    #[test]
    fn round_trips_a_prioritize_request() {
        let line = encode_request("r1", "JOB a a.sub\n", Some("dagman"), Some("edges"));
        let req = parse_one(&line).unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.verb, Verb::Prioritize);
        assert_eq!(req.workflow, "JOB a a.sub\n");
        assert_eq!(req.format.as_deref(), Some("dagman"));
        assert_eq!(req.output.as_deref(), Some("edges"));
        assert_eq!(req.version, Some(SCHEMA_VERSION));
    }

    #[test]
    fn verb_defaults_to_prioritize_and_controls_parse() {
        let req = parse_one(r#"{"id":"s","verb":"stats"}"#).unwrap();
        assert_eq!(req.verb, Verb::Stats);
        assert_eq!(req.version, None);
        for (verb, expect) in [
            ("ping", Verb::Ping),
            ("shutdown", Verb::Shutdown),
            ("prioritize", Verb::Prioritize),
        ] {
            let line = if expect == Verb::Prioritize {
                format!(r#"{{"id":"x","verb":{:?},"workflow":"a\tb\n"}}"#, verb)
            } else {
                format!(r#"{{"id":"x","verb":{verb:?}}}"#)
            };
            assert_eq!(parse_one(&line).unwrap().verb, expect, "{verb}");
        }
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        for (line, id) in [
            ("not json", None),
            ("[1,2]", None),
            (r#"{"verb":"stats"}"#, None),
            (r#"{"id":"k","verb":"explode"}"#, Some("k")),
            (r#"{"id":"k","verb":"prioritize"}"#, Some("k")),
            (r#"{"id":"k","workflow":""}"#, Some("k")),
        ] {
            let err = parse_one(line).unwrap_err();
            assert_eq!(err.id.as_deref(), id, "{line}");
            assert!(err.message.starts_with("request:"), "{}", err.message);
        }
    }

    #[test]
    fn future_and_mixed_versions_are_rejected_per_record() {
        let future = format!(r#"{{"id":"f","verb":"ping","v":{}}}"#, SCHEMA_VERSION + 1);
        let err = parse_one(&future).unwrap_err();
        assert!(err.message.contains("newer"), "{}", err.message);

        let mut first = None;
        parse_request(r#"{"id":"a","verb":"ping","v":2}"#, &mut first).unwrap();
        assert_eq!(first, Some(2));
        let err = parse_request(r#"{"id":"b","verb":"ping","v":3}"#, &mut first).unwrap_err();
        assert!(err.message.contains("mixed"), "{}", err.message);
        assert_eq!(err.id.as_deref(), Some("b"));
        // The sticky version survives; matching records still parse.
        parse_request(r#"{"id":"c","verb":"ping","v":2}"#, &mut first).unwrap();
    }

    #[test]
    fn responses_parse_back_as_typed_objects() {
        for line in [
            ok_response("r1", "edges", true, "a\tb\n"),
            ping_response("p"),
            error_response(Some("e"), "parse", "parse: edges: line 1: nope"),
            error_response(None, "request", "request: not a JSON object"),
            overloaded_response("o"),
        ] {
            let v = parse(&line).unwrap();
            assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("response"));
            assert_eq!(v.get("v").and_then(JsonValue::as_u64), Some(SCHEMA_VERSION));
            assert!(v.get("status").and_then(JsonValue::as_str).is_some());
        }
        let v = parse(&prio_error_response(
            "x",
            &prio_ir::ImportError::at(prio_ir::FormatId::Json, 3, "boom").into(),
        ))
        .unwrap();
        assert_eq!(v.get("stage").and_then(JsonValue::as_str), Some("parse"));
        assert!(v
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("line 3"));
    }
}
