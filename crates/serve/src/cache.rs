//! The sharded content-hash cache of prioritized results.
//!
//! The cache is keyed by exactly the inputs the PRIO pipeline reads: the
//! post-intern CSR — job labels in index order plus the child adjacency
//! structure ([`workflow_key`]). Everything else a request may carry
//! (per-job metadata, carried priorities, statement order that does not
//! change node numbering, the source format) does not influence the
//! computed schedule, so two requests that induce the same CSR share one
//! entry — and since the cached value is the *schedule order* (node
//! indices), not rendered text, a cache hit is re-exported against the
//! request's own workflow: metadata and format still land in the
//! response, byte-identical to a cold-path run.
//!
//! Sharding: the key's low bits pick one of [`SHARDS`] independently
//! locked shards, so concurrent workers rarely contend. Each shard is an
//! LRU over a byte budget (`budget / SHARDS` per shard): inserts evict
//! least-recently-used entries until the shard fits. The LRU index is a
//! `BTreeMap<tick, key>` over a monotone global tick, so evicting the
//! oldest entry is `O(log n)` rather than a scan.
//!
//! Two memo layers ride on top of the canonical order cache, both pure
//! accelerations (every lookup that misses them falls back to the full
//! import/export path with identical output):
//!
//! * each entry lazily accumulates its **rendered exports**, keyed by
//!   output format *and* a [`render_key`] over everything an exporter
//!   reads besides the schedule — source format and per-job metadata
//!   ([`ResultCache::note_rendered`]), charged against the same byte
//!   budget. A warm hit replays the cold request's exact bytes instead
//!   of re-exporting, but only for a workflow whose export is provably
//!   byte-identical: two same-CSR workflows with different submit files
//!   share the schedule, never each other's rendered text;
//! * a count-capped **text memo** ([`ResultCache::memo_insert`]) maps the
//!   exact request text (plus the effective format name) to the CSR key
//!   (and render key) it produced, so a repeated request skips the
//!   import entirely.

use prio_graph::{Dag, NodeId};
use prio_ir::{FormatId, Workflow};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards (a power of two; the key's low
/// bits select one).
pub const SHARDS: usize = 16;

/// Fixed per-entry overhead charged against the byte budget, over the
/// schedule order itself: the key, the tick, the two map entries.
const ENTRY_OVERHEAD_BYTES: usize = 96;

/// A 128-bit content hash of a workflow's CSR (labels + arcs): two
/// independent 64-bit [`prio_graph::labelhash::NameHasher`] streams with
/// distinct domain-separation prefixes. At 2^64 the single-stream
/// birthday bound would start to matter for a long-lived daemon; at
/// 2^128 collisions are out of the picture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u64, pub u64);

fn hash_dag(dag: &Dag, domain: u64) -> u64 {
    let mut h = prio_graph::labelhash::NameHashBuild.build_hasher();
    h.write(&domain.to_le_bytes());
    h.write(&(dag.num_nodes() as u64).to_le_bytes());
    h.write(&(dag.num_arcs() as u64).to_le_bytes());
    for u in dag.node_ids() {
        // One write per label: the hasher folds each write's own chunk
        // boundaries and running length, so label concatenations cannot
        // alias ("ab","c" hashes differently from "a","bc").
        h.write(dag.label(u).as_bytes());
    }
    for u in dag.node_ids() {
        for &v in dag.children(u) {
            h.write(&v.0.to_le_bytes());
        }
        // Terminate each adjacency list so row boundaries cannot alias
        // (children [1][2] vs [1,2][] differ even at equal arc counts).
        h.write(&u32::MAX.to_le_bytes());
    }
    h.finish()
}

/// The content-hash key for `dag`: covers the labels (in index order) and
/// the CSR child structure — exactly what [`prio_core::prioritize`]
/// reads — and nothing else.
pub fn workflow_key(dag: &Dag) -> CacheKey {
    CacheKey(hash_dag(dag, 0x5052494f_u64), hash_dag(dag, 0x53455256_u64))
}

/// A 128-bit hash of a request's *raw text* plus its effective format
/// name — the text-memo key. Domain-separated from [`CacheKey`]'s
/// streams so the two key spaces cannot collide by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TextKey(pub u64, pub u64);

fn hash_text(format: &str, text: &str, domain: u64) -> u64 {
    let mut h = prio_graph::labelhash::NameHashBuild.build_hasher();
    h.write(&domain.to_le_bytes());
    // Separate writes: the hasher folds per-write lengths, so a format
    // name cannot alias into the text.
    h.write(format.as_bytes());
    h.write(text.as_bytes());
    h.finish()
}

/// The text-memo key for a request: the effective input format name
/// (`"auto"` when detection applies) and the exact workflow text.
pub fn text_key(format: &str, text: &str) -> TextKey {
    TextKey(
        hash_text(format, text, 0x54455854_u64),
        hash_text(format, text, 0x4d454d4f_u64),
    )
}

/// A 64-bit hash of everything an exporter reads *besides* the CSR and
/// the computed priorities: the source format and every job's metadata
/// (submit files, carried attributes), in the deterministic node/key
/// order [`Workflow::meta_of`] yields. Rendered exports are memoized
/// under this in addition to the output format — the [`CacheKey`] alone
/// only proves the *schedule* is shared, not the rendered bytes.
pub fn render_key(workflow: &Workflow) -> u64 {
    let mut h = prio_graph::labelhash::NameHashBuild.build_hasher();
    h.write(&0x4d455441_u64.to_le_bytes());
    h.write(workflow.source().name().as_bytes());
    for u in workflow.dag().node_ids() {
        for (k, v) in workflow.meta_of(u) {
            // Separate writes per field: the hasher folds per-write
            // lengths, so (node, key, value) boundaries cannot alias.
            h.write(&u.0.to_le_bytes());
            h.write(k.as_bytes());
            h.write(v.as_bytes());
        }
    }
    h.finish()
}

/// One cached schedule: the PRIO order over the workflow's node indices.
pub type CachedOrder = Arc<[NodeId]>;

struct Entry {
    order: CachedOrder,
    /// Rendered canonical exports, one per ([`render_key`], output
    /// format) pair served so far (filled lazily by
    /// [`ResultCache::note_rendered`]).
    rendered: Vec<((u64, FormatId), Arc<str>)>,
    tick: u64,
    bytes: usize,
}

/// What the text memo resolves a repeated request to.
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    key: CacheKey,
    format: FormatId,
    jobs: usize,
    render: u64,
    tick: u64,
}

/// Per-shard cap on text-memo entries. They are small and fixed-size
/// (two hashes to a key plus a format and a count), so the memo is
/// bounded by count, not bytes: 16 shards × 4096 ≈ 64k remembered
/// request texts.
const TEXT_MEMO_PER_SHARD: usize = 4096;

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    /// tick -> key, the LRU index (ticks are globally unique).
    lru: BTreeMap<u64, CacheKey>,
    bytes: usize,
    memo: HashMap<TextKey, MemoEntry>,
    memo_lru: BTreeMap<u64, TextKey>,
}

/// A point-in-time view of the cache counters, for the `stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Bytes charged across all shards.
    pub bytes: u64,
}

/// The sharded LRU result cache.
pub struct ResultCache {
    shards: Box<[Mutex<Shard>]>,
    shard_budget: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ResultCache")
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl ResultCache {
    /// A cache bounded to roughly `byte_budget` bytes across all shards
    /// (each shard holds at least one entry, so a single oversized entry
    /// is admitted rather than thrashing).
    pub fn new(byte_budget: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: byte_budget / SHARDS,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    fn memo_shard(&self, key: TextKey) -> &Mutex<Shard> {
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks `key` up, refreshing its LRU position on a hit. `n` is the
    /// workflow's node count; an entry whose order length disagrees (a
    /// 128-bit collision, astronomically unlikely) is treated as a miss
    /// rather than served wrong.
    pub fn get(&self, key: CacheKey, n: usize) -> Option<CachedOrder> {
        let mut shard = self.shard(key).lock().unwrap();
        let tick = self.next_tick();
        if let Some(entry) = shard.map.get_mut(&key) {
            if entry.order.len() == n {
                let old = std::mem::replace(&mut entry.tick, tick);
                let order = entry.order.clone();
                shard.lru.remove(&old);
                shard.lru.insert(tick, key);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                prio_obs::counter("serve.cache.hits").inc();
                return Some(order);
            }
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        prio_obs::counter("serve.cache.misses").inc();
        None
    }

    /// Inserts (or replaces) the schedule for `key`, evicting
    /// least-recently-used entries until the shard is back within its
    /// byte budget.
    pub fn insert(&self, key: CacheKey, order: CachedOrder) {
        let bytes = order.len() * std::mem::size_of::<NodeId>() + ENTRY_OVERHEAD_BYTES;
        let tick = self.next_tick();
        let mut shard = self.shard(key).lock().unwrap();
        if let Some(old) = shard.map.remove(&key) {
            shard.lru.remove(&old.tick);
            shard.bytes -= old.bytes;
        }
        shard.map.insert(
            key,
            Entry {
                order,
                rendered: Vec::new(),
                tick,
                bytes,
            },
        );
        shard.lru.insert(tick, key);
        shard.bytes += bytes;
        self.evict_over_budget(&mut shard, key);
    }

    /// Evicts LRU entries until the shard fits its budget again, always
    /// keeping the most recent entry (`keep`) so one oversized result is
    /// admitted rather than thrashed.
    fn evict_over_budget(&self, shard: &mut Shard, keep: CacheKey) {
        let mut evicted = 0u64;
        while shard.bytes > self.shard_budget && shard.map.len() > 1 {
            let (&oldest, &victim) = shard.lru.iter().next().expect("lru tracks map");
            if victim == keep && shard.map.len() == 1 {
                break;
            }
            shard.lru.remove(&oldest);
            let gone = shard.map.remove(&victim).expect("map tracks lru");
            shard.bytes -= gone.bytes;
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            prio_obs::counter("serve.cache.evictions").add(evicted);
        }
    }

    /// Like [`ResultCache::get`], but also returns the memoized rendered
    /// export for (`render`, `format`) when one exists. Counts one hit
    /// or miss, exactly like `get`.
    pub fn get_with_rendered(
        &self,
        key: CacheKey,
        n: usize,
        render: u64,
        format: FormatId,
    ) -> Option<(CachedOrder, Option<Arc<str>>)> {
        let mut shard = self.shard(key).lock().unwrap();
        let tick = self.next_tick();
        if let Some(entry) = shard.map.get_mut(&key) {
            if entry.order.len() == n {
                let old = std::mem::replace(&mut entry.tick, tick);
                let order = entry.order.clone();
                let rendered = entry
                    .rendered
                    .iter()
                    .find(|(rf, _)| *rf == (render, format))
                    .map(|(_, text)| Arc::clone(text));
                shard.lru.remove(&old);
                shard.lru.insert(tick, key);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                prio_obs::counter("serve.cache.hits").inc();
                return Some((order, rendered));
            }
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        prio_obs::counter("serve.cache.misses").inc();
        None
    }

    /// The warm fast-path probe: returns the rendered export for
    /// (`key`, `render`, `format`) if — and only if — the entry is live
    /// with a matching order length *and* that exact rendering exists,
    /// counting a hit and refreshing the LRU. Anything less returns
    /// `None` **without counting a miss**: the caller falls back to the
    /// full path, whose own lookup does the counting — one hit or miss
    /// per request either way.
    pub fn rendered_hit(
        &self,
        key: CacheKey,
        n: usize,
        render: u64,
        format: FormatId,
    ) -> Option<Arc<str>> {
        let mut shard = self.shard(key).lock().unwrap();
        let entry = shard.map.get(&key)?;
        if entry.order.len() != n {
            return None;
        }
        let text = entry
            .rendered
            .iter()
            .find(|(rf, _)| *rf == (render, format))
            .map(|(_, text)| Arc::clone(text))?;
        let tick = self.next_tick();
        let entry = shard.map.get_mut(&key).expect("checked above");
        let old = std::mem::replace(&mut entry.tick, tick);
        shard.lru.remove(&old);
        shard.lru.insert(tick, key);
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        prio_obs::counter("serve.cache.hits").inc();
        Some(text)
    }

    /// Memoizes the rendered export of `key`'s result for (`render`,
    /// `format`), charging its bytes to the shard budget. A no-op if the
    /// entry is gone (evicted between the caller's lookup and now) or
    /// that rendering already exists (a racing worker got there first —
    /// both renders are byte-identical, so either copy serves).
    pub fn note_rendered(&self, key: CacheKey, render: u64, format: FormatId, text: Arc<str>) {
        let mut shard = self.shard(key).lock().unwrap();
        let Some(entry) = shard.map.get_mut(&key) else {
            return;
        };
        if entry.rendered.iter().any(|(rf, _)| *rf == (render, format)) {
            return;
        }
        let added = text.len() + std::mem::size_of::<((u64, FormatId), Arc<str>)>();
        entry.rendered.push(((render, format), text));
        entry.bytes += added;
        shard.bytes += added;
        self.evict_over_budget(&mut shard, key);
    }

    /// Looks up the text memo: the `(CacheKey, input format, job count,
    /// render key)` a previous request with this exact text resolved to.
    /// Purely an acceleration — a `None` (or a memo pointing at an
    /// evicted entry) just means the full import path runs again.
    pub fn memo_get(&self, key: TextKey) -> Option<(CacheKey, FormatId, usize, u64)> {
        let mut shard = self.memo_shard(key).lock().unwrap();
        let tick = self.next_tick();
        let entry = shard.memo.get_mut(&key)?;
        let old = std::mem::replace(&mut entry.tick, tick);
        let found = (entry.key, entry.format, entry.jobs, entry.render);
        shard.memo_lru.remove(&old);
        shard.memo_lru.insert(tick, key);
        Some(found)
    }

    /// Records what a request text resolved to, evicting the
    /// least-recently-used memo entry past [`TEXT_MEMO_PER_SHARD`].
    pub fn memo_insert(
        &self,
        key: TextKey,
        result: CacheKey,
        format: FormatId,
        jobs: usize,
        render: u64,
    ) {
        let tick = self.next_tick();
        let mut shard = self.memo_shard(key).lock().unwrap();
        if let Some(old) = shard.memo.insert(
            key,
            MemoEntry {
                key: result,
                format,
                jobs,
                render,
                tick,
            },
        ) {
            shard.memo_lru.remove(&old.tick);
        }
        shard.memo_lru.insert(tick, key);
        while shard.memo.len() > TEXT_MEMO_PER_SHARD {
            let (&oldest, &victim) = shard.memo_lru.iter().next().expect("lru tracks memo");
            shard.memo_lru.remove(&oldest);
            shard.memo.remove(&victim);
        }
    }

    /// Counter and occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap();
            entries += shard.map.len() as u64;
            bytes += shard.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::DagBuilder;

    fn dag(labels: &[&str], arcs: &[(u32, u32)]) -> Dag {
        let mut b = DagBuilder::new();
        for l in labels {
            b.add_node(*l);
        }
        for &(u, v) in arcs {
            b.add_arc(NodeId(u), NodeId(v)).unwrap();
        }
        b.build().unwrap()
    }

    fn order(ids: &[u32]) -> CachedOrder {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn key_covers_labels_and_arcs_only() {
        let base = dag(&["a", "b", "c"], &[(0, 1), (0, 2)]);
        assert_eq!(workflow_key(&base), workflow_key(&base.clone()));
        // A label change misses.
        let renamed = dag(&["a", "b", "z"], &[(0, 1), (0, 2)]);
        assert_ne!(workflow_key(&base), workflow_key(&renamed));
        // An arc change misses.
        let rewired = dag(&["a", "b", "c"], &[(0, 1), (1, 2)]);
        assert_ne!(workflow_key(&base), workflow_key(&rewired));
        // Node order matters (it is PRIO's tie-break input).
        let reindexed = dag(&["b", "a", "c"], &[(1, 0), (1, 2)]);
        assert_ne!(workflow_key(&base), workflow_key(&reindexed));
    }

    #[test]
    fn label_concatenation_does_not_alias() {
        let a = dag(&["ab", "c"], &[]);
        let b = dag(&["a", "bc"], &[]);
        assert_ne!(workflow_key(&a), workflow_key(&b));
    }

    #[test]
    fn adjacency_row_boundaries_do_not_alias() {
        // Same flat child sequence, different row split.
        let a = dag(&["a", "b", "c", "d"], &[(0, 2), (0, 3)]);
        let b = dag(&["a", "b", "c", "d"], &[(0, 2), (1, 3)]);
        assert_ne!(workflow_key(&a), workflow_key(&b));
    }

    #[test]
    fn get_insert_and_lru_eviction() {
        // Budget for roughly two small entries per shard.
        let cache = ResultCache::new(SHARDS * (2 * ENTRY_OVERHEAD_BYTES + 64));
        let k1 = CacheKey(0, 1);
        let k2 = CacheKey(SHARDS as u64, 2); // same shard as k1
        let k3 = CacheKey(2 * SHARDS as u64, 3); // same shard again
        assert!(cache.get(k1, 3).is_none());
        cache.insert(k1, order(&[0, 1, 2]));
        assert_eq!(cache.get(k1, 3).as_deref(), Some(&order(&[0, 1, 2])[..]));
        cache.insert(k2, order(&[2, 1, 0]));
        // Touch k1 so k2 is the LRU victim when k3 overflows the shard.
        assert!(cache.get(k1, 3).is_some());
        cache.insert(k3, order(&[0, 2, 1]));
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(cache.get(k1, 3).is_some(), "recently used entry evicted");
        assert!(cache.get(k3, 3).is_some(), "fresh entry evicted");
        assert!(cache.get(k2, 3).is_none(), "LRU entry survived");
    }

    #[test]
    fn length_mismatch_is_a_miss_not_a_wrong_answer() {
        let cache = ResultCache::new(1 << 20);
        let k = CacheKey(7, 7);
        cache.insert(k, order(&[0, 1]));
        assert!(cache.get(k, 3).is_none());
        assert_eq!(cache.get(k, 2).map(|o| o.len()), Some(2));
    }

    #[test]
    fn rendered_memo_fills_lazily_and_counts_once() {
        let cache = ResultCache::new(1 << 20);
        let k = CacheKey(3, 3);
        let rk = 7u64;
        cache.insert(k, order(&[0, 1]));
        // Probe before anything is rendered: no hit, and crucially no
        // miss counted — the full path's own lookup does the counting.
        assert!(cache.rendered_hit(k, 2, rk, FormatId::Edges).is_none());
        assert_eq!(cache.stats().misses, 0);
        let (_, rendered) = cache.get_with_rendered(k, 2, rk, FormatId::Edges).unwrap();
        assert!(rendered.is_none());
        let before = cache.stats().bytes;
        cache.note_rendered(k, rk, FormatId::Edges, "a\tb\n".into());
        assert!(cache.stats().bytes > before, "rendered bytes are charged");
        assert_eq!(
            cache.rendered_hit(k, 2, rk, FormatId::Edges).as_deref(),
            Some("a\tb\n")
        );
        // A different output format still needs its own render.
        assert!(cache.rendered_hit(k, 2, rk, FormatId::Json).is_none());
        // So does a different render key (same CSR, different metadata):
        // the schedule is shared, the rendered bytes are not.
        assert!(cache.rendered_hit(k, 2, rk + 1, FormatId::Edges).is_none());
        let (_, other) = cache
            .get_with_rendered(k, 2, rk + 1, FormatId::Edges)
            .unwrap();
        assert!(other.is_none());
        cache.note_rendered(k, rk + 1, FormatId::Edges, "a\tB\n".into());
        assert_eq!(
            cache.rendered_hit(k, 2, rk + 1, FormatId::Edges).as_deref(),
            Some("a\tB\n")
        );
        assert_eq!(
            cache.rendered_hit(k, 2, rk, FormatId::Edges).as_deref(),
            Some("a\tb\n"),
            "render keys keep their own bytes"
        );
        // A length mismatch (key collision guard) never serves rendered
        // text either.
        assert!(cache.rendered_hit(k, 5, rk, FormatId::Edges).is_none());
        // Racing duplicate render: the first copy wins, bytes stay put.
        let bytes = cache.stats().bytes;
        cache.note_rendered(k, rk, FormatId::Edges, "different\n".into());
        assert_eq!(cache.stats().bytes, bytes);
        assert_eq!(
            cache.rendered_hit(k, 2, rk, FormatId::Edges).as_deref(),
            Some("a\tb\n")
        );
    }

    #[test]
    fn text_memo_round_trips_and_is_count_capped() {
        let cache = ResultCache::new(1 << 20);
        let tk = text_key("edges", "a\tb\n");
        assert!(cache.memo_get(tk).is_none());
        cache.memo_insert(tk, CacheKey(1, 2), FormatId::Edges, 2, 9);
        assert_eq!(
            cache.memo_get(tk),
            Some((CacheKey(1, 2), FormatId::Edges, 2, 9))
        );
        // Same text under a different format flag is a different memo key.
        assert_ne!(text_key("auto", "a\tb\n"), tk);
        assert_ne!(text_key("edges", "a\tc\n"), tk);
        // Flood one shard far past the cap; the cap holds and the newest
        // entries survive.
        let mut keys = Vec::new();
        for i in 0..(TEXT_MEMO_PER_SHARD as u64 + 50) {
            // Force every key into shard 0 so the cap is exercised.
            let k = TextKey(i << 32, i);
            keys.push(k);
            cache.memo_insert(k, CacheKey(i, i), FormatId::Json, 1, 0);
        }
        assert!(cache.memo_get(*keys.last().unwrap()).is_some());
        assert!(cache.memo_get(keys[0]).is_none(), "oldest entry evicted");
    }

    #[test]
    fn render_key_tracks_source_format_and_metadata() {
        let reg = prio_dagman::registry();
        let dagman = reg.by_name("dagman").unwrap();
        let x = dagman
            .import("JOB a x.sub\nJOB b x.sub\nPARENT a CHILD b\n")
            .unwrap();
        let x2 = dagman
            .import("JOB a x.sub\nJOB b x.sub\nPARENT a CHILD b\n")
            .unwrap();
        let y = dagman
            .import("JOB a y.sub\nJOB b y.sub\nPARENT a CHILD b\n")
            .unwrap();
        let edges = reg.by_name("edges").unwrap().import("a\tb\n").unwrap();
        // All three induce the same CSR: one shared schedule entry.
        assert_eq!(workflow_key(x.dag()), workflow_key(y.dag()));
        assert_eq!(workflow_key(x.dag()), workflow_key(edges.dag()));
        // Re-importing the same text is render-equivalent...
        assert_eq!(render_key(&x), render_key(&x2));
        // ...but different metadata or a different source format is not.
        assert_ne!(render_key(&x), render_key(&y));
        assert_ne!(render_key(&x), render_key(&edges));
    }

    #[test]
    fn stats_track_hits_misses_and_occupancy() {
        let cache = ResultCache::new(1 << 20);
        let k = CacheKey(1, 1);
        assert!(cache.get(k, 1).is_none());
        cache.insert(k, order(&[0]));
        assert!(cache.get(k, 1).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }
}
