//! CLI error classification and exit codes.
//!
//! The `prio` tool distinguishes three failure classes, following the
//! sysexits convention so scripts and batch drivers can react without
//! parsing stderr:
//!
//! | class                        | exit code | examples                         |
//! |------------------------------|-----------|----------------------------------|
//! | [`CliError::Usage`]          | 2         | unknown subcommand, bad flag     |
//! | [`CliError::Input`]          | 1         | missing file, parse error, cycle |
//! | [`CliError::Internal`]       | 70        | pipeline invariant violation     |
//!
//! Pipeline errors ([`prio_core::PrioError`]) carry their stage name
//! (`parse:`, `emit:`, …) in the rendered message, so `prio: error:
//! parse: line 3: …` tells both the failure class and where in the
//! pipeline it arose.

use prio_core::PrioError;
use std::fmt;

/// Exit code for command-line usage errors (sysexits `EX_USAGE` is 64;
/// the conventional shell value 2 is used here, matching common tools).
pub const EXIT_USAGE: u8 = 2;
/// Exit code for invalid input data (general failure).
pub const EXIT_INPUT: u8 = 1;
/// Exit code for internal software errors (sysexits `EX_SOFTWARE`).
pub const EXIT_INTERNAL: u8 = 70;

/// A classified CLI failure; the class decides the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line itself was wrong (exit 2).
    Usage(String),
    /// The input data was unreadable or invalid (exit 1).
    Input(String),
    /// The pipeline violated one of its own invariants (exit 70).
    Internal(String),
}

impl CliError {
    /// A usage error.
    pub fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    /// An input error.
    pub fn input(msg: impl Into<String>) -> CliError {
        CliError::Input(msg.into())
    }

    /// An internal error.
    pub fn internal(msg: impl Into<String>) -> CliError {
        CliError::Internal(msg.into())
    }

    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Input(_) => EXIT_INPUT,
            CliError::Internal(_) => EXIT_INTERNAL,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Input(m) | CliError::Internal(m) => f.write_str(m),
        }
    }
}

impl From<PrioError> for CliError {
    /// Classifies a pipeline error: internal invariant violations are
    /// software bugs (exit 70); everything else is bad input (exit 1).
    /// The rendered message keeps the stage prefix (`parse:`, `emit:`, …).
    fn from(e: PrioError) -> CliError {
        if e.is_internal() {
            CliError::Internal(e.to_string())
        } else {
            CliError::Input(e.to_string())
        }
    }
}

impl From<prio_dagman::DagmanError> for CliError {
    /// Parse errors route through [`PrioError`] so the message carries the
    /// `parse:` stage prefix.
    fn from(e: prio_dagman::DagmanError) -> CliError {
        CliError::from(PrioError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_core::Stage;

    #[test]
    fn exit_codes_follow_the_convention() {
        assert_eq!(CliError::usage("x").exit_code(), 2, "usage errors exit 2");
        assert_eq!(CliError::input("x").exit_code(), 1);
        assert_eq!(CliError::internal("x").exit_code(), 70);
    }

    #[test]
    fn pipeline_errors_classify_by_kind_and_keep_the_stage() {
        let parse: CliError = prio_dagman::DagmanError::Malformed {
            line: 2,
            message: "bad".into(),
        }
        .into();
        assert_eq!(parse.exit_code(), EXIT_INPUT);
        assert!(parse.to_string().contains("parse:"), "{parse}");

        let internal: CliError = PrioError::internal(Stage::Emit, "broken").into();
        assert_eq!(internal.exit_code(), EXIT_INTERNAL);
        assert!(internal.to_string().contains("emit:"), "{internal}");
    }
}
