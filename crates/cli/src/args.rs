//! Minimal flag parsing shared by the subcommands (no external deps).
//!
//! Every parse failure is a [`CliError::Usage`] (exit code 2): the command
//! line itself, not the input data, was wrong.

use crate::error::CliError;
use std::collections::HashMap;

/// Parsed positional arguments and `--flag [value]` options.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, Option<String>>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &[
    "fifo",
    "critical-path",
    "theoretical",
    "in-place",
    "full",
    "verbose",
    "timings",
    "json",
    "stdio",
];

impl Args {
    /// Parses argv-style tokens. A `--flag` consumes the following token
    /// as its value unless it is boolean or the next token is another
    /// flag.
    pub fn parse(argv: &[String]) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err(CliError::usage("bare `--` is not supported"));
                }
                let takes_value = !BOOLEAN_FLAGS.contains(&name);
                let value = if takes_value {
                    let next = argv.get(i + 1);
                    match next {
                        Some(v) if !v.starts_with("--") => {
                            i += 1;
                            Some(v.clone())
                        }
                        _ => {
                            return Err(CliError::usage(format!("flag --{name} requires a value")))
                        }
                    }
                } else {
                    None
                };
                if args.flags.insert(name.to_string(), value).is_some() {
                    return Err(CliError::usage(format!("flag --{name} given twice")));
                }
            } else {
                args.positional.push(tok.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A flag's string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }

    /// A flag parsed as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("flag --{name}: cannot parse {v:?}"))),
        }
    }

    /// The single required positional argument.
    pub fn one_positional(&self) -> Result<&str, CliError> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            [] => Err(CliError::usage("expected one positional argument")),
            _ => Err(CliError::usage("too many positional arguments")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positional_and_flags() {
        let a = Args::parse(&v(&["file.dag", "--mu-bit", "0.5", "--fifo"])).unwrap();
        assert_eq!(a.one_positional().unwrap(), "file.dag");
        assert_eq!(a.get("mu-bit"), Some("0.5"));
        assert!(a.has("fifo"));
        assert_eq!(a.get_parsed("mu-bit", 1.0).unwrap(), 0.5);
        assert_eq!(a.get_parsed("p", 7usize).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&v(&["--seed"])).is_err());
        assert!(Args::parse(&v(&["--seed", "--fifo"])).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(Args::parse(&v(&["--seed", "1", "--seed", "2"])).is_err());
    }

    #[test]
    fn parse_error_is_reported() {
        let a = Args::parse(&v(&["--p", "abc"])).unwrap();
        assert!(a.get_parsed("p", 0usize).is_err());
    }
}
