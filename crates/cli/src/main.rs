//! The `prio` command-line tool (§3.2).
//!
//! ```text
//! prio instrument <workflow> [--format F] [--output <file>] [--jsdf-dir <dir>] [--in-place]
//!                 [--mode vars|priority] [--search N] [--threads T]     (alias: run)
//! prio convert    <in> <out> [--from F] [--to F]
//! prio batch      <dir> [--format F] [--search N] [--threads T]
//! prio schedule   <workflow> [--format F] [--fifo] [--critical-path]
//! prio compare    <workflow | --workload NAME [--scale F]>
//! prio generate   <airsn|inspiral|montage|sdss|fig3> [--width W] [--scale F] [--format F] [--output <file>]
//! prio simulate   (<workflow> | --workload NAME [--scale F]) [--mu-bit X] [--mu-bs Y] [--p N] [--q N] [--seed S]
//!                 [--trace-out <file>] [--timings]
//! prio report     <trace.jsonl | ->... [--json]
//! prio trace      <timeline|critical-path|curve|diff> ...
//! prio stats      <file.dag | --workload NAME>
//! prio serve      [--listen ADDR | --stdio] [--serve-threads N] [--queue-cap N]
//!                 [--cache-bytes N] [--max-request-bytes N] [--format F]
//! ```
//!
//! Every subcommand accepts the global `-v`/`--verbose` flag (or the
//! `PRIO_LOG` environment variable) to print a phase-timing footer, and
//! `simulate`/`instrument` additionally take `--trace-out <file>` to dump
//! structured JSONL events plus span/counter snapshots (`simulate`
//! streams them through the bounded async trace pipeline; `--trace-sample
//! N` thins job lifecycles to a deterministic 1/N subset). The global
//! `--profile-alloc` flag attaches allocation-count/byte/peak deltas to
//! every span (in the `--timings` footer and `--trace-out` records), and
//! `--metrics-out <file>` writes a Prometheus text-format metrics
//! snapshot at exit.
//!
//! `instrument` reproduces the paper's tool exactly: parse the DAGMan
//! input file, run the scheduling heuristic, define the `jobpriority`
//! macro per job via `VARS`, and set `priority = $(jobpriority)` in each
//! referenced job-submit description file that can be found on disk.

mod args;
mod commands;
mod error;

use error::CliError;
use std::process::ExitCode;

/// Counts every allocation so `--profile-alloc` can attach per-span
/// deltas. Two relaxed atomic ops per alloc; spans only read the
/// counters when profiling is switched on, so default output is
/// byte-identical with or without this allocator.
#[global_allocator]
static ALLOC: prio_obs::mem::CountingAllocator = prio_obs::mem::CountingAllocator;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // PRIO_LOG sets the baseline; explicit -v/-vv flags win. Global
    // flags are stripped before dispatch so they work in any position.
    prio_obs::init_from_env();
    let argv = strip_verbosity(argv);
    let argv = strip_profile_alloc(argv);
    let (argv, metrics_out) = strip_metrics_out(argv);
    let timings = argv.iter().any(|a| a == "--timings");
    let result = run(&argv).and_then(|()| write_metrics_out(metrics_out.as_deref()));
    match result {
        Ok(()) => {
            // Phase-timing footer on every subcommand, to stderr so piped
            // stdout output stays clean.
            prio_obs::report::print_footer(timings);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("prio: error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Removes the global `--metrics-out <file>` flag (valid anywhere on the
/// command line), returning its value so a Prometheus text-format
/// snapshot of every counter, gauge, and histogram can be written at
/// exit — after the subcommand has finished incrementing them.
fn strip_metrics_out(argv: Vec<String>) -> (Vec<String>, Option<String>) {
    let mut out = None;
    let mut stripped = Vec::with_capacity(argv.len());
    let mut iter = argv.into_iter();
    while let Some(a) = iter.next() {
        if a == "--metrics-out" {
            // A missing value falls through to the subcommand parser,
            // which reports the unknown dangling flag as a usage error.
            match iter.next() {
                Some(path) => out = Some(path),
                None => stripped.push(a),
            }
        } else {
            stripped.push(a);
        }
    }
    (stripped, out)
}

/// Writes the end-of-run Prometheus snapshot when `--metrics-out` asked
/// for one, surfacing write failures through the normal CLI exit path.
fn write_metrics_out(path: Option<&str>) -> Result<(), CliError> {
    let Some(path) = path else { return Ok(()) };
    prio_obs::prom::write_snapshot(std::path::Path::new(path))
        .map_err(|e| CliError::input(format!("{path}: {e}")))?;
    eprintln!("prio: wrote metrics snapshot to {path}");
    Ok(())
}

/// Removes `-v`/`--verbose`/`-vv` wherever they appear (global flags,
/// valid before or after the subcommand) and raises the verbosity
/// accordingly.
fn strip_verbosity(argv: Vec<String>) -> Vec<String> {
    let mut level = prio_obs::verbosity();
    let argv = argv
        .into_iter()
        .filter(|a| match a.as_str() {
            "-v" | "--verbose" => {
                level = level.max(prio_obs::Level::Info);
                false
            }
            "-vv" => {
                level = level.max(prio_obs::Level::Debug);
                false
            }
            _ => true,
        })
        .collect();
    prio_obs::set_verbosity(level);
    argv
}

/// Removes the global `--profile-alloc` flag (valid anywhere on the
/// command line), switching on per-span allocation deltas before any
/// span opens.
fn strip_profile_alloc(argv: Vec<String>) -> Vec<String> {
    let mut enabled = false;
    let argv = argv
        .into_iter()
        .filter(|a| {
            if a == "--profile-alloc" {
                enabled = true;
                false
            } else {
                true
            }
        })
        .collect();
    if enabled {
        prio_obs::mem::set_span_profiling(true);
    }
    argv
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err(CliError::usage("missing subcommand"));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "instrument" | "run" => commands::instrument::run(rest),
        "convert" => commands::convert::run(rest),
        "batch" => commands::batch::run(rest),
        "schedule" => commands::schedule::run(rest),
        "compare" => commands::compare::run(rest),
        "generate" => commands::generate::run(rest),
        "simulate" | "sim" => commands::simulate::run(rest),
        "report" => commands::report::run(rest),
        "serve" => commands::serve::run(rest),
        "trace" => commands::trace::run(rest),
        "stats" => commands::stats::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown subcommand {other:?} (try `prio help`)"
        ))),
    }
}

fn print_usage() {
    println!(
        "\
prio — prioritize DAGMan jobs to keep the number of eligible jobs high

USAGE:
    prio instrument <workflow> [--format F] [--output <file>] [--jsdf-dir <dir>]
                    [--in-place] [--mode vars|priority] [--search N] [--threads T]
                    [--trace-out <file>] [--timings]          (alias: run)
    prio convert    <in> <out> [--from F] [--to F]
    prio batch      <dir> [--format F] [--search N] [--threads T]
    prio schedule   <workflow> [--format F] [--fifo | --critical-path | --theoretical]
    prio compare    (<workflow> | --workload NAME [--scale F])
    prio generate   <airsn|inspiral|montage|sdss|fig3> [--width W] [--scale F]
                    [--format F] [--output <file>]
    prio simulate   (<workflow> | --workload NAME [--scale F])
                    [--mu-bit X] [--mu-bs Y] [--p N] [--q N] [--seed S] [--threads T]
                    [--fault-rate P] [--permanent-frac F] [--retries N]
                    [--backoff none|D|fixed:D|exp:B[:F[:C]]]
                    [--worker-mttf X] [--worker-mttr Y]
                    [--trace-out <file>] [--trace-sample N] [--trace-ring N]
                    [--timings]                               (alias: sim)
    prio report     <trace.jsonl | ->... [--json]
    prio trace      timeline      <trace.jsonl | -> [--json]
    prio trace      critical-path <trace.jsonl | -> [--json]
    prio trace      curve         <trace.jsonl | -> --out <file.tsv>
    prio trace      diff          <a.jsonl> <b.jsonl> [--policy-a P] [--policy-b P] [--json]
    prio stats      (<workflow> | --workload NAME [--scale F])
    prio serve      [--listen ADDR | --stdio] [--serve-threads N] [--queue-cap N]
                    [--cache-bytes N] [--max-request-bytes N] [--format F]
    prio help

FORMATS (--format / --from / --to):
    auto     detect by file extension, then by content (default)
    dagman   DAGMan input files            (*.dag)
    json     prio-workflow-v1 JSON graphs  (*.json)
    edges    whitespace/TSV edge lists     (*.edges, *.tsv)

GLOBAL FLAGS:
    -v, --verbose   print a phase-timing footer to stderr (-vv adds counters);
                    the PRIO_LOG env var (off|info|debug) sets the same levels
    --timings       print the phase-timing footer regardless of verbosity
    --trace-out F   write structured JSONL events/spans/counters to F
                    (simulate streams events through a bounded async ring;
                    --trace-sample N keeps lifecycle events for ~1/N of
                    jobs, --trace-ring N sizes the ring in slots)
    --metrics-out F write a Prometheus text-format snapshot of all
                    counters/gauges/histograms to F at exit
    --profile-alloc attach allocation count/bytes/peak deltas to every span

SUBCOMMANDS:
    instrument  parse a workflow file, compute the PRIO schedule, write the
                prioritized file back (DAGMan gets jobpriority VARS plus
                JSDF priority lines when found; other formats re-export
                with priorities attached)                      (alias: run)
    convert     translate a workflow between formats, keeping jobs, arcs,
                metadata, and priorities
    batch       prioritize every workflow file in a directory, writing each
                result next to its input as <stem>.prio.<ext>
    schedule    print the schedule, one job name per line
    compare     print E_PRIO(t) - E_FIFO(t) per step (the paper's Fig. 4)
    generate    emit a synthetic scientific dag as a DAGMan file
    simulate    compare PRIO vs FIFO under the stochastic grid model;
                --fault-rate/--retries/--backoff/--worker-mttf inject
                seeded job faults, DAGMan-style retries, and pool churn
    report      summarize --trace-out JSONL files: span percentiles,
                simulator time-series digests, PRIO-vs-FIFO side by side
    trace       analyze job-lifecycle traces: per-job timeline, realized
                critical path, eligibility curve (fig4 TSV), run diff
    stats       print pipeline statistics (components, families, shortcuts)
    serve       run the prioritization daemon: line-delimited JSON requests
                over TCP (--listen, until a shutdown verb) or stdin/stdout
                (--stdio, until EOF), with a worker pool, a bounded queue
                that sheds load as `overloaded`, and a content-hash result
                cache; `stats`/`ping` control verbs answer inline

EXIT CODES:
    0   success
    1   invalid input (unreadable file, parse error, dependency cycle)
    2   command-line usage error (unknown subcommand or flag value)
    70  internal error (a pipeline invariant was violated — a bug)"
    );
}
