//! The `prio` command-line tool (§3.2).
//!
//! ```text
//! prio instrument <file.dag> [--output <file>] [--jsdf-dir <dir>] [--in-place]\n                    [--mode vars|priority] [--search N]
//! prio schedule   <file.dag> [--fifo] [--critical-path]
//! prio compare    <file.dag | --workload NAME [--scale F]>
//! prio generate   <airsn|inspiral|montage|sdss|fig3> [--width W] [--scale F] [--output <file>]
//! prio simulate   (<file.dag> | --workload NAME [--scale F]) [--mu-bit X] [--mu-bs Y] [--p N] [--q N] [--seed S]
//! prio stats      <file.dag | --workload NAME>
//! ```
//!
//! `instrument` reproduces the paper's tool exactly: parse the DAGMan
//! input file, run the scheduling heuristic, define the `jobpriority`
//! macro per job via `VARS`, and set `priority = $(jobpriority)` in each
//! referenced job-submit description file that can be found on disk.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("prio: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "instrument" => commands::instrument::run(rest),
        "schedule" => commands::schedule::run(rest),
        "compare" => commands::compare::run(rest),
        "generate" => commands::generate::run(rest),
        "simulate" => commands::simulate::run(rest),
        "stats" => commands::stats::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?} (try `prio help`)")),
    }
}

fn print_usage() {
    println!(
        "\
prio — prioritize DAGMan jobs to keep the number of eligible jobs high

USAGE:
    prio instrument <file.dag> [--output <file>] [--jsdf-dir <dir>] [--in-place]\n                    [--mode vars|priority] [--search N]
    prio schedule   <file.dag> [--fifo | --critical-path | --theoretical]
    prio compare    (<file.dag> | --workload NAME [--scale F])
    prio generate   <airsn|inspiral|montage|sdss|fig3> [--width W] [--scale F] [--output <file>]
    prio simulate   (<file.dag> | --workload NAME [--scale F])
                    [--mu-bit X] [--mu-bs Y] [--p N] [--q N] [--seed S] [--threads T]
    prio stats      (<file.dag> | --workload NAME [--scale F])
    prio help

SUBCOMMANDS:
    instrument  parse a DAGMan file, compute the PRIO schedule, write back
                jobpriority VARS (and JSDF priority lines when found)
    schedule    print the schedule, one job name per line
    compare     print E_PRIO(t) - E_FIFO(t) per step (the paper's Fig. 4)
    generate    emit a synthetic scientific dag as a DAGMan file
    simulate    compare PRIO vs FIFO under the stochastic grid model
    stats       print pipeline statistics (components, families, shortcuts)"
    );
}
