//! `prio simulate` — PRIO vs FIFO under the stochastic grid model.

use crate::args::Args;
use crate::commands::load_dag;
use crate::error::CliError;
use prio_core::prio::prioritize;
use prio_obs::JsonlSink;
use prio_sim::engine::simulate_traced;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::{compare_policies, GridModel, PolicySpec};
use std::path::Path;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let (name, dag) = load_dag(&args)?;
    let mu_bit: f64 = args.get_parsed("mu-bit", 1.0)?;
    let mu_bs: f64 = args.get_parsed("mu-bs", 16.0)?;
    let p: usize = args.get_parsed("p", 30)?;
    let q: usize = args.get_parsed("q", 20)?;
    let seed: u64 = args.get_parsed("seed", 20060401)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    if mu_bit <= 0.0 || mu_bs < 1.0 {
        return Err(CliError::usage("--mu-bit must be > 0 and --mu-bs >= 1"));
    }

    eprintln!("prio: simulating {name} at mu_bit={mu_bit}, mu_bs={mu_bs} (p={p}, q={q})");
    let prio = PolicySpec::Oblivious(prioritize(&dag)?.schedule);
    let model = GridModel::paper(mu_bit, mu_bs);
    let plan = ReplicationPlan {
        p,
        q,
        seed,
        threads,
    };
    let r = compare_policies(&dag, &prio, &PolicySpec::Fifo, &model, &plan);

    println!("metric\tPRIO_mean\tFIFO_mean\tratio_median\tratio_lo\tratio_hi");
    let rows = [
        (
            "execution_time",
            &r.a.execution_time,
            &r.b.execution_time,
            &r.execution_time_ratio,
        ),
        (
            "stall_probability",
            &r.a.stalling,
            &r.b.stalling,
            &r.stalling_ratio,
        ),
        (
            "utilization",
            &r.a.utilization,
            &r.b.utilization,
            &r.utilization_ratio,
        ),
    ];
    for (name, a, b, ci) in rows {
        let (median, lo, hi) = match ci {
            Some(ci) => (
                format!("{:.4}", ci.median),
                format!("{:.4}", ci.lo),
                format!("{:.4}", ci.hi),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "{name}\t{:.4}\t{:.4}\t{median}\t{lo}\t{hi}",
            a.summary().mean,
            b.summary().mean
        );
    }

    // Structured trace: one fully traced run per policy (events plus the
    // per-run simulator telemetry — time series and latency histograms),
    // then the span and metric snapshots, all as JSONL. The telemetry is
    // a pure function of the seed, so serial and `--threads` invocations
    // write identical `ts`/`hist` records.
    if let Some(out) = args.get("trace-out") {
        let io_err = |e: std::io::Error| CliError::input(format!("{out}: {e}"));
        let sink = JsonlSink::to_file(Path::new(out)).map_err(io_err)?;
        sink.write_meta(
            "simulate",
            &format!("workload={name} mu_bit={mu_bit} mu_bs={mu_bs} seed={seed}"),
        )
        .map_err(io_err)?;
        for (policy_name, policy) in [("prio", &prio), ("fifo", &PolicySpec::Fifo)] {
            sink.write_meta("trace", &format!("policy={policy_name} seed={seed}"))
                .map_err(io_err)?;
            let traced = simulate_traced(&dag, policy, &model, seed);
            let trace = traced
                .trace
                .ok_or_else(|| CliError::internal("traced run recorded no trace"))?;
            let telemetry = traced
                .telemetry
                .ok_or_else(|| CliError::internal("traced run recorded no telemetry"))?;
            prio_sim::trace_json::write_trace(&sink, &trace).map_err(io_err)?;
            prio_sim::trace_json::write_telemetry(&sink, policy_name, &telemetry)
                .map_err(io_err)?;
        }
        sink.write_span_snapshot().map_err(io_err)?;
        sink.write_metrics_snapshot().map_err(io_err)?;
        sink.write_histograms_snapshot().map_err(io_err)?;
        sink.flush().map_err(io_err)?;
        eprintln!("prio: wrote event trace to {out}");
    }
    Ok(())
}
