//! `prio simulate` — PRIO vs FIFO under the stochastic grid model.

use crate::args::Args;
use crate::commands::load_dag;
use crate::error::CliError;
use prio_core::prio::prioritize;
use prio_obs::json::JsonObject;
use prio_obs::{JobSampler, JsonlSink, DEFAULT_RING_CAPACITY};
use prio_sim::engine::simulate_streamed;
use prio_sim::experiment::compare_policies_with;
use prio_sim::replicate::ReplicationPlan;
use prio_sim::trace_json::{event_pipeline, StreamingTraceWriter};
use prio_sim::{Backoff, FaultConfig, FaultModel, GridModel, PolicySpec, RetryPolicy};
use std::path::Path;

/// Parses the fault flags into a config; `None` when no fault flag asks
/// for an active layer (the reliable §4 grid).
fn fault_config(args: &Args) -> Result<Option<FaultConfig>, CliError> {
    let fault_rate: f64 = args.get_parsed("fault-rate", 0.0)?;
    let permanent: f64 = args.get_parsed("permanent-frac", 0.0)?;
    let retries: u32 = args.get_parsed("retries", 3)?;
    let backoff = match args.get("backoff") {
        None => Backoff::None,
        Some(spec) => Backoff::parse(spec).map_err(CliError::usage)?,
    };
    let mttf: f64 = args.get_parsed("worker-mttf", 0.0)?;
    let mttr: f64 = args.get_parsed("worker-mttr", 0.0)?;
    if !(0.0..1.0).contains(&fault_rate) {
        return Err(CliError::usage("--fault-rate must be in [0, 1)"));
    }
    if !(0.0..=1.0).contains(&permanent) {
        return Err(CliError::usage("--permanent-frac must be in [0, 1]"));
    }
    if mttf < 0.0 || mttr < 0.0 {
        return Err(CliError::usage("--worker-mttf/--worker-mttr must be >= 0"));
    }
    if mttr > 0.0 && mttf == 0.0 {
        return Err(CliError::usage("--worker-mttr requires --worker-mttf"));
    }
    let mut model = FaultModel::none();
    if fault_rate > 0.0 {
        model = FaultModel::with_rate(fault_rate);
    }
    if permanent > 0.0 {
        model = model.with_permanent(permanent);
    }
    if mttf > 0.0 {
        // Default repair time: a quarter of the uptime.
        model = model.with_churn(mttf, if mttr > 0.0 { mttr } else { mttf / 4.0 });
    }
    if !model.is_active() {
        return Ok(None);
    }
    Ok(Some(FaultConfig {
        model,
        retry: RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff,
        },
    }))
}

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let (name, dag) = load_dag(&args)?;
    let mu_bit: f64 = args.get_parsed("mu-bit", 1.0)?;
    let mu_bs: f64 = args.get_parsed("mu-bs", 16.0)?;
    let p: usize = args.get_parsed("p", 30)?;
    let q: usize = args.get_parsed("q", 20)?;
    let seed: u64 = args.get_parsed("seed", 20060401)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    if mu_bit <= 0.0 || mu_bs < 1.0 {
        return Err(CliError::usage("--mu-bit must be > 0 and --mu-bs >= 1"));
    }
    let faults = fault_config(&args)?;

    eprintln!("prio: simulating {name} at mu_bit={mu_bit}, mu_bs={mu_bs} (p={p}, q={q})");
    if let Some(f) = &faults {
        eprintln!(
            "prio: fault layer on: rate={} permanent={} max_attempts={} backoff={:?} churn={:?}",
            f.model.failure_probability,
            f.model.permanent_probability,
            f.retry.max_attempts,
            f.retry.backoff,
            f.model.worker_mttf,
        );
    }
    let prio = PolicySpec::Oblivious(prioritize(&dag)?.schedule);
    let model = GridModel::paper(mu_bit, mu_bs);
    let plan = ReplicationPlan {
        p,
        q,
        seed,
        threads,
    };
    let r = compare_policies_with(
        &dag,
        &prio,
        &PolicySpec::Fifo,
        &model,
        faults.as_ref(),
        &plan,
    );

    println!("metric\tPRIO_mean\tFIFO_mean\tratio_median\tratio_lo\tratio_hi");
    let mut rows = vec![
        (
            "execution_time",
            &r.a.execution_time,
            &r.b.execution_time,
            &r.execution_time_ratio,
        ),
        (
            "stall_probability",
            &r.a.stalling,
            &r.b.stalling,
            &r.stalling_ratio,
        ),
        (
            "utilization",
            &r.a.utilization,
            &r.b.utilization,
            &r.utilization_ratio,
        ),
    ];
    // Fault metrics only appear when the layer is on, keeping reliable
    // output byte-identical to earlier builds.
    if faults.is_some() {
        rows.push((
            "failed_attempts",
            &r.a.failed_attempts,
            &r.b.failed_attempts,
            &None,
        ));
        rows.push((
            "wasted_work",
            &r.a.wasted_work,
            &r.b.wasted_work,
            &r.wasted_work_ratio,
        ));
    }
    for (name, a, b, ci) in rows {
        let (median, lo, hi) = match ci {
            Some(ci) => (
                format!("{:.4}", ci.median),
                format!("{:.4}", ci.lo),
                format!("{:.4}", ci.hi),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "{name}\t{:.4}\t{:.4}\t{median}\t{lo}\t{hi}",
            a.summary().mean,
            b.summary().mean
        );
    }

    // Structured trace: one fully traced run per policy (events plus the
    // per-run simulator telemetry — time series and latency histograms),
    // then the span and metric snapshots, all as JSONL. The telemetry is
    // a pure function of the seed, so serial and `--threads` invocations
    // write identical `ts`/`hist` records.
    if let Some(out) = args.get("trace-out") {
        let sample: u64 = args.get_parsed("trace-sample", 1)?;
        if sample == 0 {
            return Err(CliError::usage("--trace-sample must be >= 1"));
        }
        let ring: usize = args.get_parsed("trace-ring", DEFAULT_RING_CAPACITY)?;
        if ring < 2 {
            return Err(CliError::usage("--trace-ring must be >= 2"));
        }
        let io_err = |e: std::io::Error| CliError::input(format!("{out}: {e}"));
        let sink = JsonlSink::to_file(Path::new(out)).map_err(io_err)?;
        // Events stream through the bounded async pipeline: the sim
        // thread enqueues each event by value; a dedicated writer thread
        // JSON-encodes and drains to disk. Meta and telemetry records
        // ride the same ring (losslessly, via `control`) so the file
        // keeps its segment order; on overflow *events* are counted and
        // dropped rather than stalling the sim clock.
        let pipeline = event_pipeline(sink, ring, sample);
        // The fault parameters join the meta line only when the layer is
        // on, so reliable trace files stay identical to earlier builds.
        let fault_meta = match &faults {
            Some(f) => format!(
                " fault_rate={} retries={}",
                f.model.failure_probability,
                f.retry.max_attempts.saturating_sub(1)
            ),
            None => String::new(),
        };
        let meta = |command: &str, detail: &str| {
            JsonObject::typed("meta")
                .str("command", command)
                .str("detail", detail)
                .finish()
        };
        pipeline.control(meta(
            "simulate",
            &format!("workload={name} mu_bit={mu_bit} mu_bs={mu_bs} seed={seed}{fault_meta}"),
        ));
        let sampler = JobSampler::new(sample);
        if sampler.is_sampling() {
            eprintln!(
                "prio: sampling lifecycle events for ~1/{sample} of jobs \
                 (aggregate telemetry stays exact)"
            );
        }
        for (policy_name, policy) in [("prio", &prio), ("fifo", &PolicySpec::Fifo)] {
            pipeline.control(meta("trace", &format!("policy={policy_name} seed={seed}")));
            let writer = StreamingTraceWriter::new(&pipeline, sampler);
            let outcome = simulate_streamed(&dag, policy, &model, faults.as_ref(), seed, &writer);
            let telemetry = outcome
                .telemetry
                .ok_or_else(|| CliError::internal("streamed run recorded no telemetry"))?;
            for line in prio_sim::trace_json::telemetry_to_json(policy_name, &telemetry) {
                pipeline.control(line);
            }
        }
        let (sink, stats, result) = pipeline.finish();
        result.map_err(io_err)?;
        sink.write_line(&stats.meta_line()).map_err(io_err)?;
        sink.write_span_snapshot().map_err(io_err)?;
        sink.write_metrics_snapshot().map_err(io_err)?;
        sink.write_histograms_snapshot().map_err(io_err)?;
        sink.flush().map_err(io_err)?;
        if stats.dropped > 0 {
            eprintln!(
                "prio: WARNING: trace is lossy — {} of {} events dropped (ring full); \
                 rerun with a larger --trace-ring or --trace-sample to keep every event",
                stats.dropped,
                stats.dropped + stats.enqueued,
            );
        }
        eprintln!("prio: wrote event trace to {out}");
    }
    Ok(())
}
