//! `prio report` — summarize one or more `--trace-out` JSONL files.
//!
//! Reads the record stream (`meta`, `span`, `counter`/`gauge`, the
//! simulator trace events, and the telemetry records `ts`/`hist`)
//! through the bounded-memory [`prio_obs::stream`] reader — one line at a
//! time, so 10^6-job traces never get slurped — and renders a run
//! summary: a span-timing table with latency percentiles, a per-policy
//! simulator time-series digest (peak/mean eligible pool, utilization
//! curve), per-job latency histograms, and — when exactly two policies
//! are present (one file with both, or two files) — a PRIO-vs-FIFO
//! side-by-side comparison. `--json` emits the same summary as a single
//! JSON document on stdout. A path of `-` reads stdin; an input mixing
//! records of different explicit schema versions is rejected whole
//! rather than half-parsed.
//!
//! Everything derived from the simulator telemetry is deterministic per
//! seed, which is what the golden-output test pins; span timings are
//! wall-clock and vary run to run.

use crate::args::Args;
use crate::error::CliError;
use prio_bench::report::Table;
use prio_obs::json::{JsonObject, JsonValue, SCHEMA_VERSION};
use prio_obs::stream::{self, JsonlReader, Record};
use std::io::BufRead;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let json = args.has("json");
    if args.positional.is_empty() {
        return Err(CliError::usage(
            "expected one or more trace files: prio report <trace.jsonl | -> ... [--json]",
        ));
    }
    let sources = args
        .positional
        .iter()
        .map(|path| Source::load(path))
        .collect::<Result<Vec<_>, _>>()?;
    // Lossy traces must never be summarized silently: the warning goes
    // to stderr in both modes so `--json` pipelines still see it.
    for source in &sources {
        if let Some(p) = &source.pipeline {
            if p.dropped > 0 {
                eprintln!(
                    "prio: WARNING: {}: lossy trace — {} of {} events were dropped at capture \
                     (ring overflow); event counts and curves underestimate the run",
                    source.path,
                    p.dropped,
                    p.dropped + p.enqueued,
                );
            }
            if p.sample > 1 {
                eprintln!(
                    "prio: note: {}: sampled trace (~1/{} of job lifecycles kept; \
                     telemetry digests stay exact)",
                    source.path, p.sample,
                );
            }
        }
    }
    let comparison = comparison(&sources);
    if json {
        println!("{}", render_json(&sources, &comparison));
    } else {
        print!("{}", render_text(&sources, &comparison));
    }
    Ok(())
}

/// The trailing drop-accounting record the trace pipeline appends
/// (`meta` with `command=trace_pipeline`).
#[derive(Debug, Clone, Copy)]
struct PipelineMeta {
    enqueued: u64,
    dropped: u64,
    sample: u64,
}

/// One time-series telemetry record (`type: "ts"`).
#[derive(Debug)]
struct TsRecord {
    series: String,
    pushed: u64,
    peak: f64,
    peak_t: f64,
    mean: f64,
    last_t: f64,
    last_v: f64,
    samples: Vec<(f64, f64)>,
}

/// One histogram summary record (`type: "hist"`).
#[derive(Debug)]
struct HistRecord {
    name: String,
    count: u64,
    mean: f64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
}

/// Simulator event counts for one policy segment. The fault-layer
/// counts (`retried`, `worker_down`) stay zero on reliable traces and
/// their columns are only rendered when some segment recorded them.
#[derive(Debug, Default)]
struct EventCounts {
    batches: u64,
    requests: u64,
    stalled: u64,
    assigned: u64,
    completed: u64,
    failed: u64,
    retried: u64,
    worker_down: u64,
}

/// Everything recorded under one `policy=` tag.
#[derive(Debug, Default)]
struct PolicyGroup {
    policy: String,
    events: EventCounts,
    series: Vec<TsRecord>,
    hists: Vec<HistRecord>,
}

impl PolicyGroup {
    fn digest(&self, series: &str) -> Option<&TsRecord> {
        self.series.iter().find(|t| t.series == series)
    }

    fn hist(&self, name: &str) -> Option<&HistRecord> {
        self.hists.iter().find(|h| h.name == name)
    }
}

/// One `span` record.
#[derive(Debug)]
struct SpanRow {
    path: String,
    count: u64,
    total_ms: f64,
    max_ms: f64,
    /// `(p50, p90, p99)` in ms; absent on v1 traces.
    percentiles: Option<(f64, f64, f64)>,
}

/// One parsed trace file.
#[derive(Debug)]
struct Source {
    path: String,
    metas: Vec<String>,
    spans: Vec<SpanRow>,
    /// Per-policy groups in encounter order; events before the first
    /// `policy=` meta land in a `"-"` group.
    groups: Vec<PolicyGroup>,
    /// Registry histograms (pipeline-side, not policy-tagged).
    registry_hists: Vec<HistRecord>,
    counters: u64,
    /// Drop accounting from the capture pipeline, when the trace has it.
    pipeline: Option<PipelineMeta>,
}

impl Source {
    fn load(path: &str) -> Result<Source, CliError> {
        let reader = stream::open(path).map_err(|e| CliError::input(format!("{path}: {e}")))?;
        Source::from_reader(path, reader)
    }

    /// Streams records into a `Source`: the reader holds one line at a
    /// time, so memory stays bounded by the digest being built, not the
    /// trace size. Version violations (future or mixed schemas) surface
    /// as structured input errors.
    fn from_reader<R: BufRead>(path: &str, reader: JsonlReader<R>) -> Result<Source, CliError> {
        let mut source = Source {
            path: path.to_string(),
            metas: Vec::new(),
            spans: Vec::new(),
            groups: Vec::new(),
            registry_hists: Vec::new(),
            counters: 0,
            pipeline: None,
        };
        let mut current = String::from("-");
        for record in reader {
            let record = record.map_err(|e| CliError::input(format!("{path}: {e}")))?;
            source
                .ingest(&record, &mut current)
                .map_err(|e| CliError::input(format!("{path}: line {}: {e}", record.line_no)))?;
        }
        Ok(source)
    }

    fn group_mut(&mut self, policy: &str) -> &mut PolicyGroup {
        if let Some(i) = self.groups.iter().position(|g| g.policy == policy) {
            return &mut self.groups[i];
        }
        self.groups.push(PolicyGroup {
            policy: policy.to_string(),
            ..PolicyGroup::default()
        });
        self.groups.last_mut().expect("just pushed")
    }

    fn ingest(&mut self, record: &Record, current_policy: &mut String) -> Result<(), String> {
        let v = &record.value;
        let kind = record.kind.as_str();
        let f = |key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        let s = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or("-")
                .to_string()
        };
        match kind {
            "meta" => {
                let detail = s("detail");
                // `trace` meta lines open a per-policy segment; the
                // pipeline's trailing record carries drop accounting;
                // everything else is header material.
                let command = s("command");
                if command == "trace" {
                    if let Some(policy) = detail
                        .split_whitespace()
                        .find_map(|kv| kv.strip_prefix("policy="))
                    {
                        *current_policy = policy.to_string();
                    }
                } else if command == "trace_pipeline" {
                    self.pipeline = Some(PipelineMeta {
                        enqueued: u("enqueued"),
                        dropped: u("dropped"),
                        sample: u("sample").max(1),
                    });
                }
                self.metas.push(format!("{command} {detail}"));
            }
            "span" => {
                let percentiles = match (
                    v.get("p50_ms").and_then(JsonValue::as_f64),
                    v.get("p90_ms").and_then(JsonValue::as_f64),
                    v.get("p99_ms").and_then(JsonValue::as_f64),
                ) {
                    (Some(p50), Some(p90), Some(p99)) => Some((p50, p90, p99)),
                    _ => None,
                };
                self.spans.push(SpanRow {
                    path: s("path"),
                    count: u("count"),
                    total_ms: f("total_ms"),
                    max_ms: f("max_ms"),
                    percentiles,
                });
            }
            "counter" | "gauge" => self.counters += 1,
            "batch_arrived" => {
                let events = &mut self.group_mut(current_policy).events;
                events.batches += 1;
                events.requests += u("size");
                if v.get("stalled").and_then(JsonValue::as_bool) == Some(true) {
                    events.stalled += 1;
                }
            }
            "job_assigned" => self.group_mut(current_policy).events.assigned += 1,
            "job_completed" => self.group_mut(current_policy).events.completed += 1,
            "job_failed" => self.group_mut(current_policy).events.failed += 1,
            "job_retried" => self.group_mut(current_policy).events.retried += 1,
            "worker_down" => self.group_mut(current_policy).events.worker_down += 1,
            "ts" => {
                let samples = match v.get("samples") {
                    Some(JsonValue::Arr(items)) => items
                        .iter()
                        .filter_map(|pair| match pair {
                            JsonValue::Arr(tv) if tv.len() == 2 => {
                                Some((tv[0].as_f64()?, tv[1].as_f64()?))
                            }
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                let policy = s("policy");
                self.group_mut(&policy).series.push(TsRecord {
                    series: s("series"),
                    pushed: u("pushed"),
                    peak: f("peak"),
                    peak_t: f("peak_t"),
                    mean: f("mean"),
                    last_t: f("last_t"),
                    last_v: f("last_v"),
                    samples,
                });
            }
            "hist" => {
                let record = HistRecord {
                    name: s("name"),
                    count: u("count"),
                    mean: f("mean"),
                    p50: u("p50"),
                    p90: u("p90"),
                    p99: u("p99"),
                    max: u("max"),
                };
                // Telemetry histograms carry a policy tag; registry
                // histograms (pipeline-side) do not.
                match v.get("policy").and_then(JsonValue::as_str) {
                    Some(policy) => {
                        let policy = policy.to_string();
                        self.group_mut(&policy).hists.push(record);
                    }
                    None => self.registry_hists.push(record),
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// A digest field of one named series, or 0 when the series is absent.
fn ts_metric(g: &PolicyGroup, series: &str, pick: fn(&TsRecord) -> f64) -> f64 {
    g.digest(series).map(pick).unwrap_or(0.0)
}

/// A summary field of one named histogram, or 0 when it is absent.
fn hist_metric(g: &PolicyGroup, name: &str, pick: fn(&HistRecord) -> f64) -> f64 {
    g.hist(name).map(pick).unwrap_or(0.0)
}

/// One row of the side-by-side comparison.
struct ComparisonRow {
    metric: &'static str,
    a: f64,
    b: f64,
}

/// The two policies compared, plus the metric rows. `None` unless exactly
/// two policy groups with telemetry exist across all sources.
struct Comparison {
    a_name: String,
    b_name: String,
    rows: Vec<ComparisonRow>,
}

fn comparison(sources: &[Source]) -> Option<Comparison> {
    let groups: Vec<(usize, &PolicyGroup)> = sources
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.groups.iter().map(move |g| (i, g)))
        .filter(|(_, g)| !g.series.is_empty())
        .collect();
    let [(ai, a), (bi, b)] = groups.as_slice() else {
        return None;
    };
    let label = |i: usize, g: &PolicyGroup| {
        if sources.len() > 1 {
            format!("{}:{}", i, g.policy)
        } else {
            g.policy.clone()
        }
    };
    type Metric = (&'static str, fn(&PolicyGroup) -> f64);
    let mut metrics: Vec<Metric> = vec![
        ("makespan", |g| ts_metric(g, "eligible_pool", |t| t.last_t)),
        ("eligible_pool_mean", |g| {
            ts_metric(g, "eligible_pool", |t| t.mean)
        }),
        ("eligible_pool_peak", |g| {
            ts_metric(g, "eligible_pool", |t| t.peak)
        }),
        ("utilization_final", |g| {
            ts_metric(g, "utilization", |t| t.last_v)
        }),
        ("job_wait_mean_milli", |g| {
            hist_metric(g, "job_wait_milli", |h| h.mean)
        }),
        ("job_wait_p90_milli", |g| {
            hist_metric(g, "job_wait_milli", |h| h.p90 as f64)
        }),
        ("job_service_mean_milli", |g| {
            hist_metric(g, "job_service_milli", |h| h.mean)
        }),
    ];
    // Fault metrics join only when some side recorded wasted work, so the
    // reliable report keeps its original seven rows.
    if a.hist("wasted_work_milli").is_some() || b.hist("wasted_work_milli").is_some() {
        metrics.push(("job_attempts_total", |g| {
            hist_metric(g, "job_attempts", |h| h.count as f64)
        }));
        metrics.push(("wasted_work_mean_milli", |g| {
            hist_metric(g, "wasted_work_milli", |h| h.mean)
        }));
    }
    Some(Comparison {
        a_name: label(*ai, a),
        b_name: label(*bi, b),
        rows: metrics
            .iter()
            .map(|(metric, pick)| ComparisonRow {
                metric,
                a: pick(a),
                b: pick(b),
            })
            .collect(),
    })
}

/// A fixed-width sparkline of the stored samples (value axis normalized to
/// the series' own min..max). Unicode block characters; kept in the last
/// table column so byte-width alignment does not matter.
fn sparkline(samples: &[(f64, f64)], width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if samples.is_empty() {
        return String::new();
    }
    let min = samples
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    let max = samples
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let n = samples.len().min(width);
    (0..n)
        .map(|i| {
            let idx = if n == 1 {
                0
            } else {
                i * (samples.len() - 1) / (n - 1)
            };
            let v = samples[idx].1;
            let level = if max > min {
                (((v - min) / (max - min)) * 7.0).round() as usize
            } else {
                0
            };
            LEVELS[level.min(7)]
        })
        .collect()
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        fmt(a / b)
    }
}

fn render_text(sources: &[Source], comparison: &Option<Comparison>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "prio report — {} trace file{}, schema v{SCHEMA_VERSION}\n",
        sources.len(),
        if sources.len() == 1 { "" } else { "s" },
    ));
    for (i, source) in sources.iter().enumerate() {
        out.push_str(&format!("\nsource {i}: {}\n", source.path));
        for meta in &source.metas {
            out.push_str(&format!("  meta: {meta}\n"));
        }
        if let Some(p) = &source.pipeline {
            if p.dropped > 0 {
                out.push_str(&format!(
                    "  WARNING: lossy trace — {} of {} events dropped at capture \
                     (ring overflow); counts below underestimate the run\n",
                    p.dropped,
                    p.dropped + p.enqueued,
                ));
            }
            if p.sample > 1 {
                out.push_str(&format!(
                    "  note: sampled trace (~1/{} of job lifecycles kept; \
                     telemetry digests stay exact)\n",
                    p.sample,
                ));
            }
        }
    }

    let opt = |p: Option<f64>| p.map(fmt).unwrap_or_else(|| "-".to_string());
    let mut spans = Table::new(&[
        "source", "span", "count", "total_ms", "max_ms", "p50_ms", "p90_ms", "p99_ms",
    ]);
    let mut have_spans = false;
    for (i, source) in sources.iter().enumerate() {
        for row in &source.spans {
            have_spans = true;
            spans.row(vec![
                i.to_string(),
                row.path.clone(),
                row.count.to_string(),
                fmt(row.total_ms),
                fmt(row.max_ms),
                opt(row.percentiles.map(|p| p.0)),
                opt(row.percentiles.map(|p| p.1)),
                opt(row.percentiles.map(|p| p.2)),
            ]);
        }
    }
    if have_spans {
        out.push_str("\nspans (wall-clock)\n");
        out.push_str(&spans.render());
    }

    // The retried/churn columns appear only when a fault-bearing trace
    // recorded them, keeping reliable reports identical to earlier builds.
    let have_faults = sources
        .iter()
        .flat_map(|s| &s.groups)
        .any(|g| g.events.retried + g.events.worker_down > 0);
    let mut event_headers = vec![
        "source",
        "policy",
        "batches",
        "requests",
        "stalled",
        "assigned",
        "completed",
        "failed",
    ];
    if have_faults {
        event_headers.push("retried");
        event_headers.push("churn");
    }
    let mut events = Table::new(&event_headers);
    let mut have_events = false;
    let mut telemetry = Table::new(&[
        "source", "policy", "series", "pushed", "peak", "peak@t", "mean", "last", "curve",
    ]);
    let mut have_telemetry = false;
    let mut latencies = Table::new(&[
        "source",
        "policy",
        "histogram",
        "count",
        "mean",
        "p50",
        "p90",
        "p99",
        "max",
    ]);
    let mut have_latencies = false;
    for (i, source) in sources.iter().enumerate() {
        for group in &source.groups {
            let e = &group.events;
            if e.batches + e.assigned + e.completed + e.failed > 0 {
                have_events = true;
                let mut row = vec![
                    i.to_string(),
                    group.policy.clone(),
                    e.batches.to_string(),
                    e.requests.to_string(),
                    e.stalled.to_string(),
                    e.assigned.to_string(),
                    e.completed.to_string(),
                    e.failed.to_string(),
                ];
                if have_faults {
                    row.push(e.retried.to_string());
                    row.push(e.worker_down.to_string());
                }
                events.row(row);
            }
            for t in &group.series {
                have_telemetry = true;
                telemetry.row(vec![
                    i.to_string(),
                    group.policy.clone(),
                    t.series.clone(),
                    t.pushed.to_string(),
                    fmt(t.peak),
                    fmt(t.peak_t),
                    fmt(t.mean),
                    fmt(t.last_v),
                    sparkline(&t.samples, 24),
                ]);
            }
            for h in &group.hists {
                have_latencies = true;
                latencies.row(vec![
                    i.to_string(),
                    group.policy.clone(),
                    h.name.clone(),
                    h.count.to_string(),
                    fmt(h.mean),
                    h.p50.to_string(),
                    h.p90.to_string(),
                    h.p99.to_string(),
                    h.max.to_string(),
                ]);
            }
        }
        for h in &source.registry_hists {
            have_latencies = true;
            latencies.row(vec![
                i.to_string(),
                "-".to_string(),
                h.name.clone(),
                h.count.to_string(),
                fmt(h.mean),
                h.p50.to_string(),
                h.p90.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
    }
    if have_events {
        out.push_str("\nsimulator events\n");
        out.push_str(&events.render());
    }
    if have_telemetry {
        out.push_str("\nsimulator telemetry (time-series digests)\n");
        out.push_str(&telemetry.render());
    }
    if have_latencies {
        out.push_str("\nlatency histograms\n");
        out.push_str(&latencies.render());
    }

    if let Some(c) = comparison {
        out.push_str(&format!("\n{} vs {}\n", c.a_name, c.b_name));
        let mut table = Table::new(&["metric", &c.a_name, &c.b_name, "ratio"]);
        for row in &c.rows {
            table.row(vec![
                row.metric.to_string(),
                fmt(row.a),
                fmt(row.b),
                ratio(row.a, row.b),
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

fn render_json(sources: &[Source], comparison: &Option<Comparison>) -> String {
    let join = |items: Vec<String>| items.join(",");
    let mut out = format!("{{\"type\":\"report\",\"v\":{SCHEMA_VERSION}");

    out.push_str(",\"sources\":[");
    out.push_str(&join(
        sources
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut obj = JsonObject::new()
                    .u64("file", i as u64)
                    .str("path", &s.path)
                    .u64("spans", s.spans.len() as u64)
                    .u64("scalar_metrics", s.counters);
                // Capture-pipeline accounting rides along so JSON
                // consumers can detect lossy or sampled traces.
                if let Some(p) = &s.pipeline {
                    obj = obj
                        .u64("enqueued_events", p.enqueued)
                        .u64("dropped_events", p.dropped)
                        .u64("sample", p.sample)
                        .bool("lossy", p.dropped > 0);
                }
                obj.finish()
            })
            .collect(),
    ));
    out.push(']');

    out.push_str(",\"spans\":[");
    let mut span_objs = Vec::new();
    for (i, source) in sources.iter().enumerate() {
        for row in &source.spans {
            let mut obj = JsonObject::new()
                .u64("file", i as u64)
                .str("path", &row.path)
                .u64("count", row.count)
                .f64("total_ms", row.total_ms)
                .f64("max_ms", row.max_ms);
            if let Some((p50, p90, p99)) = row.percentiles {
                obj = obj.f64("p50_ms", p50).f64("p90_ms", p90).f64("p99_ms", p99);
            }
            span_objs.push(obj.finish());
        }
    }
    out.push_str(&join(span_objs));
    out.push(']');

    out.push_str(",\"events\":[");
    let mut event_objs = Vec::new();
    for (i, source) in sources.iter().enumerate() {
        for group in &source.groups {
            let e = &group.events;
            if e.batches + e.assigned + e.completed + e.failed == 0 {
                continue;
            }
            let mut obj = JsonObject::new()
                .u64("file", i as u64)
                .str("policy", &group.policy)
                .u64("batches", e.batches)
                .u64("requests", e.requests)
                .u64("stalled", e.stalled)
                .u64("assigned", e.assigned)
                .u64("completed", e.completed)
                .u64("failed", e.failed);
            // Fault-layer counts appear only when recorded, keeping
            // reliable reports identical to earlier builds.
            if e.retried + e.worker_down > 0 {
                obj = obj
                    .u64("retried", e.retried)
                    .u64("worker_down", e.worker_down);
            }
            event_objs.push(obj.finish());
        }
    }
    out.push_str(&join(event_objs));
    out.push(']');

    out.push_str(",\"telemetry\":[");
    let mut ts_objs = Vec::new();
    for (i, source) in sources.iter().enumerate() {
        for group in &source.groups {
            for t in &group.series {
                ts_objs.push(
                    JsonObject::new()
                        .u64("file", i as u64)
                        .str("policy", &group.policy)
                        .str("series", &t.series)
                        .u64("pushed", t.pushed)
                        .f64("peak", t.peak)
                        .f64("peak_t", t.peak_t)
                        .f64("mean", t.mean)
                        .f64("last_t", t.last_t)
                        .f64("last_v", t.last_v)
                        .pairs("samples", &t.samples)
                        .finish(),
                );
            }
        }
    }
    out.push_str(&join(ts_objs));
    out.push(']');

    out.push_str(",\"latencies\":[");
    let mut hist_objs = Vec::new();
    for (i, source) in sources.iter().enumerate() {
        let hist_obj = |policy: &str, h: &HistRecord| {
            JsonObject::new()
                .u64("file", i as u64)
                .str("policy", policy)
                .str("name", &h.name)
                .u64("count", h.count)
                .f64("mean", h.mean)
                .u64("p50", h.p50)
                .u64("p90", h.p90)
                .u64("p99", h.p99)
                .u64("max", h.max)
                .finish()
        };
        for group in &source.groups {
            for h in &group.hists {
                hist_objs.push(hist_obj(&group.policy, h));
            }
        }
        for h in &source.registry_hists {
            hist_objs.push(hist_obj("-", h));
        }
    }
    out.push_str(&join(hist_objs));
    out.push(']');

    if let Some(c) = comparison {
        out.push_str(",\"comparison\":[");
        out.push_str(&join(
            c.rows
                .iter()
                .map(|row| {
                    let mut obj = JsonObject::new()
                        .str("metric", row.metric)
                        .f64("a", row.a)
                        .f64("b", row.b);
                    if row.b != 0.0 {
                        obj = obj.f64("ratio", row.a / row.b);
                    }
                    obj = obj.str("a_policy", &c.a_name).str("b_policy", &c.b_name);
                    obj.finish()
                })
                .collect(),
        ));
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_obs::json::parse;

    fn trace_text() -> String {
        [
            r#"{"type":"meta","v":2,"command":"simulate","detail":"workload=w seed=1"}"#,
            r#"{"type":"meta","v":2,"command":"trace","detail":"policy=prio seed=1"}"#,
            r#"{"type":"batch_arrived","v":2,"time":0,"size":2,"assigned":2,"stalled":false}"#,
            r#"{"type":"job_assigned","v":2,"time":0,"job":0,"completes_at":1}"#,
            r#"{"type":"job_completed","v":2,"time":1,"job":0}"#,
            r#"{"type":"ts","v":2,"policy":"prio","series":"eligible_pool","pushed":2,"peak":3,"peak_t":0,"mean":2.5,"last_t":1,"last_v":2,"samples":[[0,3],[1,2]]}"#,
            r#"{"type":"ts","v":2,"policy":"prio","series":"utilization","pushed":2,"peak":1,"peak_t":1,"mean":0.75,"last_t":1,"last_v":1,"samples":[[0,0.5],[1,1]]}"#,
            r#"{"type":"hist","v":2,"policy":"prio","name":"job_wait_milli","count":2,"mean":250,"p50":0,"p90":500,"p99":500,"max":500}"#,
            r#"{"type":"meta","v":2,"command":"trace","detail":"policy=fifo seed=1"}"#,
            r#"{"type":"job_failed","v":2,"time":0.5,"job":1}"#,
            r#"{"type":"ts","v":2,"policy":"fifo","series":"eligible_pool","pushed":2,"peak":2,"peak_t":0,"mean":2,"last_t":2,"last_v":2,"samples":[[0,2],[2,2]]}"#,
            r#"{"type":"ts","v":2,"policy":"fifo","series":"utilization","pushed":2,"peak":0.5,"peak_t":2,"mean":0.5,"last_t":2,"last_v":0.5,"samples":[[0,0.5],[2,0.5]]}"#,
            r#"{"type":"hist","v":2,"policy":"fifo","name":"job_wait_milli","count":2,"mean":750,"p50":500,"p90":1000,"p99":1000,"max":1000}"#,
            r#"{"type":"span","v":2,"path":"prio/decompose","count":1,"total_ms":1.5,"max_ms":1.5,"p50_ms":1.5,"p90_ms":1.5,"p99_ms":1.5}"#,
            r#"{"type":"counter","v":2,"name":"sim.runs","value":1}"#,
            r#"{"type":"hist","v":2,"name":"pipeline.ns","count":1,"mean":10,"p50":10,"p90":10,"p99":10,"max":10}"#,
        ]
        .join("\n")
    }

    fn load(text: &str) -> Source {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "prio_report_test_{}_{:p}.jsonl",
            std::process::id(),
            text
        ));
        std::fs::write(&path, text).unwrap();
        let source = Source::load(path.to_str().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        source
    }

    #[test]
    fn parses_policies_events_and_telemetry() {
        let source = load(&trace_text());
        assert_eq!(source.spans.len(), 1);
        assert_eq!(source.counters, 1);
        assert_eq!(source.registry_hists.len(), 1);
        assert_eq!(source.groups.len(), 2);
        let prio = &source.groups[0];
        assert_eq!(prio.policy, "prio");
        assert_eq!(prio.events.batches, 1);
        assert_eq!(prio.events.assigned, 1);
        assert_eq!(prio.events.completed, 1);
        assert_eq!(prio.digest("eligible_pool").unwrap().peak, 3.0);
        let fifo = &source.groups[1];
        assert_eq!(fifo.events.failed, 1, "events attribute to the open policy");
        assert_eq!(fifo.hist("job_wait_milli").unwrap().max, 1000);
    }

    #[test]
    fn text_report_carries_percentiles_digests_and_comparison() {
        let source = load(&trace_text());
        let sources = vec![source];
        let c = comparison(&sources);
        let text = render_text(&sources, &c);
        assert!(text.contains("p99_ms"), "{text}");
        assert!(text.contains("prio/decompose"), "{text}");
        assert!(text.contains("eligible_pool"), "{text}");
        assert!(text.contains("prio vs fifo"), "{text}");
        assert!(text.contains("makespan"), "{text}");
    }

    #[test]
    fn json_report_is_valid_and_complete() {
        let source = load(&trace_text());
        let sources = vec![source];
        let c = comparison(&sources);
        let doc = parse(&render_json(&sources, &c)).unwrap();
        assert_eq!(doc.get("type").and_then(JsonValue::as_str), Some("report"));
        assert_eq!(
            doc.get("v").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION)
        );
        match doc.get("telemetry") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 4),
            other => panic!("expected telemetry array, got {other:?}"),
        }
        match doc.get("comparison") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items.len(), 7);
                let makespan = &items[0];
                assert_eq!(
                    makespan.get("metric").and_then(JsonValue::as_str),
                    Some("makespan")
                );
                assert_eq!(makespan.get("ratio").and_then(JsonValue::as_f64), Some(0.5));
            }
            other => panic!("expected comparison array, got {other:?}"),
        }
    }

    fn faulty_trace_text() -> String {
        [
            r#"{"type":"meta","v":2,"command":"trace","detail":"policy=prio seed=1"}"#,
            r#"{"type":"job_assigned","v":2,"time":0,"job":0,"completes_at":1}"#,
            r#"{"type":"job_failed","v":2,"time":0.5,"job":0}"#,
            r#"{"type":"job_retried","v":2,"time":0.5,"job":0,"attempt":2,"delay":0}"#,
            r#"{"type":"worker_down","v":2,"time":0.7,"lost":1}"#,
            r#"{"type":"worker_up","v":2,"time":0.9}"#,
            r#"{"type":"job_completed","v":2,"time":1.5,"job":0}"#,
            r#"{"type":"ts","v":2,"policy":"prio","series":"eligible_pool","pushed":2,"peak":1,"peak_t":0,"mean":1,"last_t":1.5,"last_v":0,"samples":[[0,1],[1.5,0]]}"#,
            r#"{"type":"hist","v":2,"policy":"prio","name":"job_attempts","count":2,"mean":2,"p50":2,"p90":2,"p99":2,"max":2}"#,
            r#"{"type":"hist","v":2,"policy":"prio","name":"wasted_work_milli","count":1,"mean":500,"p50":500,"p90":500,"p99":500,"max":500}"#,
            r#"{"type":"meta","v":2,"command":"trace","detail":"policy=fifo seed=1"}"#,
            r#"{"type":"job_assigned","v":2,"time":0,"job":0,"completes_at":1}"#,
            r#"{"type":"job_completed","v":2,"time":1,"job":0}"#,
            r#"{"type":"ts","v":2,"policy":"fifo","series":"eligible_pool","pushed":2,"peak":1,"peak_t":0,"mean":1,"last_t":1,"last_v":0,"samples":[[0,1],[1,0]]}"#,
        ]
        .join("\n")
    }

    #[test]
    fn fault_records_extend_events_and_comparison() {
        let source = load(&faulty_trace_text());
        let prio = &source.groups[0];
        assert_eq!(prio.events.retried, 1);
        assert_eq!(prio.events.worker_down, 1);
        assert_eq!(prio.events.failed, 1);
        let sources = vec![source];
        let c = comparison(&sources).expect("two policies present");
        assert_eq!(c.rows.len(), 9, "fault metrics join the comparison");
        let wasted = c
            .rows
            .iter()
            .find(|r| r.metric == "wasted_work_mean_milli")
            .expect("wasted-work row");
        assert_eq!(wasted.a, 500.0);
        assert_eq!(wasted.b, 0.0);
        let text = render_text(&sources, &comparison(&sources));
        assert!(text.contains("retried"), "{text}");
        assert!(text.contains("churn"), "{text}");
        assert!(text.contains("job_attempts_total"), "{text}");
    }

    #[test]
    fn reliable_traces_render_without_fault_columns() {
        let source = load(&trace_text());
        let sources = vec![source];
        let text = render_text(&sources, &comparison(&sources));
        assert!(!text.contains("retried"), "{text}");
        assert!(!text.contains("wasted_work"), "{text}");
        let json = render_json(&sources, &comparison(&sources));
        assert!(!json.contains("retried"), "{json}");
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let line = format!(
            "{{\"type\":\"ts\",\"v\":{},\"policy\":\"prio\",\"series\":\"x\"}}",
            SCHEMA_VERSION + 1
        );
        let dir = std::env::temp_dir();
        let path = dir.join(format!("prio_report_future_{}.jsonl", std::process::id()));
        std::fs::write(&path, line).unwrap();
        let err = Source::load(path.to_str().unwrap()).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn mixed_schema_versions_are_rejected_not_half_parsed() {
        let text = concat!(
            "{\"type\":\"ts\",\"v\":2,\"policy\":\"prio\",\"series\":\"x\"}\n",
            "{\"type\":\"ts\",\"v\":3,\"policy\":\"prio\",\"series\":\"y\"}\n",
        );
        let dir = std::env::temp_dir();
        let path = dir.join(format!("prio_report_mixed_{}.jsonl", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let err = Source::load(path.to_str().unwrap()).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("mixed"), "{err}");
        assert_eq!(err.exit_code(), 1, "input error, not usage");
    }

    #[test]
    fn lossy_pipeline_meta_raises_a_visible_warning() {
        let text = [
            r#"{"type":"meta","v":3,"command":"trace","detail":"policy=prio seed=1"}"#,
            r#"{"type":"job_completed","v":3,"time":1,"job":0}"#,
            r#"{"type":"meta","v":3,"command":"trace_pipeline","detail":"drop accounting","enqueued":90,"written":90,"dropped":10,"sample":1}"#,
        ]
        .join("\n");
        let source = load(&text);
        let p = source.pipeline.expect("pipeline meta parsed");
        assert_eq!(p.dropped, 10);
        assert_eq!(p.sample, 1);
        let sources = vec![source];
        let rendered = render_text(&sources, &None);
        assert!(
            rendered.contains("WARNING: lossy trace — 10 of 100 events dropped"),
            "{rendered}"
        );
        let json = parse(&render_json(&sources, &None)).unwrap();
        let Some(JsonValue::Arr(srcs)) = json.get("sources") else {
            panic!("sources array");
        };
        assert_eq!(
            srcs[0].get("dropped_events").and_then(JsonValue::as_u64),
            Some(10)
        );
        assert_eq!(
            srcs[0].get("lossy").and_then(JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn sampled_pipeline_meta_is_noted_and_lossless_traces_stay_quiet() {
        let sampled = [
            r#"{"type":"meta","v":3,"command":"trace_pipeline","detail":"drop accounting","enqueued":50,"written":50,"dropped":0,"sample":8}"#,
        ]
        .join("\n");
        let sources = vec![load(&sampled)];
        let rendered = render_text(&sources, &None);
        assert!(rendered.contains("sampled trace (~1/8"), "{rendered}");
        assert!(!rendered.contains("WARNING"), "{rendered}");

        let clean = load(&trace_text());
        assert!(clean.pipeline.is_none());
        let rendered = render_text(&[clean], &None);
        assert!(!rendered.contains("WARNING"), "{rendered}");
        assert!(!rendered.contains("sampled"), "{rendered}");
    }

    #[test]
    fn comparison_needs_exactly_two_policies() {
        let one = r#"{"type":"ts","v":2,"policy":"prio","series":"eligible_pool","pushed":1,"peak":1,"peak_t":0,"mean":1,"last_t":1,"last_v":1,"samples":[[0,1]]}"#;
        let sources = vec![load(one)];
        assert!(comparison(&sources).is_none());
    }

    #[test]
    fn sparkline_is_deterministic_and_bounded() {
        let samples: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i % 10) as f64)).collect();
        let line = sparkline(&samples, 24);
        assert_eq!(line.chars().count(), 24);
        assert_eq!(line, sparkline(&samples, 24));
        assert_eq!(sparkline(&[], 24), "");
        assert_eq!(sparkline(&[(0.0, 5.0)], 24).chars().count(), 1);
    }
}
