//! `prio serve` — run the prioritization daemon.
//!
//! ```text
//! prio serve [--listen ADDR | --stdio] [--serve-threads N] [--queue-cap N]
//!            [--cache-bytes N] [--max-request-bytes N] [--format F]
//! ```
//!
//! Speaks the line-delimited JSON protocol of `prio_serve::protocol`: one
//! request per line, one id-matched response line per request. `--listen`
//! (default `127.0.0.1:7077`; use port `0` for an ephemeral port) serves
//! TCP connections until a `shutdown` verb arrives; `--stdio` serves a
//! single session over stdin/stdout and exits at EOF. `--format` sets the
//! default input format for requests that name none (`auto` = content
//! detection). Combine with the global `--metrics-out F` to write a
//! Prometheus snapshot — including the `serve.request.micros` latency
//! histogram and the `serve.queue.shed` counter — when the daemon exits.

use crate::args::Args;
use crate::error::CliError;
use prio_serve::{serve_stdio, ServeConfig, ServeStats, Server};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if !args.positional.is_empty() {
        return Err(CliError::usage("serve takes no positional arguments"));
    }
    if args.has("stdio") && args.get("listen").is_some() {
        return Err(CliError::usage(
            "--stdio and --listen are mutually exclusive",
        ));
    }
    let default = ServeConfig::default();
    let config = ServeConfig {
        threads: args.get_parsed("serve-threads", default.threads)?,
        queue_capacity: args.get_parsed("queue-cap", default.queue_capacity)?,
        cache_bytes: args.get_parsed("cache-bytes", default.cache_bytes)?,
        max_request_bytes: args.get_parsed("max-request-bytes", default.max_request_bytes)?,
        default_format: match args.get("format") {
            None => None,
            Some(name) if name.eq_ignore_ascii_case("auto") => None,
            Some(name) => {
                // Fail at startup, not per request, on a bad flag value.
                prio_dagman::registry().by_name(name).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown --format {name:?} (auto|dagman|json|edges)"
                    ))
                })?;
                Some(name.to_string())
            }
        },
        worker_delay: std::time::Duration::ZERO,
    };
    if config.threads == 0 {
        return Err(CliError::usage("--serve-threads must be at least 1"));
    }

    let stats = if args.has("stdio") {
        serve_stdio(config)
    } else {
        let addr = args.get("listen").unwrap_or("127.0.0.1:7077");
        let server = Server::bind(addr, config)
            .map_err(|e| CliError::input(format!("cannot listen on {addr}: {e}")))?;
        // The resolved address matters with port 0; scripts scrape it.
        eprintln!("prio: serving on {}", server.local_addr());
        server.wait()
    };
    print_summary(&stats);
    Ok(())
}

fn print_summary(s: &ServeStats) {
    eprintln!(
        "prio: serve exiting: {} received, {} ok, {} errors, {} shed, \
         cache {} hits / {} misses ({} entries, {} bytes)",
        s.received,
        s.ok,
        s.errors,
        s.shed,
        s.cache.hits,
        s.cache.misses,
        s.cache.entries,
        s.cache.bytes
    );
}
