//! `prio trace` — streaming analysis of job-lifecycle traces.
//!
//! Works over the schema-v3 lifecycle events (`job_submitted →
//! job_eligible → job_assigned → [job_failed/job_retried]* →
//! job_completed`) that `prio simulate --trace-out` records, read through
//! the bounded-memory [`prio_obs::stream`] reader — per-job state is
//! `O(jobs)`, never `O(trace bytes)`, so 10^6-job traces analyze without
//! slurping. A path of `-` reads stdin.
//!
//! Four analyses:
//!
//! * `timeline` — per-job lifecycle table (submitted, eligible, started,
//!   worker, attempts, completed, wait, service) per policy segment;
//! * `critical-path` — the *realized* critical path: walk back from the
//!   last completion through the parent whose completion made each job
//!   eligible, reporting per-arc slack (the queue wait between the
//!   parent's completion and the child's start);
//! * `curve` — the eligibility curve `E(t)` of each policy, written as a
//!   `results/fig4_*.tsv`-format table (`t`, `t_normalized`, `diff`,
//!   `diff_normalized`) of the per-time difference between the trace's
//!   two policy segments. Each reconstructed curve is verified against
//!   the eligibility series the simulator itself recorded (`ts`
//!   samples); a mismatch means the trace is corrupt and is an error;
//! * `diff` — per-job start/finish deltas between two traces plus
//!   makespan attribution (which job finished last on each side).
//!
//! The eligibility reconstruction invariant: `E` grows by one on
//! `job_eligible` and `job_retried`, shrinks by one on `job_completed`
//! and `job_failed`, exactly mirroring the engine's
//! `queue.len() + in_flight` sampled after each processed event.

use crate::args::Args;
use crate::error::CliError;
use prio_bench::report::Table;
use prio_obs::json::{JsonObject, JsonValue, SCHEMA_VERSION};
use prio_obs::stream;
use prio_sim::trace::TraceEvent;
use prio_sim::trace_json::event_from_value;

const USAGE: &str = "usage: prio trace <timeline|critical-path|curve|diff> ...\n\
    prio trace timeline      <trace.jsonl | -> [--json]\n\
    prio trace critical-path <trace.jsonl | -> [--json]\n\
    prio trace curve         <trace.jsonl | -> --out <file.tsv>\n\
    prio trace diff          <a.jsonl> <b.jsonl> [--policy-a P] [--policy-b P] [--json]";

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(sub) = argv.first() else {
        return Err(CliError::usage(USAGE));
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "timeline" => timeline(rest),
        "critical-path" => critical_path(rest),
        "curve" => curve(rest),
        "diff" => diff(rest),
        other => Err(CliError::usage(format!(
            "unknown trace subcommand {other:?}\n{USAGE}"
        ))),
    }
}

/// One job's lifecycle, folded from its events.
#[derive(Debug, Clone, Default)]
struct JobRow {
    submitted: Option<f64>,
    /// First time the job became eligible.
    eligible: Option<f64>,
    /// First assignment time.
    started: Option<f64>,
    /// Most recent assignment time (differs from `started` on retries).
    last_started: Option<f64>,
    /// Serving worker of the most recent assignment.
    worker: u64,
    /// Assignments (attempts started).
    attempts: u64,
    retries: u64,
    failures: u64,
    completed: Option<f64>,
}

impl JobRow {
    /// Queue wait of the first attempt.
    fn wait(&self) -> Option<f64> {
        Some(self.started? - self.eligible?)
    }

    /// Service time of the final (successful) attempt.
    fn service(&self) -> Option<f64> {
        Some(self.completed? - self.last_started?)
    }

    fn status(&self) -> &'static str {
        if self.completed.is_some() {
            "completed"
        } else if self.failures > 0 {
            "failed"
        } else if self.eligible.is_none() {
            "unreachable"
        } else {
            "pending"
        }
    }
}

/// One policy segment of a trace: everything between consecutive
/// `meta command=trace policy=…` lines.
#[derive(Debug)]
struct Segment {
    policy: String,
    jobs: Vec<JobRow>,
    /// Eligibility-curve change points: `(time, E after the change)`,
    /// in event order (times non-decreasing).
    curve: Vec<(f64, i64)>,
    /// The simulator's own recorded `eligible_pool` samples, for
    /// verifying the reconstruction.
    samples: Vec<(f64, f64)>,
    events: u64,
}

impl Segment {
    fn new(policy: &str) -> Segment {
        Segment {
            policy: policy.to_string(),
            jobs: Vec::new(),
            curve: Vec::new(),
            samples: Vec::new(),
            events: 0,
        }
    }

    fn job(&mut self, id: usize) -> &mut JobRow {
        if self.jobs.len() <= id {
            self.jobs.resize(id + 1, JobRow::default());
        }
        &mut self.jobs[id]
    }

    fn eligible_now(&self) -> i64 {
        self.curve.last().map_or(0, |&(_, e)| e)
    }

    fn apply(&mut self, event: &TraceEvent) {
        self.events += 1;
        match *event {
            TraceEvent::JobSubmitted { time, job } => {
                self.job(job.index()).submitted.get_or_insert(time);
            }
            TraceEvent::JobEligible { time, job } => {
                self.job(job.index()).eligible.get_or_insert(time);
                let e = self.eligible_now() + 1;
                self.curve.push((time, e));
            }
            TraceEvent::JobAssigned {
                time, job, worker, ..
            } => {
                let row = self.job(job.index());
                row.started.get_or_insert(time);
                row.last_started = Some(time);
                row.worker = worker;
                row.attempts += 1;
            }
            TraceEvent::JobCompleted { time, job } => {
                self.job(job.index()).completed = Some(time);
                let e = self.eligible_now() - 1;
                self.curve.push((time, e));
            }
            TraceEvent::JobFailed { time, job } => {
                self.job(job.index()).failures += 1;
                let e = self.eligible_now() - 1;
                self.curve.push((time, e));
            }
            TraceEvent::JobRetried { time, job, .. } => {
                self.job(job.index()).retries += 1;
                let e = self.eligible_now() + 1;
                self.curve.push((time, e));
            }
            TraceEvent::BatchArrived { .. }
            | TraceEvent::WorkerDown { .. }
            | TraceEvent::WorkerUp { .. } => {}
        }
    }

    /// Last completion time (the realized makespan of the segment).
    fn makespan(&self) -> f64 {
        self.jobs
            .iter()
            .filter_map(|j| j.completed)
            .fold(0.0, f64::max)
    }

    /// Checks every simulator-recorded `eligible_pool` sample against the
    /// reconstructed curve: the sampled value must be an `E` value the
    /// curve actually held at that time (events at one instant can pass
    /// through several values). Returns how many samples were checked.
    fn verify_curve(&self) -> Result<usize, String> {
        for &(t, v) in &self.samples {
            // Candidates: every E attained by a change at exactly `t`,
            // plus the value carried in from the last change before `t`
            // (0 before any change).
            let lo = self.curve.partition_point(|&(ct, _)| ct < t);
            let hi = self.curve.partition_point(|&(ct, _)| ct <= t);
            let carried = if lo == 0 { 0 } else { self.curve[lo - 1].1 };
            let matched =
                v == carried as f64 || self.curve[lo..hi].iter().any(|&(_, e)| v == e as f64);
            if !matched {
                return Err(format!(
                    "policy {}: recorded eligible_pool sample ({t}, {v}) does not match \
                     the curve reconstructed from lifecycle events",
                    self.policy
                ));
            }
        }
        Ok(self.samples.len())
    }

    /// The curve's value at time `t` (step function; 0 before the first
    /// change).
    fn curve_at(&self, t: f64) -> i64 {
        let hi = self.curve.partition_point(|&(ct, _)| ct <= t);
        if hi == 0 {
            0
        } else {
            self.curve[hi - 1].1
        }
    }
}

/// Capture-pipeline accounting read from the trailing `trace_pipeline`
/// meta record. Traces from older builds (or written directly by the
/// sink) carry no such record and default to complete/full-rate.
#[derive(Debug, Clone, Copy)]
struct TraceHealth {
    /// Events dropped at capture (ring overflow): the lifecycle record
    /// is incomplete and reconstructions are unsound.
    dropped: u64,
    /// Sampling modulus (1 = every job's lifecycle present).
    sample: u64,
}

impl Default for TraceHealth {
    fn default() -> TraceHealth {
        TraceHealth {
            dropped: 0,
            sample: 1,
        }
    }
}

/// Prints the loud stderr warnings every analysis owes the user when the
/// trace was captured lossily or sampled.
fn warn_health(path: &str, health: &TraceHealth) {
    if health.dropped > 0 {
        eprintln!(
            "prio: WARNING: {path}: lossy trace — {} events were dropped at capture \
             (ring overflow); lifecycle analyses underestimate the run",
            health.dropped
        );
    }
    if health.sample > 1 {
        eprintln!(
            "prio: note: {path}: sampled trace — lifecycle events cover ~1/{} of jobs",
            health.sample
        );
    }
}

/// Streams one trace file into its policy segments. Events before the
/// first `policy=` meta line land in a `"-"` segment.
fn load_segments(path: &str) -> Result<(Vec<Segment>, TraceHealth), CliError> {
    let reader = stream::open(path).map_err(|e| CliError::input(format!("{path}: {e}")))?;
    let mut segments: Vec<Segment> = Vec::new();
    let mut health = TraceHealth::default();
    for record in reader {
        let record = record.map_err(|e| CliError::input(format!("{path}: {e}")))?;
        let v = &record.value;
        let str_of = |key: &str| v.get(key).and_then(JsonValue::as_str).unwrap_or("");
        match record.kind.as_str() {
            "meta" => {
                if str_of("command") == "trace" {
                    if let Some(policy) = str_of("detail")
                        .split_whitespace()
                        .find_map(|kv| kv.strip_prefix("policy="))
                    {
                        segments.push(Segment::new(policy));
                    }
                } else if str_of("command") == "trace_pipeline" {
                    health.dropped = v.get("dropped").and_then(JsonValue::as_u64).unwrap_or(0);
                    health.sample = v
                        .get("sample")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(1)
                        .max(1);
                }
            }
            "ts" => {
                if str_of("series") == "eligible_pool" {
                    let policy = str_of("policy").to_string();
                    if let Some(seg) = segments.iter_mut().rev().find(|s| s.policy == policy) {
                        if let Some(JsonValue::Arr(items)) = v.get("samples") {
                            for pair in items {
                                if let JsonValue::Arr(tv) = pair {
                                    if let (Some(t), Some(val)) = (
                                        tv.first().and_then(JsonValue::as_f64),
                                        tv.get(1).and_then(JsonValue::as_f64),
                                    ) {
                                        seg.samples.push((t, val));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => {
                let event = event_from_value(v).map_err(|e| {
                    CliError::input(format!("{path}: line {}: {e}", record.line_no))
                })?;
                if let Some(event) = event {
                    if segments.is_empty() {
                        segments.push(Segment::new("-"));
                    }
                    segments.last_mut().expect("non-empty").apply(&event);
                }
            }
        }
    }
    if segments.is_empty() {
        return Err(CliError::input(format!(
            "{path}: no trace events found (was this written with --trace-out?)"
        )));
    }
    Ok((segments, health))
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

fn opt(v: Option<f64>) -> String {
    v.map(fmt).unwrap_or_else(|| "-".to_string())
}

// ---------------------------------------------------------------- timeline

fn timeline(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let path = args.one_positional()?;
    let (segments, health) = load_segments(path)?;
    warn_health(path, &health);
    if args.has("json") {
        println!("{}", timeline_json(path, &segments));
    } else {
        print!("{}", timeline_text(path, &segments));
    }
    Ok(())
}

fn timeline_text(path: &str, segments: &[Segment]) -> String {
    let mut out = format!("prio trace timeline — {path}, schema v{SCHEMA_VERSION}\n");
    for seg in segments {
        out.push_str(&format!(
            "\npolicy {} ({} jobs, makespan {})\n",
            seg.policy,
            seg.jobs.len(),
            fmt(seg.makespan())
        ));
        let mut table = Table::new(&[
            "job",
            "submitted",
            "eligible",
            "started",
            "worker",
            "attempts",
            "completed",
            "wait",
            "service",
            "status",
        ]);
        for (id, job) in seg.jobs.iter().enumerate() {
            table.row(vec![
                id.to_string(),
                opt(job.submitted),
                opt(job.eligible),
                opt(job.started),
                job.worker.to_string(),
                job.attempts.to_string(),
                opt(job.completed),
                opt(job.wait()),
                opt(job.service()),
                job.status().to_string(),
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

fn job_json(id: usize, job: &JobRow) -> String {
    let mut obj = JsonObject::new().u64("job", id as u64);
    let add = |obj: JsonObject, key: &str, v: Option<f64>| match v {
        Some(v) => obj.f64(key, v),
        None => obj,
    };
    obj = add(obj, "submitted", job.submitted);
    obj = add(obj, "eligible", job.eligible);
    obj = add(obj, "started", job.started);
    obj = obj.u64("worker", job.worker).u64("attempts", job.attempts);
    if job.retries > 0 {
        obj = obj.u64("retries", job.retries);
    }
    if job.failures > 0 {
        obj = obj.u64("failures", job.failures);
    }
    obj = add(obj, "completed", job.completed);
    obj = add(obj, "wait", job.wait());
    obj = add(obj, "service", job.service());
    obj.str("status", job.status()).finish()
}

fn timeline_json(path: &str, segments: &[Segment]) -> String {
    let mut out = format!("{{\"type\":\"trace_timeline\",\"v\":{SCHEMA_VERSION}");
    out.push_str(&format!(",\"path\":{}", quoted(path)));
    out.push_str(",\"segments\":[");
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"policy\":{},\"jobs\":[", quoted(&seg.policy)));
        let rows: Vec<String> = seg
            .jobs
            .iter()
            .enumerate()
            .map(|(id, job)| job_json(id, job))
            .collect();
        out.push_str(&rows.join(","));
        out.push_str(&format!("],\"makespan\":{}}}", seg.makespan()));
    }
    out.push_str("]}");
    out
}

/// JSON string literal (delegates escaping to the object writer).
fn quoted(s: &str) -> String {
    let obj = JsonObject::new().str("k", s).finish();
    // {"k":"…"} → take everything after the first colon, minus the brace.
    obj[5..obj.len() - 1].to_string()
}

// ----------------------------------------------------------- critical path

/// One arc of the realized critical path.
struct PathStep {
    job: usize,
    eligible: f64,
    started: Option<f64>,
    completed: f64,
    /// Queue wait between becoming eligible (= the critical parent's
    /// completion) and starting — the arc's slack.
    slack: Option<f64>,
}

/// Walks the realized critical path of one segment backward from the
/// last completion: each job's critical parent is the job whose
/// completion time equals its eligibility time (ties broken toward the
/// smallest job id, matching the engine's deterministic event order).
fn realized_path(seg: &Segment) -> Vec<PathStep> {
    // Completions sorted by (time, job) for the backward lookup.
    let mut completions: Vec<(f64, usize)> = seg
        .jobs
        .iter()
        .enumerate()
        .filter_map(|(id, j)| j.completed.map(|t| (t, id)))
        .collect();
    completions.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut path = Vec::new();
    let Some(&(_, mut job)) = completions.last() else {
        return path;
    };
    loop {
        let row = &seg.jobs[job];
        let eligible = row.eligible.unwrap_or(0.0);
        path.push(PathStep {
            job,
            eligible,
            started: row.started,
            completed: row.completed.unwrap_or(eligible),
            slack: row.wait(),
        });
        // The critical parent completed exactly when this job became
        // eligible. Sources (eligible at 0.0 with no such completion)
        // terminate the walk.
        let lo = completions.partition_point(|&(t, _)| t < eligible);
        match completions.get(lo) {
            Some(&(t, parent)) if t == eligible && parent != job => job = parent,
            _ => break,
        }
    }
    path.reverse();
    path
}

fn critical_path(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let path = args.one_positional()?;
    let (segments, health) = load_segments(path)?;
    warn_health(path, &health);
    // The backward walk links each job's eligibility to the completion
    // that caused it; with only 1/N of lifecycles present the chain has
    // holes, so a sampled (or lossy) trace cannot yield a realized path.
    if health.sample > 1 {
        return Err(CliError::input(format!(
            "{path}: sampled trace (1/{} of jobs): the realized critical path needs \
             every job's lifecycle — rerun --trace-out without --trace-sample",
            health.sample
        )));
    }
    if health.dropped > 0 {
        return Err(CliError::input(format!(
            "{path}: lossy trace ({} events dropped at capture): the realized critical \
             path needs every event — rerun with a larger --trace-ring",
            health.dropped
        )));
    }
    if args.has("json") {
        let mut out = format!("{{\"type\":\"trace_critical_path\",\"v\":{SCHEMA_VERSION}");
        out.push_str(&format!(",\"path\":{}", quoted(path)));
        out.push_str(",\"segments\":[");
        for (i, seg) in segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let steps: Vec<String> = realized_path(seg)
                .iter()
                .map(|s| {
                    let mut obj = JsonObject::new()
                        .u64("job", s.job as u64)
                        .f64("eligible", s.eligible);
                    if let Some(started) = s.started {
                        obj = obj.f64("started", started);
                    }
                    obj = obj.f64("completed", s.completed);
                    if let Some(slack) = s.slack {
                        obj = obj.f64("slack", slack);
                    }
                    obj.finish()
                })
                .collect();
            out.push_str(&format!(
                "{{\"policy\":{},\"makespan\":{},\"steps\":[{}]}}",
                quoted(&seg.policy),
                seg.makespan(),
                steps.join(",")
            ));
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        let mut out = format!("prio trace critical-path — {path}\n");
        for seg in &segments {
            let steps = realized_path(seg);
            let slack_total: f64 = steps.iter().filter_map(|s| s.slack).sum();
            out.push_str(&format!(
                "\npolicy {} (makespan {}, {} jobs on path, total slack {})\n",
                seg.policy,
                fmt(seg.makespan()),
                steps.len(),
                fmt(slack_total)
            ));
            let mut table = Table::new(&[
                "step",
                "job",
                "eligible",
                "started",
                "completed",
                "slack",
                "service",
            ]);
            for (i, s) in steps.iter().enumerate() {
                table.row(vec![
                    i.to_string(),
                    s.job.to_string(),
                    fmt(s.eligible),
                    opt(s.started),
                    fmt(s.completed),
                    opt(s.slack),
                    opt(s.started.map(|st| s.completed - st)),
                ]);
            }
            out.push_str(&table.render());
        }
        print!("{out}");
    }
    Ok(())
}

// -------------------------------------------------------------------- curve

fn curve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let path = args.one_positional()?;
    let out_path = args
        .get("out")
        .ok_or_else(|| CliError::usage("prio trace curve requires --out <file.tsv>"))?;
    let (segments, health) = load_segments(path)?;
    warn_health(path, &health);
    if health.dropped > 0 {
        return Err(CliError::input(format!(
            "{path}: lossy trace ({} events dropped at capture): the eligibility curve \
             cannot be reconstructed — rerun with a larger --trace-ring",
            health.dropped
        )));
    }
    let with_curves: Vec<&Segment> = segments.iter().filter(|s| !s.curve.is_empty()).collect();
    let [a, b] = with_curves.as_slice() else {
        return Err(CliError::input(format!(
            "{path}: curve needs exactly two policy segments (e.g. prio and fifo), found {}",
            with_curves.len()
        )));
    };
    // Verify each reconstruction against the simulator's own series
    // before trusting it: a divergence means a corrupt or truncated
    // trace, not a formatting nit. A sampled trace only carries 1/N of
    // the lifecycles, so its partial curve can never match the exact
    // telemetry — the check is skipped and the output is an estimate
    // scaled back up by N instead.
    let sampled = health.sample > 1;
    let mut checked = 0;
    if !sampled {
        for seg in [a, b] {
            checked += seg
                .verify_curve()
                .map_err(|e| CliError::input(format!("{path}: {e}")))?;
        }
    }
    // Under sampling both the per-time difference and the job count are
    // estimated from the kept subset: each kept job stands for N jobs.
    let n = if sampled {
        let kept = |s: &Segment| s.jobs.iter().filter(|j| j.submitted.is_some()).count();
        (kept(a).max(kept(b)).max(1) as u64 * health.sample) as usize
    } else {
        a.jobs.len().max(b.jobs.len()).max(1)
    };
    let scale = health.sample as i64;
    let mut times: Vec<f64> = a.curve.iter().chain(&b.curve).map(|&(t, _)| t).collect();
    times.sort_by(f64::total_cmp);
    times.dedup();
    let t_max = times.last().copied().unwrap_or(0.0).max(f64::MIN_POSITIVE);
    let mut tsv = Table::new(&["t", "t_normalized", "diff", "diff_normalized"]);
    for &t in &times {
        let diff = (a.curve_at(t) - b.curve_at(t)) * scale;
        tsv.row(vec![
            format!("{t:.6}"),
            format!("{:.6}", t / t_max),
            diff.to_string(),
            format!("{:.6}", diff as f64 / n as f64),
        ]);
    }
    std::fs::write(out_path, tsv.render_tsv())
        .map_err(|e| CliError::input(format!("{out_path}: {e}")))?;
    if sampled {
        eprintln!(
            "trace curve: wrote {out_path} ({} steps, E_{} - E_{}; sampled 1/{}: diffs are \
             estimates scaled by {}, exact verification skipped)",
            times.len(),
            a.policy,
            b.policy,
            health.sample,
            health.sample
        );
    } else {
        eprintln!(
            "trace curve: wrote {out_path} ({} steps, E_{} - E_{}, verified against {checked} \
             recorded samples)",
            times.len(),
            a.policy,
            b.policy
        );
    }
    Ok(())
}

// --------------------------------------------------------------------- diff

fn pick_segment<'a>(
    path: &str,
    segments: &'a [Segment],
    policy: Option<&str>,
) -> Result<&'a Segment, CliError> {
    match policy {
        Some(p) => segments.iter().find(|s| s.policy == p).ok_or_else(|| {
            let have: Vec<&str> = segments.iter().map(|s| s.policy.as_str()).collect();
            CliError::input(format!("{path}: no policy {p:?} (have: {have:?})"))
        }),
        None => Ok(&segments[0]),
    }
}

fn diff(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let [path_a, path_b] = args.positional.as_slice() else {
        return Err(CliError::usage(
            "expected two traces: prio trace diff <a.jsonl> <b.jsonl> \
             [--policy-a P] [--policy-b P] [--json]",
        ));
    };
    let (segments_a, health_a) = load_segments(path_a)?;
    let (segments_b, health_b) = load_segments(path_b)?;
    warn_health(path_a, &health_a);
    warn_health(path_b, &health_b);
    let a = pick_segment(path_a, &segments_a, args.get("policy-a"))?;
    let b = pick_segment(path_b, &segments_b, args.get("policy-b"))?;
    if a.jobs.len() != b.jobs.len() {
        return Err(CliError::input(format!(
            "traces disagree on job count: {} has {}, {} has {}",
            path_a,
            a.jobs.len(),
            path_b,
            b.jobs.len()
        )));
    }
    let last_finisher = |seg: &Segment| -> Option<usize> {
        seg.jobs
            .iter()
            .enumerate()
            .filter_map(|(id, j)| j.completed.map(|t| (t, id)))
            .max_by(|x, y| x.0.total_cmp(&y.0).then(y.1.cmp(&x.1)))
            .map(|(_, id)| id)
    };
    let (ms_a, ms_b) = (a.makespan(), b.makespan());
    if args.has("json") {
        let mut out = format!("{{\"type\":\"trace_diff\",\"v\":{SCHEMA_VERSION}");
        out.push_str(&format!(
            ",\"a\":{{\"path\":{},\"policy\":{},\"makespan\":{ms_a}}}",
            quoted(path_a),
            quoted(&a.policy)
        ));
        out.push_str(&format!(
            ",\"b\":{{\"path\":{},\"policy\":{},\"makespan\":{ms_b}}}",
            quoted(path_b),
            quoted(&b.policy)
        ));
        let mut attribution = JsonObject::new().f64("makespan_delta", ms_b - ms_a);
        if let Some(j) = last_finisher(a) {
            attribution = attribution.u64("last_job_a", j as u64);
        }
        if let Some(j) = last_finisher(b) {
            attribution = attribution.u64("last_job_b", j as u64);
        }
        out.push_str(&format!(",\"attribution\":{}", attribution.finish()));
        out.push_str(",\"jobs\":[");
        let rows: Vec<String> = a
            .jobs
            .iter()
            .zip(&b.jobs)
            .enumerate()
            .map(|(id, (ja, jb))| {
                let mut obj = JsonObject::new().u64("job", id as u64);
                let add = |obj: JsonObject, key: &str, va: Option<f64>, vb: Option<f64>| {
                    let obj = match va {
                        Some(v) => obj.f64(&format!("{key}_a"), v),
                        None => obj,
                    };
                    let obj = match vb {
                        Some(v) => obj.f64(&format!("{key}_b"), v),
                        None => obj,
                    };
                    match (va, vb) {
                        (Some(x), Some(y)) => obj.f64(&format!("{key}_delta"), y - x),
                        _ => obj,
                    }
                };
                obj = add(obj, "start", ja.started, jb.started);
                obj = add(obj, "finish", ja.completed, jb.completed);
                obj.finish()
            })
            .collect();
        out.push_str(&rows.join(","));
        out.push_str("]}");
        println!("{out}");
    } else {
        let mut out = format!(
            "prio trace diff — {} ({}) vs {} ({})\n",
            path_a, a.policy, path_b, b.policy
        );
        out.push_str(&format!(
            "makespan: {} vs {} (delta {})\n",
            fmt(ms_a),
            fmt(ms_b),
            fmt(ms_b - ms_a)
        ));
        if let (Some(ja), Some(jb)) = (last_finisher(a), last_finisher(b)) {
            out.push_str(&format!("last to finish: job {ja} (a) vs job {jb} (b)\n"));
        }
        let mut table = Table::new(&[
            "job", "start_a", "start_b", "d_start", "finish_a", "finish_b", "d_finish",
        ]);
        for (id, (ja, jb)) in a.jobs.iter().zip(&b.jobs).enumerate() {
            let delta = |x: Option<f64>, y: Option<f64>| match (x, y) {
                (Some(x), Some(y)) => fmt(y - x),
                _ => "-".to_string(),
            };
            table.row(vec![
                id.to_string(),
                opt(ja.started),
                opt(jb.started),
                delta(ja.started, jb.started),
                opt(ja.completed),
                opt(jb.completed),
                delta(ja.completed, jb.completed),
            ]);
        }
        out.push_str(&table.render());
        print!("{out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_obs::sink::JsonlSink;
    use prio_sim::model::GridModel;
    use prio_sim::policy::PolicySpec;
    use prio_sim::trace_json::{write_telemetry, write_trace};
    use std::path::PathBuf;

    /// Writes a real simulator trace (both policies) and returns its path.
    fn simulated_trace(name: &str) -> PathBuf {
        let dag = prio_graph::Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let model = GridModel::paper(0.3, 2.0);
        let path = std::env::temp_dir().join(format!(
            "prio_trace_test_{name}_{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::to_file(&path).unwrap();
        for policy in ["prio", "fifo"] {
            let spec = match policy {
                "prio" => PolicySpec::Oblivious(prio_core::fifo::fifo_schedule(&dag)),
                _ => PolicySpec::Fifo,
            };
            let out = prio_sim::engine::simulate_traced(&dag, &spec, &model, 3);
            sink.write_meta("trace", &format!("policy={policy} seed=3"))
                .unwrap();
            write_trace(&sink, out.trace.as_ref().unwrap()).unwrap();
            write_telemetry(&sink, policy, out.telemetry.as_ref().unwrap()).unwrap();
        }
        sink.flush().unwrap();
        path
    }

    #[test]
    fn segments_fold_lifecycles_and_verify_curves() {
        let path = simulated_trace("fold");
        let (segments, health) = load_segments(path.to_str().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(health.dropped, 0, "sink-written traces default to complete");
        assert_eq!(health.sample, 1);
        assert_eq!(segments.len(), 2);
        for seg in &segments {
            assert_eq!(seg.jobs.len(), 6);
            for (id, job) in seg.jobs.iter().enumerate() {
                assert_eq!(job.submitted, Some(0.0), "job {id}");
                assert!(job.eligible.is_some(), "job {id}");
                let started = job.started.expect("assigned");
                let completed = job.completed.expect("completed");
                assert!(job.eligible.unwrap() <= started);
                assert!(started <= completed);
                assert_eq!(job.status(), "completed");
                assert!(job.worker > 0, "v3 traces carry worker ids");
            }
            // Every recorded telemetry sample matches the reconstruction.
            let checked = seg.verify_curve().expect("curves agree");
            assert!(checked > 0, "telemetry samples present");
            // The run drains: E returns to 0.
            assert_eq!(seg.curve.last().unwrap().1, 0);
        }
    }

    #[test]
    fn realized_path_walks_back_through_parents() {
        let path = simulated_trace("cp");
        let (segments, _) = load_segments(path.to_str().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        for seg in &segments {
            let steps = realized_path(seg);
            assert!(!steps.is_empty());
            assert_eq!(
                steps.last().unwrap().completed,
                seg.makespan(),
                "path ends at the makespan"
            );
            assert_eq!(steps[0].eligible, 0.0, "path starts at a source");
            for w in steps.windows(2) {
                assert_eq!(
                    w[1].eligible, w[0].completed,
                    "each arc links a completion to the eligibility it caused"
                );
            }
        }
    }

    #[test]
    fn curve_verification_rejects_tampered_samples() {
        let path = simulated_trace("tamper");
        let (mut segments, _) = load_segments(path.to_str().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        let seg = &mut segments[0];
        seg.samples.push((0.0, 9999.0));
        assert!(seg.verify_curve().is_err());
    }

    #[test]
    fn diff_requires_matching_job_counts() {
        let a = simulated_trace("diff_a");
        // A different dag size to trip the job-count check.
        let dag = prio_graph::Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        let out = prio_sim::engine::simulate_traced(
            &dag,
            &PolicySpec::Fifo,
            &GridModel::paper(0.3, 2.0),
            3,
        );
        let b = std::env::temp_dir().join(format!(
            "prio_trace_test_diff_b_{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::to_file(&b).unwrap();
        sink.write_meta("trace", "policy=fifo seed=3").unwrap();
        write_trace(&sink, out.trace.as_ref().unwrap()).unwrap();
        sink.flush().unwrap();
        let argv: Vec<String> = [a.to_str().unwrap(), b.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = diff(&argv).unwrap_err();
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
        assert!(err.to_string().contains("job count"), "{err}");
    }

    #[test]
    fn quoted_escapes_json_strings() {
        assert_eq!(quoted("plain"), "\"plain\"");
        assert_eq!(quoted("a\"b"), "\"a\\\"b\"");
    }

    /// Appends a capture-pipeline accounting record to a trace file.
    fn append_pipeline_meta(path: &std::path::Path, dropped: u64, sample: u64) {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(path).unwrap();
        writeln!(
            file,
            "{{\"type\":\"meta\",\"v\":{SCHEMA_VERSION},\"command\":\"trace_pipeline\",\
             \"detail\":\"drop accounting\",\"enqueued\":100,\"written\":{},\
             \"dropped\":{dropped},\"sample\":{sample}}}",
            100 - dropped
        )
        .unwrap();
    }

    #[test]
    fn pipeline_meta_populates_trace_health() {
        let path = simulated_trace("health");
        append_pipeline_meta(&path, 7, 4);
        let (_, health) = load_segments(path.to_str().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(health.dropped, 7);
        assert_eq!(health.sample, 4);
    }

    #[test]
    fn critical_path_rejects_sampled_and_lossy_traces() {
        let sampled = simulated_trace("cp_sampled");
        append_pipeline_meta(&sampled, 0, 8);
        let argv = vec![sampled.to_str().unwrap().to_string()];
        let err = critical_path(&argv).unwrap_err();
        let _ = std::fs::remove_file(&sampled);
        assert!(err.to_string().contains("sampled"), "{err}");

        let lossy = simulated_trace("cp_lossy");
        append_pipeline_meta(&lossy, 3, 1);
        let argv = vec![lossy.to_str().unwrap().to_string()];
        let err = critical_path(&argv).unwrap_err();
        let _ = std::fs::remove_file(&lossy);
        assert!(err.to_string().contains("lossy"), "{err}");
    }

    /// Writes a hand-built two-segment trace whose eligibility curves
    /// genuinely differ (prio holds E=2 early, fifo E=1).
    fn divergent_trace(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "prio_trace_divergent_{name}_{}.jsonl",
            std::process::id()
        ));
        let lines = [
            r#"{"type":"meta","command":"trace","detail":"policy=prio seed=1"}"#,
            r#"{"type":"job_eligible","time":0,"job":0}"#,
            r#"{"type":"job_eligible","time":0,"job":1}"#,
            r#"{"type":"job_completed","time":2,"job":0}"#,
            r#"{"type":"job_completed","time":3,"job":1}"#,
            r#"{"type":"meta","command":"trace","detail":"policy=fifo seed=1"}"#,
            r#"{"type":"job_eligible","time":0,"job":0}"#,
            r#"{"type":"job_completed","time":2,"job":0}"#,
            r#"{"type":"job_eligible","time":2,"job":1}"#,
            r#"{"type":"job_completed","time":3,"job":1}"#,
        ];
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        path
    }

    #[test]
    fn curve_scales_sampled_estimates_and_skips_verification() {
        // The same trace full-rate and *tagged* sampled: verification
        // must be skipped on the sampled one (it would not generally
        // hold) and every diff scaled by the modulus.
        let full = divergent_trace("curve_full");
        let tagged = divergent_trace("curve_tagged");
        append_pipeline_meta(&tagged, 0, 4);
        let out_full =
            std::env::temp_dir().join(format!("prio_curve_full_{}.tsv", std::process::id()));
        let out_tagged =
            std::env::temp_dir().join(format!("prio_curve_tagged_{}.tsv", std::process::id()));
        let argv = |trace: &std::path::Path, out: &std::path::Path| {
            vec![
                trace.to_str().unwrap().to_string(),
                "--out".to_string(),
                out.to_str().unwrap().to_string(),
            ]
        };
        curve(&argv(&full, &out_full)).unwrap();
        curve(&argv(&tagged, &out_tagged)).unwrap();
        let full_tsv = std::fs::read_to_string(&out_full).unwrap();
        let tagged_tsv = std::fs::read_to_string(&out_tagged).unwrap();
        let _ = std::fs::remove_file(&full);
        let _ = std::fs::remove_file(&tagged);
        let _ = std::fs::remove_file(&out_full);
        let _ = std::fs::remove_file(&out_tagged);
        let diffs = |tsv: &str| -> Vec<i64> {
            tsv.lines()
                .skip(1)
                .map(|l| l.split('\t').nth(2).unwrap().parse().unwrap())
                .collect()
        };
        let full_diffs = diffs(&full_tsv);
        let tagged_diffs = diffs(&tagged_tsv);
        assert_eq!(full_diffs.len(), tagged_diffs.len());
        for (f, t) in full_diffs.iter().zip(&tagged_diffs) {
            assert_eq!(*t, f * 4, "sampled diffs scale by the modulus");
        }
        assert!(full_diffs.iter().any(|d| *d != 0), "curves actually differ");
    }

    #[test]
    fn curve_rejects_lossy_traces() {
        let lossy = simulated_trace("curve_lossy");
        append_pipeline_meta(&lossy, 5, 1);
        let out = std::env::temp_dir().join(format!("prio_curve_lossy_{}.tsv", std::process::id()));
        let argv = vec![
            lossy.to_str().unwrap().to_string(),
            "--out".to_string(),
            out.to_str().unwrap().to_string(),
        ];
        let err = curve(&argv).unwrap_err();
        let _ = std::fs::remove_file(&lossy);
        assert!(err.to_string().contains("lossy"), "{err}");
        assert!(!out.exists(), "no TSV written for a lossy trace");
    }
}
