//! `prio compare` — the eligibility difference series of Fig. 4.

use crate::args::Args;
use crate::commands::load_dag;
use crate::error::CliError;
use prio_core::fifo::fifo_schedule;
use prio_core::prio::prioritize;
use prio_core::schedule::profile_difference;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let (name, dag) = load_dag(&args)?;
    let prio = prioritize(&dag)?.schedule;
    let fifo = fifo_schedule(&dag);
    let diff = profile_difference(&dag, &prio, &fifo);
    let n = dag.num_nodes() as f64;
    eprintln!("prio: E_PRIO(t) - E_FIFO(t) for {name}");
    println!("t\tdiff\tdiff_normalized");
    let mut out = String::new();
    for (t, d) in diff.iter().enumerate() {
        out.push_str(&format!("{t}\t{d}\t{:.6}\n", *d as f64 / n));
    }
    print!("{out}");
    let max = diff.iter().copied().max().unwrap_or(0);
    let min = diff.iter().copied().min().unwrap_or(0);
    let nonneg = diff.iter().filter(|&&d| d >= 0).count();
    eprintln!(
        "prio: max diff {max}, min diff {min}, {nonneg}/{} steps with PRIO >= FIFO",
        diff.len()
    );
    Ok(())
}
