//! Subcommand implementations.
//!
//! Every subcommand returns `Result<(), CliError>`; `main` maps the error
//! class onto the process exit code (usage 2, input 1, internal 70).

pub mod batch;
pub mod compare;
pub mod generate;
pub mod instrument;
pub mod report;
pub mod schedule;
pub mod simulate;
pub mod stats;
pub mod trace;

use crate::args::Args;
use crate::error::CliError;
use prio_core::PrioError;
use prio_dagman::parse::parse_dagman;
use prio_graph::Dag;
use prio_workloads::spec::{paper_workload, scaled_suite};

/// Loads the dag a subcommand operates on: either a DAGMan file path
/// (positional) or `--workload NAME` with optional `--scale F`.
pub fn load_dag(args: &Args) -> Result<(String, Dag), CliError> {
    if let Some(name) = args.get("workload") {
        let scale: f64 = args.get_parsed("scale", 1.0)?;
        let workload = if (scale - 1.0).abs() < f64::EPSILON {
            paper_workload(name)
                .ok_or_else(|| CliError::usage(format!("unknown workload {name:?}")))?
        } else {
            scaled_suite(scale)
                .into_iter()
                .find(|w| w.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| CliError::usage(format!("unknown workload {name:?}")))?
        };
        Ok((
            format!("{} ({} jobs)", workload.name, workload.dag.num_nodes()),
            workload.dag,
        ))
    } else {
        let path = args.one_positional()?;
        let (_, dag) = load_dagman_file(path)?;
        Ok((path.to_string(), dag))
    }
}

/// Reads and parses one DAGMan file. Read failures and parse/graph errors
/// are input errors prefixed with the file path; parse errors keep their
/// pipeline stage name (`parse:`).
pub fn load_dagman_file(path: &str) -> Result<(prio_dagman::ast::DagmanFile, Dag), CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::input(format!("{path}: {e}")))?;
    let file = parse_dagman(&text)
        .map_err(|e| CliError::input(format!("{path}: {}", PrioError::from(e))))?;
    let dag = file
        .to_dag()
        .map_err(|e| CliError::input(format!("{path}: {}", PrioError::from(e))))?;
    Ok((file, dag))
}
