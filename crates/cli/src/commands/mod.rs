//! Subcommand implementations.

pub mod compare;
pub mod generate;
pub mod instrument;
pub mod schedule;
pub mod simulate;
pub mod stats;

use crate::args::Args;
use prio_dagman::parse::parse_dagman;
use prio_graph::Dag;
use prio_workloads::spec::{paper_workload, scaled_suite};

/// Loads the dag a subcommand operates on: either a DAGMan file path
/// (positional) or `--workload NAME` with optional `--scale F`.
pub fn load_dag(args: &Args) -> Result<(String, Dag), String> {
    if let Some(name) = args.get("workload") {
        let scale: f64 = args.get_parsed("scale", 1.0)?;
        let workload = if (scale - 1.0).abs() < f64::EPSILON {
            paper_workload(name).ok_or_else(|| format!("unknown workload {name:?}"))?
        } else {
            scaled_suite(scale)
                .into_iter()
                .find(|w| w.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| format!("unknown workload {name:?}"))?
        };
        Ok((
            format!("{} ({} jobs)", workload.name, workload.dag.num_nodes()),
            workload.dag,
        ))
    } else {
        let path = args.one_positional()?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let file = parse_dagman(&text).map_err(|e| format!("{path}: {e}"))?;
        let dag = file.to_dag().map_err(|e| format!("{path}: {e}"))?;
        Ok((path.to_string(), dag))
    }
}
