//! Subcommand implementations.
//!
//! Every subcommand returns `Result<(), CliError>`; `main` maps the error
//! class onto the process exit code (usage 2, input 1, internal 70).

pub mod batch;
pub mod compare;
pub mod convert;
pub mod generate;
pub mod instrument;
pub mod report;
pub mod schedule;
pub mod serve;
pub mod simulate;
pub mod stats;
pub mod trace;

use crate::args::Args;
use crate::error::CliError;
use prio_dagman::registry;
use prio_graph::Dag;
use prio_ir::{FormatRegistry, Frontend, Workflow};
use prio_workloads::spec::{paper_workload, scaled_suite};

/// Resolves which frontend handles `text`: an explicit `--format` name
/// wins, otherwise the registry auto-detects by file extension and then
/// by content sniffing.
pub fn resolve_frontend<'r>(
    registry: &'r FormatRegistry,
    format_flag: Option<&str>,
    path: Option<&str>,
    text: &str,
) -> Result<&'r dyn Frontend, CliError> {
    match format_flag {
        Some(name) if !name.eq_ignore_ascii_case("auto") => {
            registry.by_name(name).ok_or_else(|| {
                CliError::usage(format!(
                    "unknown --format {name:?} (auto|dagman|json|edges)"
                ))
            })
        }
        _ => registry.detect(path, text).ok_or_else(|| {
            let shown = path.unwrap_or("<input>");
            CliError::input(format!(
                "{shown}: cannot detect workflow format (use --format dagman|json|edges)"
            ))
        }),
    }
}

/// Loads the workflow a subcommand operates on: either a workflow file
/// path (positional, format from `--format` or auto-detected) or
/// `--workload NAME` with optional `--scale F`.
pub fn load_workflow(args: &Args) -> Result<(String, Workflow), CliError> {
    if let Some(name) = args.get("workload") {
        let scale: f64 = args.get_parsed("scale", 1.0)?;
        let workload = if (scale - 1.0).abs() < f64::EPSILON {
            paper_workload(name)
                .ok_or_else(|| CliError::usage(format!("unknown workload {name:?}")))?
        } else {
            scaled_suite(scale)
                .into_iter()
                .find(|w| w.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| CliError::usage(format!("unknown workload {name:?}")))?
        };
        Ok((
            format!("{} ({} jobs)", workload.name, workload.dag().num_nodes()),
            workload.workflow,
        ))
    } else {
        let path = args.one_positional()?;
        let text =
            std::fs::read_to_string(path).map_err(|e| CliError::input(format!("{path}: {e}")))?;
        let reg = registry();
        let frontend = resolve_frontend(&reg, args.get("format"), Some(path), &text)?;
        let workflow = frontend
            .import(&text)
            .map_err(|e| CliError::input(format!("{path}: {e}")))?;
        Ok((path.to_string(), workflow))
    }
}

/// Loads the dag a subcommand operates on (see [`load_workflow`]); for
/// subcommands that never touch priorities or metadata.
pub fn load_dag(args: &Args) -> Result<(String, Dag), CliError> {
    let (name, workflow) = load_workflow(args)?;
    Ok((name, workflow.into_dag()))
}
