//! `prio schedule` — print a schedule, one job per line.

use crate::args::Args;
use crate::commands::load_dag;
use crate::error::CliError;
use prio_core::baselines::critical_path_schedule;
use prio_core::fifo::fifo_schedule;
use prio_core::prio::prioritize;
use prio_core::theoretical::theoretical_schedule;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let (name, dag) = load_dag(&args)?;
    let schedule = if args.has("fifo") {
        fifo_schedule(&dag)
    } else if args.has("critical-path") {
        critical_path_schedule(&dag)
    } else if args.has("theoretical") {
        theoretical_schedule(&dag)
            .map_err(|e| CliError::input(format!("theoretical algorithm failed: {e}")))?
            .schedule
    } else {
        prioritize(&dag)?.schedule
    };
    eprintln!("prio: schedule for {name}");
    let n = schedule.len();
    let mut out = String::new();
    for (i, &u) in schedule.order().iter().enumerate() {
        out.push_str(&format!("{}\t{}\n", dag.label(u), n - i));
    }
    print!("{out}");
    Ok(())
}
