//! `prio batch` — prioritize every DAGMan file in a directory.
//!
//! Scans `<dir>` for `*.dag` files (sorted by name, skipping previous
//! `*.prio.dag` outputs), runs the PRIO pipeline over all of them through
//! one [`prio_core::Prioritizer::prioritize_many`] call — so scratch
//! buffers are shared across the whole batch — and writes each result next
//! to its input as `<stem>.prio.dag`.
//!
//! Per-file failures do not abort the batch: every remaining file is still
//! processed, failures are reported to stderr, and the exit code reflects
//! the worst failure class seen (internal 70 beats input 1).

use crate::args::Args;
use crate::error::CliError;
use prio_core::prio::{PrioOptions, Prioritizer};
use prio_core::PrioError;
use prio_dagman::ast::DagmanFile;
use prio_dagman::instrument::{instrument_dagman, priorities_by_job};
use prio_dagman::parse::parse_dagman;
use prio_dagman::write::write_dagman;
use prio_graph::Dag;
use std::path::{Path, PathBuf};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let dir = args.one_positional()?.to_string();
    let search: usize = args.get_parsed("search", 0)?;
    let threads: usize = args.get_parsed("threads", 0)?;

    let paths = dag_files(&dir)?;
    if paths.is_empty() {
        return Err(CliError::input(format!("{dir}: no .dag files found")));
    }

    // Parse every file up front; parse failures are reported but do not
    // stop the batch.
    let mut failures: Vec<(PathBuf, CliError)> = Vec::new();
    let mut parsed: Vec<(PathBuf, DagmanFile, Dag)> = Vec::new();
    for path in paths {
        match read_one(&path) {
            Ok((file, dag)) => parsed.push((path, file, dag)),
            Err(e) => failures.push((path, e)),
        }
    }

    // One batch call over all parsed dags, sharing scratch state.
    let prioritizer = Prioritizer::with_options(PrioOptions {
        optimal_search_limit: search,
        threads,
        ..PrioOptions::default()
    });
    let results = prioritizer.prioritize_many(parsed.iter().map(|(_, _, dag)| dag));

    let mut written = 0usize;
    for ((path, mut file, dag), result) in parsed.into_iter().zip(results) {
        match write_one(&path, &mut file, &dag, result) {
            Ok(out) => {
                written += 1;
                eprintln!("prio: wrote {} ({} jobs)", out.display(), dag.num_nodes());
            }
            Err(e) => failures.push((path, e)),
        }
    }

    eprintln!(
        "prio: batch: {written} prioritized, {} failed",
        failures.len()
    );
    if failures.is_empty() {
        return Ok(());
    }
    let mut internal = false;
    for (path, e) in &failures {
        eprintln!("prio: {}: {e}", path.display());
        internal |= matches!(e, CliError::Internal(_));
    }
    let summary = format!("batch: {} of {} files failed", failures.len(), {
        written + failures.len()
    });
    if internal {
        Err(CliError::internal(summary))
    } else {
        Err(CliError::input(summary))
    }
}

/// The `*.dag` files of `dir`, sorted by file name; `*.prio.dag` outputs
/// from previous runs are skipped so a batch is idempotent.
fn dag_files(dir: &str) -> Result<Vec<PathBuf>, CliError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CliError::input(format!("{dir}: {e}")))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError::input(format!("{dir}: {e}")))?;
        let path = entry.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if name.ends_with(".dag") && !name.ends_with(".prio.dag") {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

fn read_one(path: &Path) -> Result<(DagmanFile, Dag), CliError> {
    let shown = path.display();
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::input(format!("{shown}: {e}")))?;
    let file = parse_dagman(&text)
        .map_err(|e| CliError::input(format!("{shown}: {}", PrioError::from(e))))?;
    let dag = file
        .to_dag()
        .map_err(|e| CliError::input(format!("{shown}: {}", PrioError::from(e))))?;
    Ok((file, dag))
}

fn write_one(
    path: &Path,
    file: &mut DagmanFile,
    dag: &Dag,
    result: Result<prio_core::PrioResult, PrioError>,
) -> Result<PathBuf, CliError> {
    let result = result?;
    let names = result.schedule.order().iter().map(|&u| dag.label(u));
    let priorities = priorities_by_job(names);
    instrument_dagman(file, &priorities)?;
    let out = output_path(path);
    std::fs::write(&out, write_dagman(file))
        .map_err(|e| CliError::input(format!("{}: {e}", out.display())))?;
    Ok(out)
}

/// `foo.dag` -> `foo.prio.dag`, next to the input.
fn output_path(path: &Path) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    path.with_file_name(format!("{stem}.prio.dag"))
}
