//! `prio batch` — prioritize every workflow file in a directory.
//!
//! Scans `<dir>` for workflow files by extension — `*.dag` plus, with
//! `--format` or by default, every extension a registered frontend claims
//! (`*.json`, `*.edges`, `*.tsv`) — sorted by name and skipping previous
//! `*.prio.*` outputs. All dags run through one
//! [`prio_core::Prioritizer::prioritize_many`] call — so scratch buffers
//! are shared across the whole batch — and each result is written next to
//! its input as `<stem>.prio.<ext>`. DAGMan inputs keep the paper's
//! line-faithful instrumentation; other formats re-export through their
//! frontend with priorities attached.
//!
//! Per-file failures do not abort the batch: every remaining file is still
//! processed, failures are reported to stderr, and the exit code reflects
//! the worst failure class seen (internal 70 beats input 1).

use crate::args::Args;
use crate::error::CliError;
use prio_core::prio::{PrioOptions, Prioritizer};
use prio_core::PrioError;
use prio_dagman::ast::DagmanFile;
use prio_dagman::instrument::{instrument_dagman, priorities_by_job};
use prio_dagman::parse::parse_dagman_threads;
use prio_dagman::registry;
use prio_dagman::write::write_dagman;
use prio_graph::Dag;
use prio_ir::{FormatId, FormatRegistry, Workflow};
use std::path::{Path, PathBuf};

/// One parsed input, keeping the DAGMan AST when the paper's line-faithful
/// instrumentation applies.
enum Parsed {
    Dagman(Box<DagmanFile>, Dag),
    Ir(FormatId, Workflow),
}

impl Parsed {
    fn dag(&self) -> &Dag {
        match self {
            Parsed::Dagman(_, dag) => dag,
            Parsed::Ir(_, wf) => wf.dag(),
        }
    }
}

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let dir = args.one_positional()?.to_string();
    let search: usize = args.get_parsed("search", 0)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    let reg = registry();
    let only: Option<FormatId> = match args.get("format") {
        None => None,
        Some(name) if name.eq_ignore_ascii_case("auto") => None,
        Some(name) => Some(
            reg.by_name(name)
                .ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown --format {name:?} (auto|dagman|json|edges)"
                    ))
                })?
                .id(),
        ),
    };

    let paths = workflow_files(&dir, &reg, only)?;
    if paths.is_empty() {
        return Err(CliError::input(format!("{dir}: no workflow files found")));
    }

    // Parse every file up front; parse failures are reported but do not
    // stop the batch.
    let mut failures: Vec<(PathBuf, CliError)> = Vec::new();
    let mut parsed: Vec<(PathBuf, Parsed)> = Vec::new();
    for path in paths {
        match read_one(&path, &reg, only, threads) {
            Ok(p) => parsed.push((path, p)),
            Err(e) => failures.push((path, e)),
        }
    }

    // One batch call over all parsed dags, sharing scratch state.
    let prioritizer = Prioritizer::with_options(PrioOptions {
        optimal_search_limit: search,
        threads,
        ..PrioOptions::default()
    });
    let results = prioritizer.prioritize_many(parsed.iter().map(|(_, p)| p.dag()));

    let mut written = 0usize;
    for ((path, input), result) in parsed.into_iter().zip(results) {
        let jobs = input.dag().num_nodes();
        match write_one(&path, input, result, &reg) {
            Ok(out) => {
                written += 1;
                eprintln!("prio: wrote {} ({} jobs)", out.display(), jobs);
            }
            Err(e) => failures.push((path, e)),
        }
    }

    eprintln!(
        "prio: batch: {written} prioritized, {} failed",
        failures.len()
    );
    if failures.is_empty() {
        return Ok(());
    }
    let mut internal = false;
    for (path, e) in &failures {
        eprintln!("prio: {}: {e}", path.display());
        internal |= matches!(e, CliError::Internal(_));
    }
    let summary = format!("batch: {} of {} files failed", failures.len(), {
        written + failures.len()
    });
    if internal {
        Err(CliError::internal(summary))
    } else {
        Err(CliError::input(summary))
    }
}

/// The workflow files of `dir`, sorted by file name; `*.prio.*` outputs
/// from previous runs are skipped so a batch is idempotent. With a
/// `--format` restriction only that frontend's extensions match.
fn workflow_files(
    dir: &str,
    reg: &FormatRegistry,
    only: Option<FormatId>,
) -> Result<Vec<PathBuf>, CliError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CliError::input(format!("{dir}: {e}")))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError::input(format!("{dir}: {e}")))?;
        let path = entry.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        let known = match reg.by_extension(name) {
            Some(f) => only.is_none_or(|id| f.id() == id),
            None => false,
        };
        if known && !name.contains(".prio.") {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

fn read_one(
    path: &Path,
    reg: &FormatRegistry,
    only: Option<FormatId>,
    threads: usize,
) -> Result<Parsed, CliError> {
    let shown = path.display();
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::input(format!("{shown}: {e}")))?;
    let frontend = match only {
        Some(id) => reg
            .get(id)
            .expect("restricted format came from the registry"),
        None => path
            .to_str()
            .and_then(|p| reg.by_extension(p))
            .ok_or_else(|| CliError::input(format!("{shown}: unrecognized extension")))?,
    };
    if frontend.id() == FormatId::Dagman {
        let file = parse_dagman_threads(&text, threads)
            .map_err(|e| CliError::input(format!("{shown}: {}", PrioError::from(e))))?;
        let dag = file
            .to_dag()
            .map_err(|e| CliError::input(format!("{shown}: {}", PrioError::from(e))))?;
        Ok(Parsed::Dagman(Box::new(file), dag))
    } else {
        let wf = frontend
            .import(&text)
            .map_err(|e| CliError::input(format!("{shown}: {e}")))?;
        Ok(Parsed::Ir(frontend.id(), wf))
    }
}

fn write_one(
    path: &Path,
    input: Parsed,
    result: Result<prio_core::PrioResult, PrioError>,
    reg: &FormatRegistry,
) -> Result<PathBuf, CliError> {
    let result = result?;
    let (rendered, ext) = match input {
        Parsed::Dagman(mut file, dag) => {
            let names = result.schedule.order().iter().map(|&u| dag.label(u));
            let priorities = priorities_by_job(names);
            instrument_dagman(&mut file, &priorities)?;
            (write_dagman(&file), "dag".to_string())
        }
        Parsed::Ir(id, wf) => {
            let frontend = reg.get(id).expect("parsed with a registered frontend");
            let ext = path
                .extension()
                .and_then(|s| s.to_str())
                .unwrap_or(id.extension())
                .to_string();
            (frontend.export(&wf, &result.priorities()), ext)
        }
    };
    let out = output_path(path, &ext);
    std::fs::write(&out, rendered)
        .map_err(|e| CliError::input(format!("{}: {e}", out.display())))?;
    Ok(out)
}

/// `foo.dag` -> `foo.prio.dag` (and `foo.json` -> `foo.prio.json`), next
/// to the input.
fn output_path(path: &Path, ext: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    path.with_file_name(format!("{stem}.prio.{ext}"))
}
