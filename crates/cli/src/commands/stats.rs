//! `prio stats` — pipeline statistics (components, families, shortcuts).

use crate::args::Args;
use crate::commands::load_dag;
use crate::error::CliError;
use prio_core::prio::prioritize;
use std::time::Instant;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let (name, dag) = load_dag(&args)?;
    let start = Instant::now();
    let result = prioritize(&dag)?;
    let elapsed = start.elapsed();
    let s = &result.stats;
    println!("dag:                     {name}");
    println!("jobs:                    {}", dag.num_nodes());
    println!("dependencies:            {}", dag.num_arcs());
    println!("shortcuts removed:       {}", s.shortcuts_removed);
    println!("components:              {}", s.num_components);
    println!("  bipartite:             {}", s.num_bipartite);
    println!(
        "  catalog-scheduled:     {}",
        s.recognized.values().sum::<usize>()
    );
    for (family, count) in &s.recognized {
        println!("    {family}: {count}");
    }
    println!("  search-scheduled:      {}", s.searched);
    println!("  heuristic-scheduled:   {}", s.heuristic_scheduled);
    println!("  trivial:               {}", s.trivial);
    println!("general-search rounds:   {}", s.general_search_iterations);
    println!("prioritization time:     {:.3} s", elapsed.as_secs_f64());
    Ok(())
}
