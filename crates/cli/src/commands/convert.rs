//! `prio convert` — translate a workflow between frontends.
//!
//! ```text
//! prio convert <in> <out> [--from FORMAT] [--to FORMAT]
//! ```
//!
//! The input format comes from `--from`, the input file's extension, or
//! content sniffing; the output format from `--to` or the output file's
//! extension. Job set, arc set, metadata and any priorities already in
//! the input survive the translation (each exporter is canonical, so
//! converting a file to its own format normalizes it). `-` as the output
//! path writes to stdout, in which case `--to` is required.

use crate::args::Args;
use crate::error::CliError;
use prio_dagman::{frontend::representable, registry};
use prio_ir::{FormatId, FormatRegistry, Frontend};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let (input, output) = match args.positional.as_slice() {
        [i, o] => (i.as_str(), o.as_str()),
        _ => {
            return Err(CliError::usage(
                "convert requires exactly two positional arguments: <in> <out>",
            ))
        }
    };

    let text =
        std::fs::read_to_string(input).map_err(|e| CliError::input(format!("{input}: {e}")))?;
    let reg = registry();
    let from = super::resolve_frontend(&reg, args.get("from"), Some(input), &text)?;
    let to = resolve_target(&reg, args.get("to"), output)?;

    let workflow = from
        .import(&text)
        .map_err(|e| CliError::input(format!("{input}: {e}")))?;
    if to.id() == FormatId::Dagman {
        // Refuse to write names DAGMan's tokenizer would mangle.
        representable(&workflow).map_err(|e| CliError::input(format!("{input}: {e}")))?;
    }
    let rendered = to.export(&workflow, workflow.priorities());

    if output == "-" {
        print!("{rendered}");
    } else {
        std::fs::write(output, rendered).map_err(|e| CliError::input(format!("{output}: {e}")))?;
        eprintln!(
            "prio: converted {input} ({}) -> {output} ({}), {} jobs, {} arcs",
            from.id(),
            to.id(),
            workflow.num_jobs(),
            workflow.num_arcs()
        );
    }
    Ok(())
}

/// The output frontend: `--to` wins, else the output path's extension.
fn resolve_target<'r>(
    reg: &'r FormatRegistry,
    to_flag: Option<&str>,
    output: &str,
) -> Result<&'r dyn Frontend, CliError> {
    match to_flag {
        Some(name) => reg
            .by_name(name)
            .ok_or_else(|| CliError::usage(format!("unknown --to {name:?} (dagman|json|edges)"))),
        None if output == "-" => Err(CliError::usage(
            "writing to stdout requires --to FORMAT (dagman|json|edges)",
        )),
        None => reg.by_extension(output).ok_or_else(|| {
            CliError::usage(format!(
                "cannot infer output format from {output:?} (use --to dagman|json|edges)"
            ))
        }),
    }
}
