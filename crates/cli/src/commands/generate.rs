//! `prio generate` — emit a synthetic scientific dag as a DAGMan file.

use crate::args::Args;
use crate::error::CliError;
use prio_dagman::ast::DagmanFile;
use prio_dagman::write::write_dagman;
use prio_workloads::{airsn, classic, inspiral, montage, sdss};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let which = args.one_positional()?.to_ascii_lowercase();
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let dag = match which.as_str() {
        "airsn" => {
            let width: usize = args.get_parsed(
                "width",
                (airsn::PAPER_WIDTH as f64 * scale).round() as usize,
            )?;
            airsn::airsn(width.max(1))
        }
        "inspiral" => inspiral::inspiral(if scale < 1.0 {
            inspiral::InspiralParams::scaled(scale)
        } else {
            inspiral::InspiralParams::default()
        }),
        "montage" => montage::montage(if scale < 1.0 {
            montage::MontageParams::scaled(scale)
        } else {
            montage::MontageParams::default()
        }),
        "sdss" => sdss::sdss(if scale < 1.0 {
            sdss::SdssParams::scaled(scale)
        } else {
            sdss::SdssParams::default()
        }),
        "fig3" => classic::fig3_dag(),
        other => return Err(CliError::usage(format!("unknown workload {other:?}"))),
    };
    let text = write_dagman(&DagmanFile::from_dag(&dag));
    match args.get("output") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| CliError::input(format!("{path}: {e}")))?;
            eprintln!("prio: wrote {path} ({} jobs)", dag.num_nodes());
        }
        None => print!("{text}"),
    }
    Ok(())
}
