//! `prio generate` — emit a synthetic scientific dag as a workflow file
//! (DAGMan by default; `--format json|edges` selects another frontend).

use crate::args::Args;
use crate::error::CliError;
use prio_dagman::registry;
use prio_ir::Workflow;
use prio_workloads::{airsn, classic, inspiral, montage, sdss};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let which = args.one_positional()?.to_ascii_lowercase();
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let dag = match which.as_str() {
        "airsn" => {
            let width: usize = args.get_parsed(
                "width",
                (airsn::PAPER_WIDTH as f64 * scale).round() as usize,
            )?;
            airsn::airsn(width.max(1))
        }
        "inspiral" => inspiral::inspiral(if scale < 1.0 {
            inspiral::InspiralParams::scaled(scale)
        } else {
            inspiral::InspiralParams::default()
        }),
        "montage" => montage::montage(if scale < 1.0 {
            montage::MontageParams::scaled(scale)
        } else {
            montage::MontageParams::default()
        }),
        "sdss" => sdss::sdss(if scale < 1.0 {
            sdss::SdssParams::scaled(scale)
        } else {
            sdss::SdssParams::default()
        }),
        "fig3" => classic::fig3_dag(),
        other => return Err(CliError::usage(format!("unknown workload {other:?}"))),
    };
    let reg = registry();
    let frontend = match args.get("format") {
        None | Some("auto") | Some("dagman") => reg
            .by_name("dagman")
            .expect("dagman frontend is registered"),
        Some(name) => reg.by_name(name).ok_or_else(|| {
            CliError::usage(format!("unknown --format {name:?} (dagman|json|edges)"))
        })?,
    };
    let workflow = Workflow::synthetic(dag);
    let text = frontend.export(&workflow, workflow.priorities());
    let dag = workflow.dag();
    match args.get("output") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| CliError::input(format!("{path}: {e}")))?;
            eprintln!("prio: wrote {path} ({} jobs)", dag.num_nodes());
        }
        None => print!("{text}"),
    }
    Ok(())
}
