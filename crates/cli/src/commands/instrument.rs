//! `prio instrument` — the paper's tool: prioritize a DAGMan file.

use crate::args::Args;
use crate::commands::load_dagman_file;
use crate::error::CliError;
use prio_core::prio::{PrioOptions, Prioritizer};
use prio_dagman::instrument::{instrument_dagman_with, priorities_by_job, InstrumentMode};
use prio_dagman::jsdf::Jsdf;
use prio_dagman::write::write_dagman;
use std::path::{Path, PathBuf};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let path = args.one_positional()?.to_string();
    let (mut file, dag) = load_dagman_file(&path)?;

    let search: usize = args.get_parsed("search", 0)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    let mode = match args.get("mode") {
        None | Some("vars") => InstrumentMode::VarsMacro,
        Some("priority") => InstrumentMode::PriorityStatement,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown --mode {other:?} (vars|priority)"
            )))
        }
    };
    let result = Prioritizer::with_options(PrioOptions {
        optimal_search_limit: search,
        threads,
        ..PrioOptions::default()
    })
    .prioritize(&dag)?;
    let names = result.schedule.order().iter().map(|&u| dag.label(u));
    let priorities = priorities_by_job(names);
    instrument_dagman_with(&mut file, &priorities, mode)?;
    let instrumented = write_dagman(&file);

    let output: PathBuf = if args.has("in-place") {
        PathBuf::from(&path)
    } else if let Some(out) = args.get("output") {
        PathBuf::from(out)
    } else {
        // foo.dag -> foo.prio.dag
        let p = Path::new(&path);
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
        let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("dag");
        p.with_file_name(format!("{stem}.prio.{ext}"))
    };
    std::fs::write(&output, instrumented)
        .map_err(|e| CliError::input(format!("{}: {e}", output.display())))?;
    eprintln!(
        "prio: wrote {} ({} jobs, {} components, {} shortcuts removed)",
        output.display(),
        dag.num_nodes(),
        result.stats.num_components,
        result.stats.shortcuts_removed
    );

    // Instrument each referenced JSDF we can locate.
    let jsdf_dir = args
        .get("jsdf-dir")
        .map(PathBuf::from)
        .or_else(|| Path::new(&path).parent().map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."));
    let mut seen = std::collections::BTreeSet::new();
    for job in file.job_names() {
        if let Some(submit) = file.submit_file(job) {
            if !seen.insert(submit.to_string()) {
                continue;
            }
            let jsdf_path = jsdf_dir.join(submit);
            match std::fs::read_to_string(&jsdf_path) {
                Ok(text) => {
                    let mut jsdf = Jsdf::parse(&text);
                    jsdf.instrument_priority();
                    std::fs::write(&jsdf_path, jsdf.to_text())
                        .map_err(|e| CliError::input(format!("{}: {e}", jsdf_path.display())))?;
                    eprintln!("prio: instrumented {}", jsdf_path.display());
                }
                Err(_) => {
                    eprintln!(
                        "prio: note: submit file {} not found, skipped",
                        jsdf_path.display()
                    );
                }
            }
        }
    }

    // Structured snapshot of the pipeline's spans and counters as JSONL.
    if let Some(out) = args.get("trace-out") {
        let sink = prio_obs::JsonlSink::to_file(Path::new(out))
            .map_err(|e| CliError::input(format!("{out}: {e}")))?;
        sink.write_meta(
            "instrument",
            &format!("input={path} jobs={}", dag.num_nodes()),
        )
        .map_err(|e| CliError::input(format!("{out}: {e}")))?;
        sink.write_span_snapshot()
            .map_err(|e| CliError::input(format!("{out}: {e}")))?;
        sink.write_metrics_snapshot()
            .map_err(|e| CliError::input(format!("{out}: {e}")))?;
        sink.flush()
            .map_err(|e| CliError::input(format!("{out}: {e}")))?;
        eprintln!("prio: wrote timing snapshot to {out}");
    }
    Ok(())
}
