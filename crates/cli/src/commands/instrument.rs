//! `prio instrument` (alias `run`) — the paper's tool: prioritize a
//! workflow file.
//!
//! DAGMan inputs get the paper's line-faithful treatment: `jobpriority`
//! `VARS` statements are inserted into a minimal diff of the original
//! file and each referenced job-submit description file found on disk is
//! instrumented with `priority = $(jobpriority)`. Other formats
//! (`--format json|edges`, or auto-detected) go through their frontend:
//! import to the IR, prioritize, and export the same format with the
//! computed priorities attached.

use crate::args::Args;
use crate::commands::resolve_frontend;
use crate::error::CliError;
use prio_core::prio::{PrioOptions, Prioritizer};
use prio_dagman::instrument::{instrument_dagman_with, priorities_by_job, InstrumentMode};
use prio_dagman::jsdf::Jsdf;
use prio_dagman::parse::parse_dagman_threads;
use prio_dagman::registry;
use prio_dagman::write::write_dagman;
use prio_graph::Dag;
use prio_ir::FormatId;
use std::path::{Path, PathBuf};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let path = args.one_positional()?.to_string();
    let text =
        std::fs::read_to_string(&path).map_err(|e| CliError::input(format!("{path}: {e}")))?;
    let reg = registry();
    let frontend = resolve_frontend(&reg, args.get("format"), Some(&path), &text)?;

    let search: usize = args.get_parsed("search", 0)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    let prioritizer = Prioritizer::with_options(PrioOptions {
        optimal_search_limit: search,
        threads,
        ..PrioOptions::default()
    });

    let (instrumented, dag, stats_line) = if frontend.id() == FormatId::Dagman {
        // Paper-exact path: minimal diff of the original DAGMan text.
        let mode = match args.get("mode") {
            None | Some("vars") => InstrumentMode::VarsMacro,
            Some("priority") => InstrumentMode::PriorityStatement,
            Some(other) => {
                return Err(CliError::usage(format!(
                    "unknown --mode {other:?} (vars|priority)"
                )))
            }
        };
        let mut file = parse_dagman_threads(&text, threads)
            .map_err(|e| CliError::input(format!("{path}: {}", prio_core::PrioError::from(e))))?;
        let dag = file
            .to_dag()
            .map_err(|e| CliError::input(format!("{path}: {}", prio_core::PrioError::from(e))))?;
        let result = prioritizer.prioritize(&dag)?;
        let names = result.schedule.order().iter().map(|&u| dag.label(u));
        let priorities = priorities_by_job(names);
        instrument_dagman_with(&mut file, &priorities, mode)?;
        let stats = format!(
            "{} components, {} shortcuts removed",
            result.stats.num_components, result.stats.shortcuts_removed
        );

        // Instrument each referenced JSDF we can locate.
        let jsdf_dir = args
            .get("jsdf-dir")
            .map(PathBuf::from)
            .or_else(|| Path::new(&path).parent().map(Path::to_path_buf))
            .unwrap_or_else(|| PathBuf::from("."));
        let mut seen = std::collections::BTreeSet::new();
        for job in file.job_names() {
            if let Some(submit) = file.submit_file(job) {
                if !seen.insert(submit.to_string()) {
                    continue;
                }
                let jsdf_path = jsdf_dir.join(submit);
                match std::fs::read_to_string(&jsdf_path) {
                    Ok(jsdf_text) => {
                        let mut jsdf = Jsdf::parse(&jsdf_text);
                        jsdf.instrument_priority();
                        std::fs::write(&jsdf_path, jsdf.to_text()).map_err(|e| {
                            CliError::input(format!("{}: {e}", jsdf_path.display()))
                        })?;
                        eprintln!("prio: instrumented {}", jsdf_path.display());
                    }
                    Err(_) => {
                        eprintln!(
                            "prio: note: submit file {} not found, skipped",
                            jsdf_path.display()
                        );
                    }
                }
            }
        }
        (write_dagman(&file), dag, stats)
    } else {
        // Generic frontend path: IR in, same format out with priorities.
        let workflow = frontend
            .import(&text)
            .map_err(|e| CliError::input(format!("{path}: {e}")))?;
        let result = prioritizer.prioritize_workflow(&workflow)?;
        let rendered = frontend.export(&workflow, &result.priorities());
        let stats = format!(
            "{} components, {} shortcuts removed",
            result.stats.num_components, result.stats.shortcuts_removed
        );
        (rendered, workflow.into_dag(), stats)
    };

    let output: PathBuf = if args.has("in-place") {
        PathBuf::from(&path)
    } else if let Some(out) = args.get("output") {
        PathBuf::from(out)
    } else {
        // foo.dag -> foo.prio.dag (and foo.json -> foo.prio.json, …)
        let p = Path::new(&path);
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
        let ext = p
            .extension()
            .and_then(|s| s.to_str())
            .unwrap_or_else(|| frontend.id().extension());
        p.with_file_name(format!("{stem}.prio.{ext}"))
    };
    std::fs::write(&output, instrumented)
        .map_err(|e| CliError::input(format!("{}: {e}", output.display())))?;
    eprintln!(
        "prio: wrote {} ({} jobs, {stats_line})",
        output.display(),
        dag.num_nodes(),
    );

    // Structured snapshot of the pipeline's spans and counters as JSONL.
    if let Some(out) = args.get("trace-out") {
        write_trace(out, &path, &dag)?;
    }
    Ok(())
}

fn write_trace(out: &str, path: &str, dag: &Dag) -> Result<(), CliError> {
    let sink = prio_obs::JsonlSink::to_file(Path::new(out))
        .map_err(|e| CliError::input(format!("{out}: {e}")))?;
    sink.write_meta(
        "instrument",
        &format!("input={path} jobs={}", dag.num_nodes()),
    )
    .map_err(|e| CliError::input(format!("{out}: {e}")))?;
    sink.write_span_snapshot()
        .map_err(|e| CliError::input(format!("{out}: {e}")))?;
    sink.write_metrics_snapshot()
        .map_err(|e| CliError::input(format!("{out}: {e}")))?;
    sink.flush()
        .map_err(|e| CliError::input(format!("{out}: {e}")))?;
    eprintln!("prio: wrote timing snapshot to {out}");
    Ok(())
}
