//! Golden-output test for `prio report`: a fixed-seed `prio simulate
//! --trace-out` run must produce byte-stable simulator telemetry, pinned
//! by `tests/golden/report_telemetry.json`.
//!
//! Only the deterministic sections are pinned — `events`, `telemetry`,
//! and `latencies` are pure functions of the dag, the grid model, and the
//! seed. Span timings are wall-clock and excluded. A companion test
//! asserts that serial and `--threads` invocations write identical
//! telemetry records (the traced run never depends on the replication
//! thread pool).

use prio_obs::json::{parse, JsonValue};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn prio(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_prio"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prio-report-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Twelve jobs: a fan-out over two diamonds re-joining in a single sink,
/// enough structure for PRIO and FIFO to schedule differently.
const DAG: &str = "\
JOB j0 j0.submit
JOB j1 j1.submit
JOB j2 j2.submit
JOB j3 j3.submit
JOB j4 j4.submit
JOB j5 j5.submit
JOB j6 j6.submit
JOB j7 j7.submit
JOB j8 j8.submit
JOB j9 j9.submit
JOB j10 j10.submit
JOB j11 j11.submit
PARENT j0 CHILD j1 j2 j3 j4
PARENT j1 CHILD j5
PARENT j2 CHILD j5
PARENT j3 CHILD j6
PARENT j4 CHILD j6
PARENT j5 CHILD j7 j8
PARENT j6 CHILD j9 j10
PARENT j7 CHILD j11
PARENT j8 CHILD j11
PARENT j9 CHILD j11
PARENT j10 CHILD j11
";

/// Runs `prio simulate` on the fixed dag with the fixed seed, writing a
/// trace to `out_name`; returns the trace path.
fn simulate(dir: &Path, extra: &[&str], out_name: &str) -> PathBuf {
    std::fs::write(dir.join("fixed.dag"), DAG).unwrap();
    let mut args = vec![
        "simulate",
        "fixed.dag",
        "--mu-bit",
        "0.7",
        "--mu-bs",
        "3",
        "--p",
        "2",
        "--q",
        "2",
        "--seed",
        "7",
        "--trace-out",
        out_name,
    ];
    args.extend_from_slice(extra);
    let out = prio(&args, dir);
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir.join(out_name)
}

#[test]
fn report_json_telemetry_matches_golden() {
    let dir = tempdir("golden");
    simulate(&dir, &[], "trace.jsonl");
    let out = prio(&["report", "trace.jsonl", "--json"], &dir);
    assert!(
        out.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = parse(stdout.trim()).expect("report --json emits valid JSON");
    let golden = parse(include_str!("golden/report_telemetry.json")).expect("golden parses");
    for key in ["events", "telemetry", "latencies"] {
        assert_eq!(
            doc.get(key),
            golden.get(key),
            "deterministic section {key:?} diverged from tests/golden/report_telemetry.json \
             — if the schema or simulator changed intentionally, regenerate the golden file \
             from this test's `prio report --json` output"
        );
    }
}

#[test]
fn text_report_shows_percentiles_and_telemetry_digest() {
    let dir = tempdir("text");
    simulate(&dir, &[], "trace.jsonl");
    let out = prio(&["report", "trace.jsonl"], &dir);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "p50_ms",
        "p99_ms",
        "eligible_pool",
        "utilization",
        "job_wait_milli",
        "prio vs fifo",
        "makespan",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

/// The fault flags used by the fault-bearing golden run: an aggressive
/// per-attempt failure rate with two DAGMan retries, enough for the fixed
/// seed to record failures, retries, and wasted work in the trace.
const FAULT_FLAGS: &[&str] = &["--fault-rate", "0.3", "--retries", "2"];

#[test]
fn report_json_fault_sections_match_golden() {
    let dir = tempdir("golden-fault");
    simulate(&dir, FAULT_FLAGS, "fault.jsonl");
    let out = prio(&["report", "fault.jsonl", "--json"], &dir);
    assert!(
        out.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = parse(stdout.trim()).expect("report --json emits valid JSON");
    let golden = parse(include_str!("golden/report_fault.json")).expect("golden parses");
    // The comparison is pinned too: it is a pure function of the pinned
    // telemetry, and it is where the retry-count and wasted-work columns
    // surface.
    for key in ["events", "telemetry", "latencies", "comparison"] {
        assert_eq!(
            doc.get(key),
            golden.get(key),
            "deterministic section {key:?} diverged from tests/golden/report_fault.json \
             — if the schema or fault layer changed intentionally, regenerate the golden \
             file from this test's `prio report --json` output"
        );
    }
    // The pinned run must actually exercise the fault layer.
    for needle in ["retried", "job_attempts", "wasted_work"] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
}

#[test]
fn text_report_shows_fault_columns_on_faulty_traces() {
    let dir = tempdir("text-fault");
    simulate(&dir, FAULT_FLAGS, "fault.jsonl");
    let out = prio(&["report", "fault.jsonl"], &dir);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "retried",
        "churn",
        "job_attempts",
        "wasted_work_milli",
        "job_attempts_total",
        "wasted_work_mean_milli",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn faulty_trace_replays_identically_across_thread_counts() {
    // Same seed + same fault model ⇒ byte-identical deterministic records,
    // regardless of the replication thread count. Only wall-clock records
    // (spans, scalar counters, registry histograms) may differ.
    let dir = tempdir("fault-threads");
    let mut one = vec!["--threads", "1"];
    one.extend_from_slice(FAULT_FLAGS);
    one.extend_from_slice(&["--worker-mttf", "40", "--backoff", "fixed:0.5"]);
    let mut four = vec!["--threads", "4"];
    four.extend_from_slice(FAULT_FLAGS);
    four.extend_from_slice(&["--worker-mttf", "40", "--backoff", "fixed:0.5"]);
    let a = simulate(&dir, &one, "one.jsonl");
    let b = simulate(&dir, &four, "four.jsonl");
    let deterministic_lines = |path: &Path| -> Vec<String> {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .filter(|l| {
                let t = parse(l).unwrap();
                match t.get("type").and_then(JsonValue::as_str) {
                    Some("span" | "counter" | "gauge") => false,
                    // Registry histograms are wall-clock; policy-tagged
                    // ones are simulator telemetry and deterministic.
                    Some("hist") => t.get("policy").is_some(),
                    _ => true,
                }
            })
            .map(str::to_owned)
            .collect()
    };
    let lines_a = deterministic_lines(&a);
    let lines_b = deterministic_lines(&b);
    assert!(
        lines_a.iter().any(|l| l.contains("job_retried")),
        "fault run must record retries"
    );
    assert_eq!(lines_a, lines_b, "replay must not depend on thread count");
}

#[test]
fn serial_and_threaded_runs_emit_identical_telemetry() {
    let dir = tempdir("threads");
    let serial = simulate(&dir, &[], "serial.jsonl");
    let threaded = simulate(&dir, &["--threads", "2"], "threaded.jsonl");
    let telemetry_lines = |path: &Path| -> Vec<String> {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .filter(|l| {
                let t = parse(l).unwrap();
                matches!(
                    t.get("type").and_then(JsonValue::as_str),
                    Some("ts" | "hist")
                )
            })
            .map(str::to_owned)
            .collect()
    };
    let a = telemetry_lines(&serial);
    let b = telemetry_lines(&threaded);
    assert!(!a.is_empty(), "trace carries telemetry records");
    assert_eq!(a, b, "telemetry must not depend on the thread count");
}

#[test]
fn report_rejects_missing_and_garbage_input() {
    let dir = tempdir("errors");
    let out = prio(&["report", "nope.jsonl"], &dir);
    assert_eq!(out.status.code(), Some(1), "missing file is an input error");
    std::fs::write(dir.join("bad.jsonl"), "not json\n").unwrap();
    let out = prio(&["report", "bad.jsonl"], &dir);
    assert_eq!(out.status.code(), Some(1));
    let out = prio(&["report"], &dir);
    assert_eq!(out.status.code(), Some(2), "no files is a usage error");
}

#[test]
fn two_trace_files_compare_side_by_side() {
    let dir = tempdir("twofiles");
    simulate(&dir, &[], "a.jsonl");
    // Keep only the prio policy from each file by reporting both files:
    // each carries two policies, so four groups exist and no pairwise
    // comparison is emitted — but both files' digests must render.
    simulate(&dir, &[], "b.jsonl");
    let out = prio(&["report", "a.jsonl", "b.jsonl"], &dir);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("2 trace files"), "{text}");
    assert!(text.contains("source 1"), "{text}");
}
