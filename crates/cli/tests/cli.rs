//! Integration tests driving the `prio` binary end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn prio(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_prio"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prio-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const FIG3: &str = "\
JOB a a.submit
JOB b b.submit
JOB c c.submit
JOB d d.submit
JOB e e.submit
PARENT a CHILD b
PARENT c CHILD d e
";

#[test]
fn instrument_writes_fig3_priorities() {
    let dir = tempdir("instrument");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    std::fs::write(dir.join("c.submit"), "universe = vanilla\nqueue\n").unwrap();
    let out = prio(&["instrument", "IV.dag"], &dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let instrumented = std::fs::read_to_string(dir.join("IV.prio.dag")).unwrap();
    assert!(instrumented.contains("VARS c jobpriority=\"5\""));
    assert!(instrumented.contains("VARS e jobpriority=\"1\""));
    let jsdf = std::fs::read_to_string(dir.join("c.submit")).unwrap();
    assert!(jsdf.contains("priority = $(jobpriority)"));
}

#[test]
fn instrument_in_place_overwrites() {
    let dir = tempdir("inplace");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["instrument", "IV.dag", "--in-place"], &dir);
    assert!(out.status.success());
    let text = std::fs::read_to_string(dir.join("IV.dag")).unwrap();
    assert!(text.contains("jobpriority"));
}

#[test]
fn schedule_prints_prio_order() {
    let dir = tempdir("schedule");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["schedule", "IV.dag"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let names: Vec<&str> = stdout
        .lines()
        .map(|l| l.split('\t').next().unwrap())
        .collect();
    assert_eq!(names, vec!["c", "a", "b", "d", "e"]);
}

#[test]
fn schedule_fifo_flag_changes_order() {
    let dir = tempdir("fifo");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["schedule", "IV.dag", "--fifo"], &dir);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("a\t"));
}

#[test]
fn compare_emits_diff_series() {
    let dir = tempdir("compare");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["compare", "IV.dag"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("t\tdiff"));
    assert_eq!(stdout.lines().count(), 1 + 6); // header + E(0..=5)
}

#[test]
fn generate_then_instrument_roundtrip() {
    let dir = tempdir("generate");
    let out = prio(
        &["generate", "airsn", "--width", "5", "--output", "airsn.dag"],
        &dir,
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = prio(&["instrument", "airsn.dag", "--output", "out.dag"], &dir);
    assert!(out.status.success());
    let text = std::fs::read_to_string(dir.join("out.dag")).unwrap();
    // 38 jobs at width 5, so the top priority is 38.
    assert!(text.contains("jobpriority=\"38\""));
}

#[test]
fn stats_reports_components() {
    let dir = tempdir("stats");
    let out = prio(&["stats", "--workload", "airsn", "--scale", "0.05"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("components:"));
    assert!(stdout.contains("bipartite:"));
}

#[test]
fn simulate_smoke() {
    let dir = tempdir("simulate");
    let out = prio(
        &[
            "simulate",
            "--workload",
            "airsn",
            "--scale",
            "0.04",
            "--mu-bit",
            "1",
            "--mu-bs",
            "8",
            "--p",
            "4",
            "--q",
            "3",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("execution_time"));
    assert!(stdout.contains("utilization"));
}

#[test]
fn unknown_subcommand_exits_with_usage_code() {
    let dir = tempdir("unknown");
    let out = prio(&["frobnicate"], &dir);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn bad_flag_value_exits_with_usage_code() {
    let dir = tempdir("badflag");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["instrument", "IV.dag", "--search", "lots"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--search"));
    let out = prio(&[], &dir);
    assert_eq!(out.status.code(), Some(2), "missing subcommand exits 2");
}

#[test]
fn missing_file_exits_with_input_code() {
    let dir = tempdir("missing");
    let out = prio(&["schedule", "nope.dag"], &dir);
    assert_eq!(out.status.code(), Some(1), "input errors exit 1");
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope.dag"));
}

#[test]
fn malformed_file_reports_the_parse_stage() {
    let dir = tempdir("malformed");
    std::fs::write(dir.join("bad.dag"), "JOB incomplete\n").unwrap();
    let out = prio(&["schedule", "bad.dag"], &dir);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("parse:"),
        "stage name missing from: {stderr}"
    );
}

#[test]
fn batch_prioritizes_a_directory() {
    let dir = tempdir("batch");
    std::fs::write(dir.join("one.dag"), FIG3).unwrap();
    std::fs::write(
        dir.join("two.dag"),
        "JOB x x.sub\nJOB y y.sub\nPARENT x CHILD y\n",
    )
    .unwrap();
    std::fs::write(dir.join("notes.txt"), "not a dag").unwrap();
    let out = prio(&["batch", ".", "--threads", "2"], &dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let one = std::fs::read_to_string(dir.join("one.prio.dag")).unwrap();
    assert!(one.contains("VARS c jobpriority=\"5\""));
    let two = std::fs::read_to_string(dir.join("two.prio.dag")).unwrap();
    assert!(two.contains("jobpriority=\"2\""));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 prioritized, 0 failed"), "{stderr}");
}

#[test]
fn batch_continues_past_bad_files_and_exits_nonzero() {
    let dir = tempdir("batchbad");
    std::fs::write(dir.join("good.dag"), FIG3).unwrap();
    std::fs::write(dir.join("bad.dag"), "JOB incomplete\n").unwrap();
    let out = prio(&["batch", "."], &dir);
    assert_eq!(out.status.code(), Some(1), "input failures exit 1");
    // The good file was still written.
    assert!(dir.join("good.prio.dag").exists());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 prioritized, 1 failed"), "{stderr}");
    assert!(stderr.contains("parse:"), "{stderr}");
}

#[test]
fn batch_of_empty_directory_is_an_input_error() {
    let dir = tempdir("batchempty");
    let out = prio(&["batch", "."], &dir);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no workflow files"));
}

#[test]
fn threaded_instrument_matches_serial() {
    let dir = tempdir("threadedinstr");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let serial = prio(&["instrument", "IV.dag", "--output", "s.dag"], &dir);
    assert!(serial.status.success());
    let threaded = prio(
        &[
            "instrument",
            "IV.dag",
            "--output",
            "t.dag",
            "--threads",
            "4",
        ],
        &dir,
    );
    assert!(threaded.status.success());
    let s = std::fs::read_to_string(dir.join("s.dag")).unwrap();
    let t = std::fs::read_to_string(dir.join("t.dag")).unwrap();
    assert_eq!(s, t, "--threads must not change the output");
}

#[test]
fn help_exits_zero() {
    let dir = tempdir("help");
    let out = prio(&["help"], &dir);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn cyclic_dagman_file_is_rejected() {
    let dir = tempdir("cycle");
    std::fs::write(
        dir.join("cyc.dag"),
        "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\nPARENT b CHILD a\n",
    )
    .unwrap();
    let out = prio(&["schedule", "cyc.dag"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cycle"));
}

#[test]
fn convert_between_all_formats_preserves_the_schedule() {
    let dir = tempdir("convert");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["convert", "IV.dag", "IV.json"], &dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = prio(&["convert", "IV.json", "IV.edges"], &dir);
    assert!(out.status.success());
    let reference = prio(&["schedule", "IV.dag"], &dir);
    for converted in ["IV.json", "IV.edges"] {
        let out = prio(&["schedule", converted], &dir);
        assert!(out.status.success(), "schedule {converted} failed");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&reference.stdout),
            "{converted}: schedule diverged from the DAGMan original"
        );
    }
}

#[test]
fn convert_to_stdout_requires_to_flag() {
    let dir = tempdir("convertstdout");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["convert", "IV.dag", "-"], &dir);
    assert_eq!(out.status.code(), Some(2));
    let out = prio(&["convert", "IV.dag", "-", "--to", "edges"], &dir);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("a\tb"));
}

#[test]
fn run_alias_instruments_json_workflows() {
    let dir = tempdir("runjson");
    std::fs::write(dir.join("IV.dag"), FIG3).unwrap();
    let out = prio(&["convert", "IV.dag", "IV.json"], &dir);
    assert!(out.status.success());
    let out = prio(&["run", "IV.json"], &dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(dir.join("IV.prio.json")).unwrap();
    // Same Condor convention as the DAGMan path: c first (priority 5).
    assert!(text.contains("\"name\": \"c\", \"priority\": 5"), "{text}");
    // The prioritized JSON file re-parses and schedules identically.
    let a = prio(&["schedule", "IV.prio.json"], &dir);
    let b = prio(&["schedule", "IV.dag"], &dir);
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout)
    );
}

#[test]
fn format_flag_overrides_extension_detection() {
    let dir = tempdir("formatflag");
    // An edge list hiding under a .txt extension.
    std::fs::write(dir.join("g.txt"), "a\tb\nb\tc\n").unwrap();
    let out = prio(&["schedule", "g.txt", "--format", "edges"], &dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 3);
    // An unknown --format value is a usage error.
    let out = prio(&["schedule", "g.txt", "--format", "nope"], &dir);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn batch_prioritizes_mixed_formats() {
    let dir = tempdir("batchmixed");
    std::fs::write(dir.join("one.dag"), FIG3).unwrap();
    std::fs::write(dir.join("two.edges"), "a\tb\na\tc\n").unwrap();
    let out = prio(&["batch", "."], &dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("one.prio.dag").exists());
    let edges = std::fs::read_to_string(dir.join("two.prio.edges")).unwrap();
    assert!(edges.contains("@priority\ta\t3"), "{edges}");
    // Re-running skips the .prio.* outputs (idempotent).
    let out = prio(&["batch", "."], &dir);
    assert!(out.status.success());
    assert!(!dir.join("one.prio.prio.dag").exists());
    assert!(!dir.join("two.prio.prio.edges").exists());
}
