//! End-to-end tests of the observability runtime: the bounded async
//! trace pipeline behind `--trace-out`, `--trace-ring`/`--trace-sample`,
//! the drop-accounting `meta` record, the `prio report`/`prio trace`
//! loss warnings, and the `--metrics-out` Prometheus snapshot.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn prio(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_prio"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prio-obs-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs `prio simulate --trace-out trace.jsonl` with minimal replication
/// (the trace phase is what is under test) plus `extra` flags.
fn simulate_traced(dir: &Path, extra: &[&str]) -> Output {
    let mut args = vec![
        "simulate",
        "--workload",
        "airsn",
        "--scale",
        "0.3",
        "--mu-bit",
        "0.3",
        "--mu-bs",
        "8",
        "--p",
        "2",
        "--q",
        "1",
        "--trace-out",
        "trace.jsonl",
    ];
    args.extend_from_slice(extra);
    prio(&args, dir)
}

/// Extracts `"key":<u64>` from the trailing `trace_pipeline` meta line.
fn pipeline_field(trace: &str, key: &str) -> u64 {
    let line = trace
        .lines()
        .find(|l| l.contains("\"command\":\"trace_pipeline\""))
        .expect("drop-accounting meta record present");
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag).expect("field present") + tag.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn full_rate_trace_drops_nothing_and_report_stays_quiet() {
    let dir = tempdir("full-rate");
    let out = simulate_traced(&dir, &[]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("WARNING"), "no loss warning: {stderr}");

    let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
    assert_eq!(pipeline_field(&trace, "dropped"), 0);
    assert_eq!(pipeline_field(&trace, "sample"), 1);
    assert_eq!(
        pipeline_field(&trace, "enqueued"),
        pipeline_field(&trace, "written"),
        "every enqueued line reached the file"
    );
    assert!(
        pipeline_field(&trace, "written") > 100,
        "the trace actually carries events"
    );

    let report = prio(&["report", "trace.jsonl"], &dir);
    assert!(report.status.success());
    let report_err = String::from_utf8_lossy(&report.stderr);
    assert!(!report_err.contains("WARNING"), "{report_err}");
    let report_out = String::from_utf8_lossy(&report.stdout);
    assert!(report_out.contains("trace_pipeline"), "{report_out}");
    assert!(!report_out.contains("lossy"), "{report_out}");
}

#[test]
fn tiny_ring_drops_events_and_report_warns_end_to_end() {
    let dir = tempdir("tiny-ring");
    // Capacity 2 is the smallest ring; every writer stall (buffer flush,
    // descheduling) opens a drop window while the simulator keeps
    // emitting. Retry a few seeds so the race cannot flake the test.
    let mut dropped = 0;
    for seed in ["1", "2", "3", "4", "5"] {
        let out = simulate_traced(&dir, &["--trace-ring", "2", "--seed", seed]);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        dropped = pipeline_field(&trace, "dropped");
        if dropped > 0 {
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("WARNING") && stderr.contains("lossy"),
                "simulate must warn loudly: {stderr}"
            );
            break;
        }
    }
    assert!(dropped > 0, "a 2-slot ring must drop events");

    // The loss survives the file round-trip: report warns on stderr and
    // tags the source in --json output.
    let report = prio(&["report", "trace.jsonl", "--json"], &dir);
    assert!(report.status.success());
    let stderr = String::from_utf8_lossy(&report.stderr);
    assert!(
        stderr.contains("WARNING") && stderr.contains("lossy"),
        "{stderr}"
    );
    let json = String::from_utf8_lossy(&report.stdout);
    assert!(json.contains("\"lossy\":true"), "{json}");
    assert!(
        json.contains(&format!("\"dropped_events\":{dropped}")),
        "{json}"
    );

    // Lifecycle analyses refuse to reconstruct from a lossy record.
    let curve = prio(&["trace", "curve", "trace.jsonl", "--out", "c.tsv"], &dir);
    assert_eq!(curve.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&curve.stderr).contains("lossy"));
}

#[test]
fn trace_sample_thins_job_events_and_tags_the_trace() {
    let dir = tempdir("sampled");
    let out = simulate_traced(&dir, &["--trace-sample", "8"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("sampling"),
        "simulate announces sampling"
    );
    let sampled = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
    assert_eq!(pipeline_field(&sampled, "sample"), 8);
    assert_eq!(pipeline_field(&sampled, "dropped"), 0);
    let job_events = |trace: &str| {
        trace
            .lines()
            .filter(|l| l.contains("\"type\":\"job_"))
            .count()
    };
    let sampled_jobs = job_events(&sampled);

    let dir_full = tempdir("sampled-baseline");
    let out = simulate_traced(&dir_full, &[]);
    assert!(out.status.success());
    let full = std::fs::read_to_string(dir_full.join("trace.jsonl")).unwrap();
    assert!(
        sampled_jobs * 4 < job_events(&full),
        "1/8 sampling must thin job events well below the full rate \
         ({sampled_jobs} vs {})",
        job_events(&full)
    );
    // Aggregate telemetry stays exact: the ts digests are identical.
    fn ts_lines(trace: &str) -> Vec<&str> {
        trace
            .lines()
            .filter(|l| l.contains("\"type\":\"ts\""))
            .collect()
    }
    assert_eq!(ts_lines(&sampled), ts_lines(&full));

    // Report notes the sampling; the curve analysis scales estimates;
    // critical-path refuses the incomplete lifecycle record.
    let report = prio(&["report", "trace.jsonl"], &dir);
    assert!(report.status.success());
    assert!(String::from_utf8_lossy(&report.stderr).contains("sampled"));
    let curve = prio(&["trace", "curve", "trace.jsonl", "--out", "c.tsv"], &dir);
    assert!(
        curve.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&curve.stderr)
    );
    assert!(String::from_utf8_lossy(&curve.stderr).contains("estimates"));
    let cp = prio(&["trace", "critical-path", "trace.jsonl"], &dir);
    assert_eq!(cp.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&cp.stderr).contains("sampled"));
}

#[test]
fn metrics_out_writes_a_prometheus_snapshot() {
    let dir = tempdir("metrics-out");
    let out = simulate_traced(&dir, &["--metrics-out", "metrics.prom"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snapshot = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(snapshot.contains("# TYPE"), "{snapshot}");
    assert!(
        snapshot.lines().any(|l| l.starts_with("prio_")),
        "metric names carry the prio_ prefix: {snapshot}"
    );
    assert!(
        snapshot.contains("prio_obs_sink_dropped_events 0"),
        "the drop counter is exported (and zero on a healthy run): {snapshot}"
    );

    // The flag is global: it works on non-simulate subcommands too.
    let out = prio(
        &[
            "stats",
            "--workload",
            "airsn",
            "--scale",
            "0.05",
            "--metrics-out",
            "stats.prom",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("stats.prom").exists());

    // An unwritable path surfaces as an input error, not a silent skip.
    let out = prio(
        &[
            "stats",
            "--workload",
            "airsn",
            "--scale",
            "0.05",
            "--metrics-out",
            "no/such/dir/m.prom",
        ],
        &dir,
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("m.prom"));
}
