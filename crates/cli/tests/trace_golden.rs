//! Golden-output tests for `prio trace`: a fixed-seed `prio simulate
//! --trace-out` run must produce byte-stable `timeline --json` and
//! `diff --json` documents, pinned by `tests/golden/trace_timeline.json`
//! and `tests/golden/trace_diff.json`. The lifecycle analysis reads only
//! deterministic event records, so the whole document is pinned (unlike
//! `prio report`, which mixes in wall-clock spans), and a companion test
//! asserts the output is invariant under the replication thread count.

use prio_obs::json::parse;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn prio(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_prio"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prio-trace-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The same twelve-job double-diamond dag the report goldens use.
const DAG: &str = "\
JOB j0 j0.submit
JOB j1 j1.submit
JOB j2 j2.submit
JOB j3 j3.submit
JOB j4 j4.submit
JOB j5 j5.submit
JOB j6 j6.submit
JOB j7 j7.submit
JOB j8 j8.submit
JOB j9 j9.submit
JOB j10 j10.submit
JOB j11 j11.submit
PARENT j0 CHILD j1 j2 j3 j4
PARENT j1 CHILD j5
PARENT j2 CHILD j5
PARENT j3 CHILD j6
PARENT j4 CHILD j6
PARENT j5 CHILD j7 j8
PARENT j6 CHILD j9 j10
PARENT j7 CHILD j11
PARENT j8 CHILD j11
PARENT j9 CHILD j11
PARENT j10 CHILD j11
";

fn simulate(dir: &Path, extra: &[&str], out_name: &str) -> PathBuf {
    std::fs::write(dir.join("fixed.dag"), DAG).unwrap();
    let mut args = vec![
        "simulate",
        "fixed.dag",
        "--mu-bit",
        "0.7",
        "--mu-bs",
        "3",
        "--p",
        "2",
        "--q",
        "2",
        "--seed",
        "7",
        "--trace-out",
        out_name,
    ];
    args.extend_from_slice(extra);
    let out = prio(&args, dir);
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir.join(out_name)
}

fn stdout_of(out: Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn timeline_json_matches_golden() {
    let dir = tempdir("timeline");
    simulate(&dir, &[], "trace.jsonl");
    let stdout = stdout_of(
        prio(&["trace", "timeline", "trace.jsonl", "--json"], &dir),
        "timeline",
    );
    let doc = parse(stdout.trim()).expect("timeline --json emits valid JSON");
    let golden = parse(include_str!("golden/trace_timeline.json")).expect("golden parses");
    assert_eq!(
        doc.get("segments"),
        golden.get("segments"),
        "timeline diverged from tests/golden/trace_timeline.json — if the simulator or \
         schema changed intentionally, regenerate the golden file from this test's \
         `prio trace timeline --json` output"
    );
}

#[test]
fn diff_json_matches_golden() {
    let dir = tempdir("diff");
    simulate(&dir, &[], "trace.jsonl");
    // Diff the prio segment against the fifo segment of the same run.
    let stdout = stdout_of(
        prio(
            &[
                "trace",
                "diff",
                "trace.jsonl",
                "trace.jsonl",
                "--policy-a",
                "prio",
                "--policy-b",
                "fifo",
                "--json",
            ],
            &dir,
        ),
        "diff",
    );
    let doc = parse(stdout.trim()).expect("diff --json emits valid JSON");
    let golden = parse(include_str!("golden/trace_diff.json")).expect("golden parses");
    for key in ["attribution", "jobs"] {
        assert_eq!(
            doc.get(key),
            golden.get(key),
            "diff section {key:?} diverged from tests/golden/trace_diff.json — if the \
             simulator or schema changed intentionally, regenerate the golden file from \
             this test's `prio trace diff --json` output"
        );
    }
}

#[test]
fn trace_analyses_are_invariant_under_thread_count() {
    let dir = tempdir("threads");
    simulate(&dir, &["--threads", "1"], "one.jsonl");
    simulate(&dir, &["--threads", "4"], "four.jsonl");
    for sub in [&["timeline"][..], &["critical-path"][..]] {
        let mut args_a = vec!["trace"];
        args_a.extend_from_slice(sub);
        args_a.extend_from_slice(&["one.jsonl", "--json"]);
        let mut args_b = vec!["trace"];
        args_b.extend_from_slice(sub);
        args_b.extend_from_slice(&["four.jsonl", "--json"]);
        let a = stdout_of(prio(&args_a, &dir), sub[0]);
        let b = stdout_of(prio(&args_b, &dir), sub[0]);
        // Only the path name differs between the two documents.
        assert_eq!(
            a.replace("one.jsonl", "X"),
            b.replace("four.jsonl", "X"),
            "{} must not depend on the replication thread count",
            sub[0]
        );
    }
}

#[test]
fn curve_tsv_matches_compare_format_and_verifies() {
    let dir = tempdir("curve");
    simulate(&dir, &[], "trace.jsonl");
    let out = prio(
        &["trace", "curve", "trace.jsonl", "--out", "curve.tsv"],
        &dir,
    );
    assert!(
        out.status.success(),
        "curve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("verified against"),
        "curve must verify the reconstruction against recorded samples: {stderr}"
    );
    let tsv = std::fs::read_to_string(dir.join("curve.tsv")).unwrap();
    let mut lines = tsv.lines();
    assert_eq!(
        lines.next(),
        Some("t\tt_normalized\tdiff\tdiff_normalized"),
        "header must match the fig4 TSV format"
    );
    let first = lines.next().expect("at least one data row");
    assert_eq!(first.split('\t').count(), 4);
}

#[test]
fn trace_rejects_missing_garbage_and_eventless_input() {
    let dir = tempdir("errors");
    let out = prio(&["trace", "timeline", "nope.jsonl"], &dir);
    assert_eq!(out.status.code(), Some(1), "missing file is an input error");
    std::fs::write(dir.join("bad.jsonl"), "not json\n").unwrap();
    let out = prio(&["trace", "timeline", "bad.jsonl"], &dir);
    assert_eq!(out.status.code(), Some(1));
    std::fs::write(dir.join("empty.jsonl"), "{\"type\":\"meta\",\"v\":3}\n").unwrap();
    let out = prio(&["trace", "timeline", "empty.jsonl"], &dir);
    assert_eq!(
        out.status.code(),
        Some(1),
        "eventless trace is an input error"
    );
    let out = prio(&["trace", "frobnicate"], &dir);
    assert_eq!(out.status.code(), Some(2), "unknown subcommand is usage");
    let out = prio(&["trace"], &dir);
    assert_eq!(out.status.code(), Some(2), "missing subcommand is usage");
    let out = prio(&["trace", "curve", "bad.jsonl"], &dir);
    assert_eq!(out.status.code(), Some(2), "curve without --out is usage");
}
