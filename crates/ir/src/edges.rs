//! The whitespace/TSV edge-list frontend — the serve-path ingest format.
//!
//! One record per line; fields split on tabs when the line contains one
//! (so job names may contain spaces), otherwise on any whitespace:
//!
//! ```text
//! # comment
//! node                     declares a job (idempotent)
//! parent<TAB>child         declares the arc (and both jobs)
//! @priority<TAB>job<TAB>5  assigns a priority
//! ```
//!
//! The export is canonical: every job declared first in index order (so
//! re-import preserves job numbering even for jobs only mentioned in
//! arcs), then the arcs in index order, then the `@priority` lines —
//! all tab-separated.

use crate::error::{ImportError, PrioError};
use crate::frontend::Frontend;
use crate::workflow::{FormatId, Priorities, Workflow, WorkflowBuilder};
use std::fmt::Write as _;

/// The directive that assigns a job priority.
pub const PRIORITY_DIRECTIVE: &str = "@priority";

/// The edge-list frontend.
pub struct EdgesFrontend;

fn err(line: usize, message: impl Into<String>) -> PrioError {
    ImportError::at(FormatId::Edges, line, message).into()
}

/// Splits one record: on tabs when present (TSV, names may contain
/// spaces), otherwise on whitespace runs.
fn fields(line: &str) -> Vec<&str> {
    if line.contains('\t') {
        line.split('\t')
            .map(str::trim)
            .filter(|f| !f.is_empty())
            .collect()
    } else {
        line.split_whitespace().collect()
    }
}

impl Frontend for EdgesFrontend {
    fn id(&self) -> FormatId {
        FormatId::Edges
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["edges", "tsv"]
    }

    fn sniff(&self, text: &str) -> bool {
        // Permissive fallback: every early non-blank line is a comment, a
        // directive, or a 1–2 field record. Register this frontend last.
        let mut saw_record = false;
        for line in text.lines().take(50) {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let f = fields(line);
            match f.first() {
                Some(&PRIORITY_DIRECTIVE) if f.len() == 3 => saw_record = true,
                _ if f.len() <= 2 => saw_record = true,
                _ => return false,
            }
        }
        saw_record
    }

    fn import(&self, text: &str) -> Result<Workflow, PrioError> {
        let _span = prio_obs::span(prio_obs::stage::PARSE);
        let mut b = WorkflowBuilder::with_capacity(FormatId::Edges, 0, text.lines().count());
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            // Split the raw line, not the trimmed one: a trailing tab is
            // how the exporter marks a single TSV field with spaces.
            let f = fields(raw);
            match f.as_slice() {
                [PRIORITY_DIRECTIVE, job, value] => {
                    let p: i64 = value.parse().map_err(|_| {
                        err(
                            line,
                            format!("{PRIORITY_DIRECTIVE} value must be an integer"),
                        )
                    })?;
                    let u = b.get(job).ok_or_else(|| {
                        err(
                            line,
                            format!("{PRIORITY_DIRECTIVE} names unknown job {job:?}"),
                        )
                    })?;
                    b.set_priority(u, p);
                }
                [directive, ..] if directive.starts_with('@') => {
                    return Err(err(line, format!("unknown directive {directive:?}")));
                }
                [node] => {
                    b.job(node);
                }
                [parent, child] => {
                    let pu = b.job(parent);
                    let cu = b.job(child);
                    b.arc(pu, cu).map_err(|e| err(line, e.to_string()))?;
                }
                _ => {
                    return Err(err(
                        line,
                        format!("expected 1–2 fields or a directive, got {}", f.len()),
                    ));
                }
            }
        }
        let wf = b.build()?;
        prio_obs::counter("edges.parse.files").add(1);
        prio_obs::counter("edges.parse.jobs").add(wf.num_jobs() as u64);
        prio_obs::counter("edges.parse.arcs").add(wf.num_arcs() as u64);
        Ok(wf)
    }

    fn export(&self, workflow: &Workflow, priorities: &Priorities) -> String {
        let _span = prio_obs::span(prio_obs::stage::WRITE);
        let mut out = String::with_capacity(workflow.num_nodes() * 16);
        out.push_str("# prio workflow edge list: node | parent\tchild | @priority\tjob\tvalue\n");
        for u in workflow.node_ids() {
            let name = workflow.job_name(u);
            if name.contains(char::is_whitespace) {
                // A trailing tab forces TSV splitting on re-import, so the
                // single field keeps its internal spaces.
                let _ = writeln!(out, "{name}\t");
            } else {
                let _ = writeln!(out, "{name}");
            }
        }
        for u in workflow.node_ids() {
            for &c in workflow.children(u) {
                let _ = writeln!(out, "{}\t{}", workflow.job_name(u), workflow.job_name(c));
            }
        }
        for (u, p) in priorities.iter() {
            let _ = writeln!(out, "{PRIORITY_DIRECTIVE}\t{}\t{p}", workflow.job_name(u));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::NodeId;

    #[test]
    fn parses_mixed_whitespace_and_tsv() {
        let text = "# demo\nroot\na b\nb\tc\n@priority\ta\t7\n\n";
        let wf = EdgesFrontend.import(text).unwrap();
        assert_eq!(wf.num_jobs(), 4); // root, a, b, c
        assert_eq!(wf.num_arcs(), 2);
        assert_eq!(wf.job_name(NodeId(0)), "root");
        let a = wf.find("a").unwrap();
        assert_eq!(wf.priorities().get(a), Some(7));
    }

    #[test]
    fn tsv_names_may_contain_spaces() {
        let text = "stage one\tstage two\n@priority\tstage one\t2\n";
        let wf = EdgesFrontend.import(text).unwrap();
        assert_eq!(wf.num_jobs(), 2);
        assert_eq!(wf.job_name(NodeId(0)), "stage one");
        assert_eq!(wf.priorities().get(NodeId(0)), Some(2));
    }

    #[test]
    fn export_import_round_trips_content() {
        let mut b = WorkflowBuilder::new(FormatId::Edges);
        let ids: Vec<NodeId> = ["sink only", "a", "b"].iter().map(|n| b.job(n)).collect();
        b.arc(ids[1], ids[0]).unwrap();
        b.arc(ids[1], ids[2]).unwrap();
        b.set_priority(ids[1], 3);
        let wf = b.build().unwrap();

        let f = EdgesFrontend;
        let text = f.export(&wf, wf.priorities());
        let back = f.import(&text).unwrap();
        assert!(wf.same_content(&back), "round-trip changed the workflow");
        assert_eq!(f.export(&back, back.priorities()), text);
    }

    #[test]
    fn errors_carry_line_and_format_provenance() {
        let cases = [
            ("a\tb\tc\n", "line 1"),
            ("a\n@priority\ta\tx\n", "line 2"),
            ("@priority\tghost\t1\n", "line 1"),
            ("@wat\ta\n", "line 1"),
            ("a\na\ta\n", "line 2"), // self-loop
        ];
        for (text, frag) in cases {
            let e = EdgesFrontend.import(text).unwrap_err();
            let msg = e.to_string();
            assert!(
                msg.starts_with("parse: edges:") && msg.contains(frag),
                "bad provenance for {text:?}: {msg}"
            );
        }
    }

    #[test]
    fn sniff_is_permissive_but_not_blind() {
        assert!(EdgesFrontend.sniff("a\tb\n"));
        assert!(EdgesFrontend.sniff("# only comments then\nnode\n"));
        assert!(EdgesFrontend.sniff("@priority\ta\t1\n"));
        assert!(!EdgesFrontend.sniff(""));
        assert!(!EdgesFrontend.sniff("# comments only\n"));
        assert!(!EdgesFrontend.sniff("JOB a a.submit\nPARENT a CHILD b\n"));
    }

    #[test]
    fn declaration_order_is_preserved_through_export() {
        // A job that appears only as an arc endpoint later must still be
        // re-imported at the same index, because the export declares every
        // node before the first arc.
        let mut b = WorkflowBuilder::new(FormatId::Edges);
        let z = b.job("z");
        let a = b.job("a");
        b.arc(a, z).unwrap();
        let wf = b.build().unwrap();
        let text = EdgesFrontend.export(&wf, wf.priorities());
        let back = EdgesFrontend.import(&text).unwrap();
        assert_eq!(back.job_name(NodeId(0)), "z");
        assert_eq!(back.job_name(NodeId(1)), "a");
    }
}
