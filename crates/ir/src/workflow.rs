//! The workflow IR: a CSR dag of interned job names plus priorities and
//! sparse per-job metadata, tagged with the format it came from.
//!
//! Every frontend imports into a [`Workflow`] and exports from one, so the
//! PRIO pipeline (`prio-core`), the simulator and the benches never see
//! format-specific ASTs. A `Workflow` dereferences to its [`Dag`], so any
//! API taking `&Dag` accepts `&Workflow` unchanged.

use crate::error::{ImportError, PrioError};
use prio_graph::{Dag, DagBuilder, GraphError, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;

/// Identifies a workflow format (one frontend each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatId {
    /// Condor DAGMan input files (`JOB` / `PARENT … CHILD`).
    Dagman,
    /// The Makeflow/JSON-style graph format (`prio-workflow-v1`).
    Json,
    /// Whitespace/TSV edge lists (the serve-path ingest format).
    Edges,
    /// Built in memory by a generator, not parsed from text.
    Synthetic,
}

impl FormatId {
    /// The canonical lowercase name (CLI `--format` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            FormatId::Dagman => "dagman",
            FormatId::Json => "json",
            FormatId::Edges => "edges",
            FormatId::Synthetic => "synthetic",
        }
    }

    /// Parses a `--format` name (case-insensitive). `auto` and
    /// `synthetic` are not importable formats and return `None`.
    pub fn from_name(name: &str) -> Option<FormatId> {
        match name.to_ascii_lowercase().as_str() {
            "dagman" | "dag" => Some(FormatId::Dagman),
            "json" => Some(FormatId::Json),
            "edges" | "edge-list" | "tsv" => Some(FormatId::Edges),
            _ => None,
        }
    }

    /// The conventional file extension for the format.
    pub fn extension(self) -> &'static str {
        match self {
            FormatId::Dagman => "dag",
            FormatId::Json => "json",
            FormatId::Edges => "edges",
            FormatId::Synthetic => "dag",
        }
    }
}

impl fmt::Display for FormatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-job priorities, indexed by [`NodeId`]. Jobs without an assigned
/// priority are `None`; exporters omit them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Priorities {
    values: Vec<Option<i64>>,
}

impl Priorities {
    /// No priorities assigned, for a workflow of `n` jobs.
    pub fn none(n: usize) -> Priorities {
        Priorities {
            values: vec![None; n],
        }
    }

    /// Condor-style priorities from a schedule order over `n` jobs: the
    /// job at position 0 (executed first) gets priority `n`, the last
    /// gets 1. Jobs missing from `order` stay unassigned.
    pub fn from_order(order: &[NodeId], n: usize) -> Priorities {
        let mut p = Priorities::none(n);
        let total = order.len() as i64;
        for (i, &u) in order.iter().enumerate() {
            p.set(u, total - i as i64);
        }
        p
    }

    /// The priority of job `u`, if assigned.
    pub fn get(&self, u: NodeId) -> Option<i64> {
        self.values.get(u.index()).copied().flatten()
    }

    /// Assigns the priority of job `u`, growing the vector as needed.
    pub fn set(&mut self, u: NodeId, priority: i64) {
        if u.index() >= self.values.len() {
            self.values.resize(u.index() + 1, None);
        }
        self.values[u.index()] = Some(priority);
    }

    /// Number of slots (equals the workflow's job count after import).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no job has an assigned priority.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(Option::is_none)
    }

    /// Iterates over the assigned `(job, priority)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, i64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (NodeId(i as u32), p)))
    }
}

/// A format-agnostic workflow: the dependency dag, the format it came
/// from, any priorities the input carried, and sparse per-job string
/// metadata (e.g. a DAGMan submit file that differs from the
/// `<name>.submit` default).
///
/// Dereferences to [`Dag`], so `&Workflow` coerces to `&Dag` at any call
/// site expecting the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    dag: Dag,
    source: FormatId,
    priorities: Priorities,
    /// `(job index, key) -> value`, sparse.
    meta: BTreeMap<(u32, String), String>,
}

impl Workflow {
    /// Wraps a generator-built dag (no text source).
    pub fn synthetic(dag: Dag) -> Workflow {
        let n = dag.num_nodes();
        Workflow {
            dag,
            source: FormatId::Synthetic,
            priorities: Priorities::none(n),
            meta: BTreeMap::new(),
        }
    }

    /// The dependency dag.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Consumes the workflow, returning the dag.
    pub fn into_dag(self) -> Dag {
        self.dag
    }

    /// The format the workflow was imported from.
    pub fn source(&self) -> FormatId {
        self.source
    }

    /// Priorities the input carried (empty unless the source assigned
    /// some).
    pub fn priorities(&self) -> &Priorities {
        &self.priorities
    }

    /// Replaces the carried priorities (e.g. after running the PRIO
    /// pipeline).
    pub fn set_priorities(&mut self, priorities: Priorities) {
        self.priorities = priorities;
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.dag.num_nodes()
    }

    /// The name of job `u`.
    pub fn job_name(&self, u: NodeId) -> &str {
        self.dag.label(u)
    }

    /// Looks up metadata `key` for job `u`.
    pub fn meta(&self, u: NodeId, key: &str) -> Option<&str> {
        self.meta.get(&(u.0, key.to_string())).map(String::as_str)
    }

    /// Sets metadata `key` for job `u`.
    pub fn set_meta(&mut self, u: NodeId, key: impl Into<String>, value: impl Into<String>) {
        self.meta.insert((u.0, key.into()), value.into());
    }

    /// Iterates over job `u`'s metadata in key order.
    pub fn meta_of(&self, u: NodeId) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.meta
            .range((u.0, String::new())..(u.0 + 1, String::new()))
            .map(|((_, k), v)| (k.as_str(), v.as_str()))
    }

    /// Structural + carried-data equality ignoring [`Workflow::source`]:
    /// same jobs in the same order, same arcs, same priorities, same
    /// metadata. This is the invariant cross-format conversion preserves
    /// (the source tag necessarily changes).
    pub fn same_content(&self, other: &Workflow) -> bool {
        self.dag == other.dag && self.priorities == other.priorities && self.meta == other.meta
    }
}

impl Deref for Workflow {
    type Target = Dag;

    fn deref(&self) -> &Dag {
        &self.dag
    }
}

/// Incrementally assembles a [`Workflow`]: get-or-insert jobs by name,
/// arcs by id, sparse priorities and metadata. Wraps the CSR-friendly
/// [`DagBuilder`]; frontends layer duplicate checks and line numbers on
/// top (via [`WorkflowBuilder::get`]) so errors carry their own format
/// provenance.
pub struct WorkflowBuilder {
    source: FormatId,
    dag: DagBuilder,
    num_arcs: usize,
    priorities: Vec<(NodeId, i64)>,
    meta: Vec<(NodeId, String, String)>,
}

impl WorkflowBuilder {
    /// An empty builder for a workflow of format `source`.
    pub fn new(source: FormatId) -> WorkflowBuilder {
        Self::with_capacity(source, 0, 0)
    }

    /// An empty builder expecting roughly `jobs` jobs and `arcs` arcs.
    pub fn with_capacity(source: FormatId, jobs: usize, arcs: usize) -> WorkflowBuilder {
        WorkflowBuilder {
            source,
            dag: DagBuilder::with_capacity(jobs, arcs),
            num_arcs: 0,
            priorities: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Returns the job named `name`, inserting it on first mention.
    pub fn job(&mut self, name: &str) -> NodeId {
        self.dag.node_for_label(name)
    }

    /// Looks a job up without inserting.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.dag.get(name)
    }

    /// Number of jobs added so far.
    pub fn num_jobs(&self) -> usize {
        self.dag.num_nodes()
    }

    /// Adds the dependency arc `parent -> child`.
    pub fn arc(&mut self, parent: NodeId, child: NodeId) -> Result<(), GraphError> {
        self.dag.add_arc(parent, child)?;
        self.num_arcs += 1;
        Ok(())
    }

    /// Assigns job `u`'s priority (last assignment wins).
    pub fn set_priority(&mut self, u: NodeId, priority: i64) {
        self.priorities.push((u, priority));
    }

    /// Attaches metadata to job `u`.
    pub fn set_meta(&mut self, u: NodeId, key: impl Into<String>, value: impl Into<String>) {
        self.meta.push((u, key.into(), value.into()));
    }

    /// Finalizes the workflow, verifying acyclicity, and records the
    /// `ir.import.{jobs,arcs}` counters.
    pub fn build(self) -> Result<Workflow, PrioError> {
        // A cycle is an *input* defect, so it carries the source format's
        // provenance rather than surfacing as a bare graph error.
        let source = self.source;
        let dag = self
            .dag
            .build()
            .map_err(|e| ImportError::whole_file(source, e.to_string()))?;
        prio_obs::counter("ir.import.jobs").add(dag.num_nodes() as u64);
        prio_obs::counter("ir.import.arcs").add(dag.num_arcs() as u64);
        let mut wf = Workflow {
            priorities: Priorities::none(dag.num_nodes()),
            dag,
            source: self.source,
            meta: BTreeMap::new(),
        };
        for (u, p) in self.priorities {
            wf.priorities.set(u, p);
        }
        for (u, k, v) in self.meta {
            wf.set_meta(u, k, v);
        }
        Ok(wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> Workflow {
        let mut b = WorkflowBuilder::new(FormatId::Edges);
        let ids: Vec<NodeId> = ["a", "b", "c", "d", "e"].iter().map(|n| b.job(n)).collect();
        b.arc(ids[0], ids[1]).unwrap();
        b.arc(ids[2], ids[3]).unwrap();
        b.arc(ids[2], ids[4]).unwrap();
        b.set_priority(ids[2], 5);
        b.set_meta(ids[0], "submit", "custom.sub");
        b.build().unwrap()
    }

    #[test]
    fn builder_round_trips_structure() {
        let wf = fig3();
        assert_eq!(wf.num_jobs(), 5);
        assert_eq!(wf.num_arcs(), 3);
        assert_eq!(wf.source(), FormatId::Edges);
        assert_eq!(wf.job_name(NodeId(0)), "a");
        assert_eq!(wf.priorities().get(NodeId(2)), Some(5));
        assert_eq!(wf.priorities().get(NodeId(0)), None);
        assert_eq!(wf.meta(NodeId(0), "submit"), Some("custom.sub"));
        assert_eq!(wf.meta(NodeId(1), "submit"), None);
    }

    #[test]
    fn deref_exposes_dag_methods() {
        let wf = fig3();
        // Call Dag methods through the Workflow directly.
        assert_eq!(wf.children(NodeId(2)).len(), 2);
        assert_eq!(wf.find("d"), Some(NodeId(3)));
        fn takes_dag(d: &Dag) -> usize {
            d.num_nodes()
        }
        assert_eq!(takes_dag(&fig3()), 5); // deref coercion
    }

    #[test]
    fn job_is_get_or_insert() {
        let mut b = WorkflowBuilder::new(FormatId::Edges);
        let a1 = b.job("a");
        let a2 = b.job("a");
        assert_eq!(a1, a2);
        assert_eq!(b.num_jobs(), 1);
        assert_eq!(b.get("a"), Some(a1));
        assert_eq!(b.get("zz"), None);
    }

    #[test]
    fn cycles_are_parse_stage_graph_errors() {
        let mut b = WorkflowBuilder::new(FormatId::Json);
        let a = b.job("a");
        let c = b.job("b");
        b.arc(a, c).unwrap();
        b.arc(c, a).unwrap();
        let err = b.build().unwrap_err();
        assert_eq!(err.stage(), crate::error::Stage::Parse);
        // Cycles are input defects: they surface as parse errors carrying
        // the source format's provenance.
        assert!(matches!(
            err,
            PrioError::Parse(ImportError {
                format: FormatId::Json,
                ..
            })
        ));
        assert!(err.to_string().starts_with("parse: json:"), "{err}");
    }

    #[test]
    fn import_counters_accumulate() {
        let jobs = prio_obs::counter("ir.import.jobs").get();
        let arcs = prio_obs::counter("ir.import.arcs").get();
        let _ = fig3();
        assert!(prio_obs::counter("ir.import.jobs").get() >= jobs + 5);
        assert!(prio_obs::counter("ir.import.arcs").get() >= arcs + 3);
    }

    #[test]
    fn priorities_from_order_matches_condor_convention() {
        let p = Priorities::from_order(&[NodeId(2), NodeId(0), NodeId(1)], 3);
        assert_eq!(p.get(NodeId(2)), Some(3));
        assert_eq!(p.get(NodeId(0)), Some(2));
        assert_eq!(p.get(NodeId(1)), Some(1));
        let pairs: Vec<(NodeId, i64)> = p.iter().collect();
        assert_eq!(pairs, vec![(NodeId(0), 2), (NodeId(1), 1), (NodeId(2), 3)]);
        assert!(!p.is_empty());
        assert!(Priorities::none(4).is_empty());
    }

    #[test]
    fn same_content_ignores_source_tag() {
        let a = fig3();
        let mut b = fig3();
        assert!(a.same_content(&b));
        b.set_priorities(Priorities::none(5));
        assert!(!a.same_content(&b));
    }

    #[test]
    fn format_names_round_trip() {
        for f in [FormatId::Dagman, FormatId::Json, FormatId::Edges] {
            assert_eq!(FormatId::from_name(f.name()), Some(f));
        }
        assert_eq!(FormatId::from_name("DAG"), Some(FormatId::Dagman));
        assert_eq!(FormatId::from_name("auto"), None);
        assert_eq!(FormatId::from_name("synthetic"), None);
        assert_eq!(FormatId::Dagman.extension(), "dag");
    }
}
