//! The workspace-wide error taxonomy of the PRIO pipeline.
//!
//! Every fallible step of the six-phase pipeline (parse → reduce →
//! decompose → schedule → combine → emit) reports a [`PrioError`] carrying
//! its [`Stage`] provenance, so callers — the facade's
//! `prioritize_dagman_text`, the CLI, the batch harness — can render *where*
//! a failure happened and map it onto an exit-code class:
//!
//! * **input errors** ([`PrioError::Parse`], [`PrioError::Graph`]) — the
//!   workflow text or dependency structure was invalid; the caller's data is
//!   at fault and retrying without fixing it cannot succeed. Parse errors
//!   additionally carry *frontend* provenance ([`ImportError::format`]):
//!   the message names which format's importer rejected the input and on
//!   which line;
//! * **internal invariant violations**
//!   ([`PrioError::InternalInvariant`]) — the pipeline produced something
//!   it promised it never would (e.g. an emit order that is not a linear
//!   extension). These surface as structured errors carrying the offending
//!   arc when one is known, so a long-running service loses one request,
//!   not the process.
//!
//! Stage names are shared with the observability spans
//! ([`prio_obs::stage`]), keeping error messages, `--timings` footers and
//! the §3.6 overhead table vocabulary identical.

use crate::workflow::FormatId;
use prio_graph::{GraphError, NodeId};
use std::fmt;

/// The pipeline stage an error originated in. Display equals the span
/// name recorded by that stage ([`prio_obs::stage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Workflow input-file parsing (any frontend).
    Parse,
    /// Shortcut removal (transitive reduction).
    Reduce,
    /// Decomposition into components plus the superdag.
    Decompose,
    /// Per-component scheduling.
    Schedule,
    /// Greedy component ordering.
    Combine,
    /// Emission and validation of the global job order.
    Emit,
}

impl Stage {
    /// The canonical stage name — identical to the span path segment the
    /// stage records ([`prio_obs::stage`]).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => prio_obs::stage::PARSE,
            Stage::Reduce => prio_obs::stage::REDUCE,
            Stage::Decompose => prio_obs::stage::DECOMPOSE,
            Stage::Schedule => prio_obs::stage::SCHEDULE,
            Stage::Combine => prio_obs::stage::COMBINE,
            Stage::Emit => prio_obs::stage::EMIT,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parse failure reported by one frontend, with format provenance.
///
/// Rendered as `<format>: line <n>: <message>` (the line is omitted when
/// the failure is not attributable to one line, e.g. a duplicate job
/// detected while assembling the dag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportError {
    /// The frontend whose importer rejected the input.
    pub format: FormatId,
    /// 1-based input line of the failure; `0` when the failure concerns
    /// the file as a whole.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ImportError {
    /// Constructs an import error localized to `line`.
    pub fn at(format: FormatId, line: usize, message: impl Into<String>) -> ImportError {
        ImportError {
            format,
            line,
            message: message.into(),
        }
    }

    /// Constructs a whole-file import error.
    pub fn whole_file(format: FormatId, message: impl Into<String>) -> ImportError {
        Self::at(format, 0, message)
    }
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.format, self.message)
        } else {
            write!(f, "{}: line {}: {}", self.format, self.line, self.message)
        }
    }
}

impl std::error::Error for ImportError {}

/// A structured, renderable error from the PRIO pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PrioError {
    /// The workflow text was malformed (stage `parse`), with the rejecting
    /// frontend's provenance.
    Parse(ImportError),
    /// The dependency structure was not a valid DAG.
    Graph {
        /// The stage that was building or transforming the graph.
        stage: Stage,
        /// The underlying graph error.
        error: GraphError,
    },
    /// The pipeline violated one of its own invariants — a bug surfaced as
    /// an error instead of a process abort.
    InternalInvariant {
        /// The stage whose invariant broke.
        stage: Stage,
        /// Human-readable description of the broken invariant.
        detail: String,
        /// The offending arc, when the violation is localized to one
        /// (e.g. a child emitted before its parent).
        arc: Option<(NodeId, NodeId)>,
    },
}

impl PrioError {
    /// Constructs an internal-invariant error.
    pub fn internal(stage: Stage, detail: impl Into<String>) -> PrioError {
        PrioError::InternalInvariant {
            stage,
            detail: detail.into(),
            arc: None,
        }
    }

    /// The stage the error originated in.
    pub fn stage(&self) -> Stage {
        match self {
            PrioError::Parse(_) => Stage::Parse,
            PrioError::Graph { stage, .. } => *stage,
            PrioError::InternalInvariant { stage, .. } => *stage,
        }
    }

    /// Whether this is a pipeline bug (as opposed to bad input). The CLI
    /// maps internal errors to exit code 70 (`EX_SOFTWARE`) and everything
    /// else to 1.
    pub fn is_internal(&self) -> bool {
        matches!(self, PrioError::InternalInvariant { .. })
    }
}

impl fmt::Display for PrioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrioError::Parse(e) => write!(f, "{}: {e}", Stage::Parse),
            PrioError::Graph { stage, error } => write!(f, "{stage}: {error}"),
            PrioError::InternalInvariant { stage, detail, arc } => {
                write!(f, "{stage}: internal invariant violated: {detail}")?;
                if let Some((u, v)) = arc {
                    write!(f, " (offending arc {} -> {})", u.0, v.0)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PrioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrioError::Parse(e) => Some(e),
            PrioError::Graph { error, .. } => Some(error),
            PrioError::InternalInvariant { .. } => None,
        }
    }
}

impl From<ImportError> for PrioError {
    fn from(e: ImportError) -> Self {
        PrioError::Parse(e)
    }
}

impl From<GraphError> for PrioError {
    fn from(e: GraphError) -> Self {
        // Graph construction happens while translating parsed input; later
        // stages only transform already-valid dags.
        PrioError::Graph {
            stage: Stage::Parse,
            error: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_span_vocabulary() {
        for (stage, name) in [
            (Stage::Parse, "parse"),
            (Stage::Reduce, "reduce"),
            (Stage::Decompose, "decompose"),
            (Stage::Schedule, "schedule"),
            (Stage::Combine, "combine"),
            (Stage::Emit, "emit"),
        ] {
            assert_eq!(stage.name(), name);
            assert_eq!(stage.to_string(), name);
            assert!(prio_obs::stage::PIPELINE.contains(&stage.name()));
        }
    }

    #[test]
    fn internal_invariant_renders_stage_and_arc() {
        let e = PrioError::InternalInvariant {
            stage: Stage::Emit,
            detail: "order is not a linear extension".into(),
            arc: Some((NodeId(3), NodeId(7))),
        };
        let msg = e.to_string();
        assert!(msg.contains("emit:"), "stage missing: {msg}");
        assert!(msg.contains("3 -> 7"), "arc missing: {msg}");
        assert!(e.is_internal());
        assert_eq!(e.stage(), Stage::Emit);
    }

    #[test]
    fn import_errors_carry_frontend_provenance() {
        let e: PrioError = ImportError::at(FormatId::Json, 4, "jobs must be an array").into();
        assert_eq!(e.stage(), Stage::Parse);
        assert!(!e.is_internal());
        let msg = e.to_string();
        assert!(msg.starts_with("parse:"), "stage prefix missing: {msg}");
        assert!(msg.contains("json:"), "format provenance missing: {msg}");
        assert!(msg.contains("line 4"), "line missing: {msg}");
        assert!(std::error::Error::source(&e).is_some());

        let whole = ImportError::whole_file(FormatId::Edges, "empty input");
        assert!(!whole.to_string().contains("line"));
        assert!(whole.to_string().starts_with("edges:"));
    }

    #[test]
    fn graph_errors_keep_parse_provenance() {
        let e: PrioError = GraphError::Cycle { on_cycle: 2 }.into();
        assert_eq!(e.stage(), Stage::Parse);
        assert!(e.to_string().contains("cycle"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
