//! # prio-ir — the format-agnostic workflow IR and frontend registry
//!
//! The paper's prioritization algorithm (transitive reduction →
//! decomposition → component scheduling → combine) is format-agnostic;
//! only the parse/emit edges are Condor-specific. This crate is the seam:
//!
//! * [`Workflow`] — the IR: a CSR dag of interned job names
//!   ([`intern::NameInterner`]), the priorities the input carried, sparse
//!   per-job metadata, and the [`FormatId`] it came from. It dereferences
//!   to [`prio_graph::Dag`], so the whole pipeline consumes `&Workflow`
//!   without knowing any concrete format;
//! * [`Frontend`] — one importer/exporter pair per format
//!   (`import(&str) -> Result<Workflow, PrioError>`,
//!   `export(&Workflow, &Priorities) -> String`), collected in a
//!   [`FormatRegistry`] with auto-detection by file extension and content
//!   sniff;
//! * two frontends live here: the Makeflow/JSON-style graph format
//!   ([`json::JsonFrontend`]) and the whitespace/TSV edge list
//!   ([`edges::EdgesFrontend`]). The DAGMan frontend lives in
//!   `prio-dagman` (downstream of this crate), whose `registry()` helper
//!   assembles all three;
//! * [`PrioError`] / [`Stage`] — the workspace error taxonomy, moved here
//!   from `prio-core` so the core no longer depends on any frontend.
//!   Parse failures carry per-frontend provenance ([`ImportError`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edges;
pub mod error;
pub mod frontend;
pub mod intern;
pub mod json;
pub mod workflow;

pub use edges::EdgesFrontend;
pub use error::{ImportError, PrioError, Stage};
pub use frontend::{FormatRegistry, Frontend};
pub use intern::{JobName, NameInterner};
pub use json::JsonFrontend;
pub use workflow::{FormatId, Priorities, Workflow, WorkflowBuilder};
