//! The frontend trait and the format registry.
//!
//! A *frontend* is one importer/exporter pair for a workflow text format.
//! The registry holds every available frontend and auto-detects which one
//! an input belongs to, first by file extension and then by content sniff
//! (in registration order, so put the most specific sniffers first and
//! the permissive edge-list last).

use crate::error::PrioError;
use crate::workflow::{FormatId, Priorities, Workflow};

/// One importer/exporter pair for a workflow text format.
///
/// Frontends are stateless (`Send + Sync`), so one registry can be
/// shared by every worker of a concurrent server.
pub trait Frontend: Send + Sync {
    /// The format this frontend handles.
    fn id(&self) -> FormatId;

    /// File extensions (lowercase, without the dot) conventionally used
    /// by the format.
    fn extensions(&self) -> &'static [&'static str];

    /// Cheap content test: does `text` look like this format? Used by
    /// [`FormatRegistry::detect`] when the extension is inconclusive.
    fn sniff(&self, text: &str) -> bool;

    /// Parses `text` into a [`Workflow`]. Errors carry the frontend's
    /// [`FormatId`] provenance.
    fn import(&self, text: &str) -> Result<Workflow, PrioError>;

    /// Serializes `workflow` (with the given priorities; unassigned jobs
    /// get no priority line/field) to the format's canonical text.
    ///
    /// Canonical means deterministic: exporting the same workflow and
    /// priorities twice yields byte-identical text, and re-importing an
    /// export yields a workflow with the same content
    /// ([`Workflow::same_content`]).
    fn export(&self, workflow: &Workflow, priorities: &Priorities) -> String;
}

/// All available frontends, with extension- and sniff-based detection.
#[derive(Default)]
pub struct FormatRegistry {
    frontends: Vec<Box<dyn Frontend>>,
}

impl FormatRegistry {
    /// An empty registry.
    pub fn new() -> FormatRegistry {
        FormatRegistry::default()
    }

    /// The registry of frontends defined by this crate (JSON and
    /// edge-list). The DAGMan frontend lives in `prio-dagman`; its
    /// `registry()` helper assembles the full set.
    pub fn with_builtins() -> FormatRegistry {
        let mut r = FormatRegistry::new();
        r.register(Box::new(crate::json::JsonFrontend));
        r.register(Box::new(crate::edges::EdgesFrontend));
        r
    }

    /// Adds a frontend. Detection order follows registration order.
    pub fn register(&mut self, frontend: Box<dyn Frontend>) {
        self.frontends.push(frontend);
    }

    /// Iterates over the registered frontends.
    pub fn frontends(&self) -> impl Iterator<Item = &dyn Frontend> {
        self.frontends.iter().map(Box::as_ref)
    }

    /// The frontend for `format`, if registered.
    pub fn get(&self, format: FormatId) -> Option<&dyn Frontend> {
        self.frontends().find(|f| f.id() == format)
    }

    /// The frontend named by a `--format` value (e.g. `"json"`).
    pub fn by_name(&self, name: &str) -> Option<&dyn Frontend> {
        self.get(FormatId::from_name(name)?)
    }

    /// Auto-detects the frontend for an input: first by the extension of
    /// `path` (when given), then by content sniff in registration order.
    pub fn detect(&self, path: Option<&str>, text: &str) -> Option<&dyn Frontend> {
        if let Some(ext) = path.and_then(extension_of) {
            let ext = ext.to_ascii_lowercase();
            if let Some(f) = self
                .frontends()
                .find(|f| f.extensions().contains(&ext.as_str()))
            {
                return Some(f);
            }
        }
        self.frontends().find(|f| f.sniff(text))
    }

    /// Detects by extension only (no content available yet, e.g. when
    /// picking an output format from a destination path).
    pub fn by_extension(&self, path: &str) -> Option<&dyn Frontend> {
        let ext = extension_of(path)?.to_ascii_lowercase();
        self.frontends()
            .find(|f| f.extensions().contains(&ext.as_str()))
    }
}

/// The extension of `path` (text after the final `.` of the final
/// component), if any.
fn extension_of(path: &str) -> Option<&str> {
    let name = path.rsplit(['/', '\\']).next()?;
    let (stem, ext) = name.rsplit_once('.')?;
    if stem.is_empty() || ext.is_empty() {
        None
    } else {
        Some(ext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_detects_by_extension_and_sniff() {
        let r = FormatRegistry::with_builtins();
        assert_eq!(r.get(FormatId::Json).map(|f| f.id()), Some(FormatId::Json));
        assert!(r.get(FormatId::Dagman).is_none(), "dagman lives upstream");
        assert_eq!(r.by_name("edges").map(|f| f.id()), Some(FormatId::Edges));
        assert!(r.by_name("auto").is_none());

        let json = r#"{"format":"prio-workflow-v1","jobs":[{"name":"a"}],"arcs":[]}"#;
        assert_eq!(
            r.detect(Some("wf.json"), json).map(|f| f.id()),
            Some(FormatId::Json)
        );
        // Extension wins over content.
        assert_eq!(
            r.detect(Some("wf.edges"), json).map(|f| f.id()),
            Some(FormatId::Edges)
        );
        // No extension: sniff.
        assert_eq!(r.detect(None, json).map(|f| f.id()), Some(FormatId::Json));
        assert_eq!(
            r.detect(None, "a\tb\n").map(|f| f.id()),
            Some(FormatId::Edges)
        );
    }

    #[test]
    fn extension_parsing_edge_cases() {
        assert_eq!(extension_of("a/b/wf.json"), Some("json"));
        assert_eq!(extension_of("wf.prio.dag"), Some("dag"));
        assert_eq!(extension_of("noext"), None);
        assert_eq!(extension_of(".hidden"), None);
        assert_eq!(extension_of("dir.d/noext"), None);
        assert_eq!(extension_of("trailingdot."), None);
    }
}
