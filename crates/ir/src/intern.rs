//! Job-name interning shared by every frontend.
//!
//! Moved here from the DAGMan parser so the JSON and edge-list frontends
//! (and the [`crate::workflow::WorkflowBuilder`]) can share one
//! allocation per distinct name token.

use std::collections::HashSet;
use std::hash::{BuildHasher, Hasher};

/// An interned job name.
///
/// Job names repeat across statements of every workflow format — on large
/// inputs almost every name token is a repeat (a declaration plus one or
/// more dependency mentions) — so statements share one reference-counted
/// allocation per distinct name instead of a fresh `String` per token.
pub type JobName = std::sync::Arc<str>;

/// Multiplicative hash over 8-byte chunks, chosen over the default SipHash
/// because name tokens are short and workflow files are trusted local input
/// (no hash-flooding concern) — the keyed SipHash setup cost alone outweighs
/// hashing a ~15-byte name, and byte-serial hashes (FNV) pay a dependent
/// multiply per byte.
pub struct NameHasher(u64);

const CHUNK_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for NameHasher {
    fn finish(&self) -> u64 {
        // The multiply pushes entropy toward the high bits but the table
        // indexes buckets by the low bits — sequential names like `job17`,
        // `job18` would cluster into long probe chains without a final
        // avalanche (splitmix64-style).
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h = (h.rotate_left(5) ^ v).wrapping_mul(CHUNK_SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        h = (h.rotate_left(5) ^ tail).wrapping_mul(CHUNK_SEED);
        self.0 = h;
    }
}

/// [`BuildHasher`] for [`NameHasher`]; usable as the hasher of any map or
/// set keyed by job names.
#[derive(Default, Clone)]
pub struct NameHashBuild;

impl BuildHasher for NameHashBuild {
    type Hasher = NameHasher;

    fn build_hasher(&self) -> NameHasher {
        NameHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// Deduplicates job-name allocations across statements: each distinct name
/// is allocated once and every later occurrence clones the shared
/// [`JobName`].
#[derive(Default)]
pub struct NameInterner(HashSet<JobName, NameHashBuild>);

impl NameInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the interned name for `token`, allocating only on the first
    /// occurrence.
    pub fn intern(&mut self, token: &str) -> JobName {
        if let Some(existing) = self.0.get(token) {
            existing.clone()
        } else {
            let name = JobName::from(token);
            self.0.insert(name.clone());
            name
        }
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_allocations() {
        let mut names = NameInterner::new();
        let a1 = names.intern("job17");
        let a2 = names.intern("job17");
        let b = names.intern("job18");
        assert!(JobName::ptr_eq(&a1, &a2));
        assert!(!JobName::ptr_eq(&a1, &b));
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn hasher_distinguishes_sequential_names() {
        use std::hash::BuildHasher;
        let build = NameHashBuild;
        let h = |s: &str| {
            let mut hasher = build.build_hasher();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        // Low bits must differ for bucket indexing.
        let mut low = std::collections::HashSet::new();
        for i in 0..64 {
            low.insert(h(&format!("job{i}")) & 0xfff);
        }
        assert!(low.len() > 48, "low-bit clustering: {}", low.len());
    }
}
